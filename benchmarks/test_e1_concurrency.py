"""E1 — Ordered sharing buys concurrency.

Throughput, makespan, latency, and mean concurrency versus
multiprogramming level for all five protocols.  Expected shape (the
paper's motivating claim): process locking ≥ pure OSL ≫ exclusive S2PL
and ACA ≫ serial in admitted concurrency, with the gap widening as the
multiprogramming level grows.
"""

import pytest

from harness import SEEDS, averaged_metrics, print_experiment
from repro.sim.workload import WorkloadSpec

PROTOCOLS = ["serial", "s2pl", "aca", "osl-pure", "process-locking"]
LEVELS = [4, 8, 16]

BASE = WorkloadSpec(
    n_activity_types=14,
    conflict_density=0.3,
    failure_probability=0.04,
    pivot_probability=0.7,
)


def run_e1():
    table = {}
    for level in LEVELS:
        spec = BASE.with_(n_processes=level)
        table[level] = {
            protocol: averaged_metrics(spec, protocol)
            for protocol in PROTOCOLS
        }
    return table


@pytest.mark.benchmark(group="experiments")
def test_e1_concurrency(benchmark):
    table = benchmark.pedantic(run_e1, rounds=1, iterations=1)
    rows = []
    for level, by_protocol in table.items():
        for protocol in PROTOCOLS:
            metrics = by_protocol[protocol]
            rows.append(
                {
                    "processes": level,
                    "protocol": protocol,
                    "makespan": round(metrics["makespan"], 1),
                    "throughput": round(metrics["throughput"], 4),
                    "latency": round(metrics["latency"], 1),
                    "concurrency": round(metrics["concurrency"], 2),
                }
            )
    print_experiment(
        "E1: concurrency vs multiprogramming level "
        f"(mean of {len(SEEDS)} seeds)", rows,
    )

    for level in LEVELS:
        by = table[level]
        # Serial is the lower bound on concurrency at every level.
        assert (
            by["process-locking"]["concurrency"]
            > by["serial"]["concurrency"]
        )
        # Process locking beats serial on makespan...
        assert by["process-locking"]["makespan"] < by["serial"]["makespan"]
        # ...and is at least competitive with exclusive S2PL.
        assert (
            by["process-locking"]["makespan"]
            <= by["s2pl"]["makespan"] * 1.10
        )
    # The advantage over serial grows with the multiprogramming level.
    gain_low = (
        table[LEVELS[0]]["serial"]["makespan"]
        / table[LEVELS[0]]["process-locking"]["makespan"]
    )
    gain_high = (
        table[LEVELS[-1]]["serial"]["makespan"]
        / table[LEVELS[-1]]["process-locking"]["makespan"]
    )
    assert gain_high > gain_low
