"""E8 — Theorems 1 and 2 as measured facts.

Runs a battery of seeded workloads under process locking and feeds every
observed schedule to the theory oracles: prefix-reducibility / correct
termination (Theorem 1) and process-recoverability on every prefix
(Theorem 2).  Also reports the oracle throughput (schedules checked per
second) as the benchmark metric.
"""

import math

import pytest

from harness import print_experiment
from repro.scheduler.manager import ManagerConfig
from repro.sim.runner import run_workload, schedule_of
from repro.sim.workload import WorkloadSpec, build_workload
from repro.theory.criteria import (
    check_all_prefixes_recoverable,
    has_correct_termination,
)

CONFIGS = [
    WorkloadSpec(n_processes=6, conflict_density=0.3,
                 failure_probability=0.05),
    WorkloadSpec(n_processes=8, conflict_density=0.6,
                 failure_probability=0.12,
                 parallel_probability=0.3),
    WorkloadSpec(n_processes=8, conflict_density=0.8,
                 failure_probability=0.10, alternative_count=2),
    WorkloadSpec(n_processes=6, conflict_density=0.5,
                 failure_probability=0.08, wcc_threshold=25.0,
                 expensive_fraction=0.2, expensive_cost=30.0),
]
SEEDS = [13, 17, 19]


def run_e8():
    rows = []
    for index, base in enumerate(CONFIGS):
        for seed in SEEDS:
            workload = build_workload(base.with_(seed=seed))
            result = run_workload(
                workload, "process-locking", seed=seed,
                config=ManagerConfig(audit=True),
            )
            schedule = schedule_of(workload, result)
            ct = has_correct_termination(schedule, stride=2)
            prc = check_all_prefixes_recoverable(schedule)
            rows.append(
                {
                    "config": index,
                    "seed": seed,
                    "events": len(schedule.events),
                    "CT": ct,
                    "P-RC (all prefixes)": prc,
                }
            )
    return rows


@pytest.mark.benchmark(group="experiments")
def test_e8_correctness_oracles(benchmark):
    rows = benchmark.pedantic(run_e8, rounds=1, iterations=1)
    print_experiment(
        "E8: Theorems 1 & 2, checked mechanically on every run", rows,
    )
    assert len(rows) == len(CONFIGS) * len(SEEDS)
    for row in rows:
        assert row["CT"], f"CT violated: {row}"
        assert row["P-RC (all prefixes)"], f"P-RC violated: {row}"
