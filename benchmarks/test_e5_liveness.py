"""E5 — Deadlock freedom and starvation avoidance.

Adversarial high-conflict workloads (density up to 0.9, everything
arriving at once).  Expected shape: under the basic protocol the
timestamp discipline needs zero deadlock-cycle victims; every process
terminates (the run itself asserts quiescence); and same-timestamp
resubmission bounds each process's abort count far below the starvation
limit, with the oldest processes never starving.
"""

import math

import pytest

from harness import print_experiment
from repro.scheduler.manager import ManagerConfig
from repro.sim.runner import run_workload
from repro.sim.workload import WorkloadSpec, build_workload

DENSITIES = [0.5, 0.7, 0.9]

BASE = WorkloadSpec(
    n_processes=12,
    n_activity_types=10,
    failure_probability=0.08,
    pivot_probability=0.8,
    wcc_threshold=math.inf,
)


def run_e5():
    rows = []
    for density in DENSITIES:
        for seed in (3, 4, 5):
            workload = build_workload(
                BASE.with_(conflict_density=density, seed=seed)
            )
            result = run_workload(
                workload, "process-locking", seed=seed,
                config=ManagerConfig(audit=True),
            )
            worst = max(
                record.resubmissions
                for record in result.records.values()
            )
            rows.append(
                {
                    "density": density,
                    "seed": seed,
                    "deadlock_victims": result.stats.deadlock_victims,
                    "max_resubmissions": worst,
                    "total_resubmissions": result.stats.resubmissions,
                    "committed": result.stats.committed,
                    "submitted": result.stats.submitted,
                }
            )
    return rows


@pytest.mark.benchmark(group="experiments")
def test_e5_liveness(benchmark):
    rows = benchmark.pedantic(run_e5, rounds=1, iterations=1)
    print_experiment(
        "E5: liveness under adversarial contention (basic protocol)",
        rows,
    )
    for row in rows:
        # Timestamp discipline: no wait cycles ever needed breaking.
        assert row["deadlock_victims"] == 0
        # Starvation avoidance: bounded resubmissions per process.
        assert row["max_resubmissions"] < 100
        # Liveness: quiescence already asserted by run(); all processes
        # reached a terminal state, and work actually commits.
        assert row["committed"] >= 1
