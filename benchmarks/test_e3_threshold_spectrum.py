"""E3 — The cost-threshold spectrum between ACA and P-RC (Section 4).

Sweeps ``Wcc*`` from 0 (every activity pseudo-pivot ≈ ACA/rigorous) to
∞ (pure process locking) on a workload with expensive activities.
Expected shape: cascade victims and cascade-caused compensation grow
with the threshold (less protection), while admitted concurrency grows
too — the trade-off the cost-based extension exposes per process.
"""

import math

import pytest

from harness import SEEDS, averaged_metrics, print_experiment
from repro.analysis.stats import monotone_increasing
from repro.sim.workload import WorkloadSpec

THRESHOLDS = [0.0, 10.0, 40.0, 120.0, math.inf]

BASE = WorkloadSpec(
    n_processes=10,
    n_activity_types=12,
    conflict_density=0.5,
    failure_probability=0.05,
    expensive_fraction=0.3,
    expensive_cost=40.0,
    pivot_probability=0.7,
)


def run_e3():
    return {
        threshold: averaged_metrics(
            BASE.with_(wcc_threshold=threshold), "process-locking"
        )
        for threshold in THRESHOLDS
    }


@pytest.mark.benchmark(group="experiments")
def test_e3_threshold_spectrum(benchmark):
    table = benchmark.pedantic(run_e3, rounds=1, iterations=1)
    rows = [
        {
            "Wcc*": "inf" if math.isinf(t) else f"{t:g}",
            "cascade victims": round(m["cascades"], 1),
            "concurrency": round(m["concurrency"], 2),
            "comp_cost": round(m["comp_cost"], 1),
            "makespan": round(m["makespan"], 1),
            "deadlock victims": round(m["deadlock_victims"], 1),
        }
        for t, m in table.items()
    ]
    print_experiment(
        f"E3: Wcc* sweep ACA -> P-RC (mean of {len(SEEDS)} seeds)", rows,
    )

    cascades = [table[t]["cascades"] for t in THRESHOLDS]
    # No pseudo-pivot protection at inf, full protection at 0.
    assert cascades[0] == 0.0
    assert cascades[-1] > 0.0
    # Cascade exposure is (weakly) monotone in the threshold.
    assert monotone_increasing(cascades, slack=max(cascades) * 0.15)
    # Pseudo-pivot deadlock resolution only exists below infinity.
    assert table[math.inf]["deadlock_victims"] == 0.0
