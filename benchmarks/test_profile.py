"""Phase-level profile of a scheduling run (``BENCH_profile.json``).

The scaling sweeps in ``test_perf_scaling.py`` price whole paths against
each other; this file answers the orthogonal question *where the wall
clock goes* inside the live path.  :class:`repro.obs.PhaseProfiler`
attributes exclusive time to grant / park / wake / deadlock /
trace_emit / other (see ``src/repro/obs/profiling.py``), and this file

* asserts the attribution is sound — shares sum to 1.0 by construction
  and every expected phase actually fires,
* asserts instrumentation is **observation only**: a profiled run's
  schedule is byte-identical to the unprofiled run,
* emits ``BENCH_profile.json`` with one row per (workload point,
  traced?) combination so the CI ``profile-smoke`` step and later PRs
  can watch the phase mix drift as the hot path evolves.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from test_perf_scaling import (
    BENCH_CONFIG,
    _schedule_digest,
    _spec6,
    _timed_run_quiet,
)

from repro.obs import Tracer, run_profiled_workload
from repro.scheduler.manager import ManagerConfig
from repro.sim.metrics import lock_operations
from repro.sim.workload import build_workload

PROFILE_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_profile.json"
)

#: (n_processes, conflict_density, arrival_spacing) profile points —
#: the two smaller contention-sweep points (the 200-process point adds
#: minutes of wall clock without changing the phase mix story).
PROFILE_POINTS = [
    (40, 0.4, 0.5),
    (80, 0.5, 0.3),
]

#: Phases that must show activity on every contention point.
EXPECTED_ACTIVE = ("grant", "park", "wake", "other")


def _profiled_run(spec, tracer=None):
    result, profiler = run_profiled_workload(
        build_workload(spec),
        "process-locking",
        seed=spec.seed,
        config=ManagerConfig(**BENCH_CONFIG),
        tracer=tracer,
    )
    return result, profiler


def _assert_shares_sum(report: dict) -> None:
    total_share = sum(
        phase["share"] for phase in report["phases"].values()
    )
    assert math.isclose(total_share, 1.0, abs_tol=1e-9), (
        f"phase shares sum to {total_share}, not 1.0"
    )


class TestPhaseAttribution:
    def test_shares_sum_to_one_and_phases_fire(self):
        spec = _spec6(40, 0.4, 0.5, seed=7)
        result, profiler = _profiled_run(spec)
        report = profiler.report()
        _assert_shares_sum(report)
        assert report["total_s"] > 0
        for phase in EXPECTED_ACTIVE:
            assert report["phases"][phase]["calls"] > 0 or phase == (
                "other"
            ), f"phase {phase!r} never fired"
            assert report["phases"][phase]["seconds"] >= 0
        # Untraced run: the tracer proxy is never entered.
        assert report["phases"]["trace_emit"]["calls"] == 0

    def test_traced_run_meters_trace_emit(self):
        spec = _spec6(40, 0.4, 0.5, seed=7)
        result, profiler = _profiled_run(spec, tracer=Tracer())
        report = profiler.report()
        _assert_shares_sum(report)
        assert report["phases"]["trace_emit"]["calls"] > 0

    def test_profiled_schedule_byte_identical(self, uid_floor):
        spec = _spec6(40, 0.4, 0.5, seed=7)
        workload = build_workload(spec)
        uid_floor.pin()
        plain, _ = _timed_run_quiet(
            workload, spec.seed, ManagerConfig(**BENCH_CONFIG)
        )
        uid_floor.repin()
        profiled, _ = _profiled_run(spec)
        assert _schedule_digest(profiled) == _schedule_digest(plain)


class TestBenchProfile:
    def test_emit_bench_profile(self):
        rows = []
        for n_processes, density, spacing in PROFILE_POINTS:
            spec = _spec6(n_processes, density, spacing, seed=7)
            for traced in (False, True):
                tracer = Tracer() if traced else None
                result, profiler = _profiled_run(spec, tracer=tracer)
                report = profiler.report()
                _assert_shares_sum(report)
                rows.append(
                    {
                        "n_processes": n_processes,
                        "conflict_density": density,
                        "arrival_spacing": spacing,
                        "traced": traced,
                        "committed": result.stats.committed,
                        "lock_ops": lock_operations(
                            result.protocol_stats
                        ),
                        "total_s": round(report["total_s"], 4),
                        "phases": {
                            name: {
                                "seconds": round(
                                    phase["seconds"], 4
                                ),
                                "share": round(phase["share"], 4),
                                "calls": phase["calls"],
                            }
                            for name, phase in report[
                                "phases"
                            ].items()
                        },
                    }
                )
        PROFILE_PATH.write_text(
            json.dumps(
                {
                    "description": (
                        "Exclusive wall-clock share per scheduler "
                        "phase (PhaseProfiler over "
                        "run_profiled_workload); shares sum to 1.0 "
                        "per row"
                    ),
                    "protocol": "process-locking",
                    "rows": rows,
                },
                indent=2,
            )
            + "\n"
        )
        assert PROFILE_PATH.exists()
