"""Shared helpers for the benchmark/experiment harness.

Every file in this directory regenerates one paper exhibit (Tables 1–2,
Figure 1) or one claim experiment (E1–E8 of DESIGN.md): it runs the
workload sweep, prints the resulting table (so ``pytest benchmarks/
--benchmark-only -s`` doubles as the experiment report), asserts the
*shape* the paper predicts, and times the run via pytest-benchmark.

Absolute numbers are simulator-relative; the assertions check orderings
and monotone trends, never point values.
"""

from __future__ import annotations

from repro.analysis.tables import render_dict_table, render_table
from repro.scheduler.manager import ManagerConfig
from repro.sim.metrics import aggregate
from repro.sim.runner import run_protocol_over_seeds
from repro.sim.workload import WorkloadSpec

#: Seeds used for repetition averaging in every experiment.
SEEDS = [11, 22, 33, 44]


def averaged_metrics(
    spec: WorkloadSpec,
    protocol: str,
    seeds: list[int] | None = None,
    config: ManagerConfig | None = None,
) -> dict[str, float]:
    """Run ``protocol`` over seed-varied workloads; average the metrics.

    Runs serially by default (byte-identical to the historical loop);
    set ``REPRO_SEED_WORKERS`` to fan the per-seed runs out over a
    process pool (each run is an isolated fixed-seed simulation, so the
    averaged result is the same either way).
    """
    rows = run_protocol_over_seeds(
        spec, protocol, seeds=seeds or SEEDS, config=config
    )
    return aggregate(rows)


def sweep(
    spec_for: dict[str, WorkloadSpec],
    protocol: str,
    seeds: list[int] | None = None,
) -> dict[str, dict[str, float]]:
    """Run one protocol across labelled workload variants."""
    return {
        label: averaged_metrics(spec, protocol, seeds=seeds)
        for label, spec in spec_for.items()
    }


def print_experiment(
    title: str, rows: list[dict[str, object]],
    headers: list[str] | None = None,
) -> None:
    print()
    print(render_dict_table(rows, headers=headers, title=title))


__all__ = [
    "SEEDS",
    "averaged_metrics",
    "print_experiment",
    "render_table",
    "sweep",
]
