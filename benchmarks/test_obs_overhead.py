"""Observability overhead guard.

The tracer's contract (see ``src/repro/obs/tracer.py``) has two halves:

* **disabled** (the default ``NULL_TRACER``) — every emit site is one
  attribute read; the schedule is byte-identical to an uninstrumented
  run, so the perf trajectory in ``BENCH_scaling.json`` is unaffected;
* **enabled** — full decision-level tracing costs a bounded constant
  factor, small enough to leave on whenever a run needs explaining.

This file pins both: byte-identity at benchmark scale, and an
enabled-overhead factor recorded to ``BENCH_obs_overhead.json`` and
asserted under a generous ceiling (regressions like unguarded event
construction or quadratic series upkeep blow well past it).

The metrics plane adds a third point: a
:class:`~repro.obs.MetricsTracer` tee (registry feeder + flight
recorder) wrapped around the same recording tracer.  Its marginal cost
over plain tracing is pinned at a much tighter factor — the feeder
reads event attributes directly and the flight recorder appends
without flattening, so anything quadratic or allocation-happy on that
path (say, an ``asdict`` per emit) blows the bound immediately.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.faults.harness import canonical_trace
from repro.obs import FlightRecorder, MetricsTracer, Tracer
from repro.scheduler.manager import ManagerConfig
from repro.sim.runner import run_workload
from repro.sim.workload import WorkloadSpec, build_workload

BENCH_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json"
)

#: Benchmark point: contended enough that tracing has real work to do
#: (defers, cascades, wait edges), big enough for stable timing.
SPEC = WorkloadSpec(
    n_processes=80,
    n_activity_types=24,
    n_subsystems=3,
    conflict_density=0.3,
    arrival_spacing=0.5,
    failure_probability=0.02,
    seed=7,
)

#: Enabled tracing may cost at most this factor over the untraced run.
#: Measured factors sit around 2–2.5× (event construction plus the
#: per-emit gauge poll); the ceiling leaves headroom for CI-runner noise
#: while still catching structural regressions.
MAX_ENABLED_FACTOR = 4.0

#: The metrics tee (registry feeder + flight ring) may cost at most
#: this factor over the plain recording tracer it wraps.
MAX_METRICS_FACTOR = 1.5

CONFIG = dict(max_resubmissions=100_000)


def _timed(tracer=None):
    config = ManagerConfig(**CONFIG)
    workload = build_workload(SPEC)
    start = time.perf_counter()
    result = run_workload(
        workload, "process-locking", seed=SPEC.seed,
        config=config, tracer=tracer,
    )
    return result, time.perf_counter() - start


def _timed_min2(uid_floor, make_tracer):
    """Min-of-2 walls, same policy as ``test_perf_scaling``.

    The pinned factors have only a few percent of headroom, so a single
    cold wall on either side flips the ratio spuriously.  Each run
    repins the uid floor (keeping all runs byte-comparable) and gets a
    fresh tracer from ``make_tracer``; the first run's result and
    tracer are the ones the identity assertions use.
    """
    first_result = first_tracer = None
    walls = []
    for attempt in range(2):
        uid_floor.repin()
        tracer = make_tracer()
        result, wall = _timed(tracer)
        walls.append(wall)
        if attempt == 0:
            first_result, first_tracer = result, tracer
    return first_result, first_tracer, min(walls)


def test_disabled_tracing_is_invisible_and_enabled_is_bounded(
    uid_floor,
):
    # Warm-up run so neither measured run pays first-import costs.
    uid_floor.pin()
    _timed()

    plain, _, wall_plain = _timed_min2(uid_floor, lambda: None)
    traced, tracer, wall_traced = _timed_min2(uid_floor, Tracer)
    metered, metrics_tracer, wall_metrics = _timed_min2(
        uid_floor,
        lambda: MetricsTracer(
            sinks=(Tracer(),), recorder=FlightRecorder(512)
        ),
    )
    metrics_sink = metrics_tracer.sinks[0]

    # Disabled-path contract: the traced run *scheduled* identically —
    # tracing observed the run without participating in it.
    assert canonical_trace(plain.trace.events) == canonical_trace(
        traced.trace.events
    )
    assert plain.stats.committed == traced.stats.committed
    assert plain.makespan == traced.makespan
    assert len(tracer) > 0

    # The metrics tee is as invisible to the schedule as the tracer it
    # wraps, and its sink recorded exactly what the plain tracer did.
    assert canonical_trace(plain.trace.events) == canonical_trace(
        metered.trace.events
    )
    assert json.dumps(tracer.records()) == json.dumps(
        metrics_sink.records()
    )
    assert (
        metrics_tracer.metrics.outcomes.value(("committed",))
        == plain.stats.committed
    )

    factor = wall_traced / wall_plain
    metrics_factor = wall_metrics / wall_traced
    BENCH_PATH.write_text(
        json.dumps(
            {
                "description": (
                    "full decision-level tracing vs the untraced "
                    "default on one contended workload; schedules "
                    "asserted byte-identical; third point adds the "
                    "metrics tee (registry feeder + flight ring) "
                    "around the same tracer; all walls min-of-2"
                ),
                "n_processes": SPEC.n_processes,
                "events_traced": len(tracer),
                "wall_s_untraced": round(wall_plain, 3),
                "wall_s_traced": round(wall_traced, 3),
                "wall_s_metrics": round(wall_metrics, 3),
                "enabled_overhead_factor": round(factor, 2),
                "metrics_over_traced_factor": round(metrics_factor, 2),
                "max_allowed_factor": MAX_ENABLED_FACTOR,
                "max_metrics_factor": MAX_METRICS_FACTOR,
            },
            indent=2,
        )
        + "\n"
    )
    print(
        f"\ntracing overhead: {factor:.2f}x "
        f"({len(tracer)} events, {wall_plain:.3f}s -> "
        f"{wall_traced:.3f}s); metrics tee: {metrics_factor:.2f}x "
        f"over tracing ({wall_metrics:.3f}s)"
    )
    assert factor < MAX_ENABLED_FACTOR, (
        f"enabled tracing costs {factor:.2f}x "
        f"(limit {MAX_ENABLED_FACTOR}x)"
    )
    assert metrics_factor < MAX_METRICS_FACTOR, (
        f"metrics tee costs {metrics_factor:.2f}x over plain tracing "
        f"(limit {MAX_METRICS_FACTOR}x)"
    )
