"""Ablations — each design choice DESIGN.md calls out, measured.

A1  Execution gating: conflicting activities' executions are serialized
    in lock-sharing order.  Without it, overlapping conflicting
    executions commit against the sharing order and prefix reducibility
    genuinely fails — the negative result recovered during development.

A2  Global vs scoped P-lock deferment: the literal Piv-Rule reading
    ("any other process holds a P lock") excludes wait cycles among
    cost-protected processes; the scoped reading (conflicting P locks
    only) admits them, and their resolution destroys exactly the
    expensive work the Section-4 extension is meant to protect.

A3  Victim preference in deadlock resolution: under the scoped reading,
    preferring victims without P locks keeps most protected work alive;
    turning the preference off sacrifices protected processes.
"""

import math

import pytest

from harness import print_experiment
from repro.core.protocol import ProcessLockManager
from repro.scheduler.manager import ManagerConfig, ProcessManager
from repro.sim.runner import schedule_of
from repro.sim.workload import WorkloadSpec, build_workload
from repro.theory.criteria import is_prefix_reducible

SEEDS = [2, 3, 5, 8]


def run_custom(
    workload,
    seed,
    gate=True,
    global_p=True,
    prefer_unprotected=True,
):
    protocol = ProcessLockManager(
        workload.registry,
        workload.conflicts,
        cost_based=True,
        global_p_deferment=global_p,
    )
    manager = ProcessManager(
        protocol,
        config=ManagerConfig(
            gate_conflicting_executions=gate,
            prefer_unprotected_victims=prefer_unprotected,
        ),
        seed=seed,
    )
    for program in workload.programs:
        manager.submit(program)
    return manager.run()


# ----------------------------------------------------------------------
# A1 — execution gating
# ----------------------------------------------------------------------
GATING_SPEC = WorkloadSpec(
    n_processes=8,
    n_activity_types=10,
    conflict_density=0.5,
    failure_probability=0.1,
)


def run_a1():
    outcomes = {"gated": 0, "ungated": 0}
    for seed in SEEDS:
        workload = build_workload(GATING_SPEC.with_(seed=seed))
        for label, gate in (("gated", True), ("ungated", False)):
            result = run_custom(workload, seed, gate=gate)
            schedule = schedule_of(workload, result)
            if not is_prefix_reducible(schedule, stride=3):
                outcomes[label] += 1
    return outcomes


@pytest.mark.benchmark(group="ablations")
def test_a1_execution_gating(benchmark):
    outcomes = benchmark.pedantic(run_a1, rounds=1, iterations=1)
    print_experiment(
        "A1: P-RED violations with/without execution gating "
        f"({len(SEEDS)} seeds)",
        [
            {"configuration": label, "irreducible runs": count}
            for label, count in outcomes.items()
        ],
    )
    assert outcomes["gated"] == 0
    assert outcomes["ungated"] > 0


# ----------------------------------------------------------------------
# A2 / A3 — P deferment scope and victim preference
# ----------------------------------------------------------------------
PROTECT_SPEC = WorkloadSpec(
    n_processes=10,
    n_activity_types=12,
    conflict_density=0.5,
    failure_probability=0.04,
    expensive_fraction=0.3,
    expensive_cost=50.0,
    wcc_threshold=50.0,
)


def expensive_losses(global_p, prefer_unprotected):
    lost = 0
    deadlock_victims = 0
    for seed in SEEDS:
        workload = build_workload(PROTECT_SPEC.with_(seed=seed))
        result = run_custom(
            workload, seed,
            global_p=global_p,
            prefer_unprotected=prefer_unprotected,
        )
        deadlock_victims += result.stats.deadlock_victims
        for record in result.records.values():
            for name, cause in zip(
                record.compensated_names, record.compensated_causes
            ):
                if (
                    name in workload.expensive_types
                    and cause.startswith("protocol-abort")
                    and not cause.endswith("self")
                ):
                    lost += 1
    return {
        "expensive lost": lost / len(SEEDS),
        "deadlock victims": deadlock_victims / len(SEEDS),
    }


def run_a2_a3():
    return {
        "global P deferment (default)": expensive_losses(
            global_p=True, prefer_unprotected=True
        ),
        "scoped + victim preference": expensive_losses(
            global_p=False, prefer_unprotected=True
        ),
        "scoped, no preference": expensive_losses(
            global_p=False, prefer_unprotected=False
        ),
    }


@pytest.mark.benchmark(group="ablations")
def test_a2_a3_p_deferment_and_victims(benchmark):
    table = benchmark.pedantic(run_a2_a3, rounds=1, iterations=1)
    print_experiment(
        "A2/A3: expensive work lost to protocol aborts, per "
        "configuration (Wcc* = 50)",
        [
            {"configuration": label, **metrics}
            for label, metrics in table.items()
        ],
    )
    default = table["global P deferment (default)"]
    scoped = table["scoped + victim preference"]
    reckless = table["scoped, no preference"]
    # The literal rule keeps protected work fully safe (mixed C/P wait
    # cycles may still sacrifice *unprotected* processes).
    assert default["expensive lost"] == 0
    # The scoped reading loses protected work; without the victim
    # preference the damage multiplies.
    assert scoped["expensive lost"] > 0
    assert reckless["expensive lost"] >= scoped["expensive lost"]
    assert default["expensive lost"] < scoped["expensive lost"]
