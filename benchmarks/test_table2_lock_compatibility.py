"""Exhibit T2 — Table 2: the C/P lock compatibility matrix, derived.

Drives held/acquired micro-scenarios through a live protocol instance
and asserts the observed matrix equals the paper's: C locks are ordered
shared behind anything, P locks are exclusive against everything.
"""

import pytest

from repro.analysis.exhibits import (
    PAPER_TABLE2,
    derive_lock_compatibility,
    table2_text,
)


@pytest.mark.benchmark(group="exhibits")
def test_table2_lock_compatibility(benchmark):
    observed = benchmark(derive_lock_compatibility)
    print()
    print(table2_text(observed))
    assert observed == PAPER_TABLE2, (
        "derived compatibility matrix deviates from Table 2: "
        f"{observed}"
    )
