"""E7 — Substrate validity: the bottom layer really is CPSR + ACA.

Runs grounded workloads (activities backed by transaction programs over
in-memory stores) under process locking, then checks every subsystem's
recorded operation history for conflict-serializability and avoidance of
cascading aborts, and verifies the derived conflict matrix agrees with
the observed read/write sets.
"""

import pytest

from harness import print_experiment
from repro.scheduler.manager import ManagerConfig, ProcessManager
from repro.sim.runner import make_protocol
from repro.sim.workload import WorkloadSpec, build_workload

SPEC = WorkloadSpec(
    n_processes=10,
    n_activity_types=12,
    grounded=True,
    failure_probability=0.08,
    pivot_probability=0.7,
)


def run_e7():
    rows = []
    for seed in (1, 2, 3):
        workload = build_workload(SPEC.with_(seed=seed))
        pool = workload.make_subsystems()
        protocol = make_protocol("process-locking", workload)
        manager = ProcessManager(
            protocol, subsystems=pool,
            config=ManagerConfig(audit=True), seed=seed,
        )
        for program in workload.programs:
            manager.submit(program)
        result = manager.run()
        for subsystem in pool:
            rows.append(
                {
                    "seed": seed,
                    "subsystem": subsystem.name,
                    "txns": subsystem.committed_count,
                    "history_ops": len(subsystem.history),
                    "CPSR": subsystem.is_serializable(),
                    "ACA": subsystem.avoids_cascading_aborts(),
                }
            )
        # Conflict matrix agrees with data-level behaviour.
        for first in workload.data_programs:
            for second in workload.data_programs:
                reg = workload.registry
                if (
                    reg.get(first).is_compensation
                    or reg.get(second).is_compensation
                ):
                    continue
                prog_a = workload.data_programs[first]
                prog_b = workload.data_programs[second]
                same = (
                    reg.get(first).subsystem == reg.get(second).subsystem
                )
                if same and prog_a.conflicts_with(prog_b):
                    assert workload.conflicts.conflict(first, second)
        assert result.stats.committed >= 1
    return rows


@pytest.mark.benchmark(group="experiments")
def test_e7_substrate(benchmark):
    rows = benchmark.pedantic(run_e7, rounds=1, iterations=1)
    print_experiment(
        "E7: subsystem guarantees under grounded workloads", rows,
    )
    assert rows
    for row in rows:
        assert row["CPSR"], f"subsystem {row['subsystem']} not CPSR"
        assert row["ACA"], f"subsystem {row['subsystem']} not ACA"
