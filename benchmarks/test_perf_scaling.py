"""Perf scaling: incremental indexes vs the naive recompute hot path.

The scheduling hot path is served by incremental structures (see
``docs/performance.md``): the conflict adjacency index, the lock table's
blocker index, the manager's wake-up index, and — since the sharding
PR — the Pearce–Kelly wait-for reachability structure plus the
per-subsystem lock shards.  This file

* reconstructs the **naive path** — the exact pre-index formulations:
  O(pairs) conflict scans, O(locks²) commit-blocker re-derivation, and
  the O(parked²) parked-list fixpoint poll — as drop-in subclasses,
* reconstructs the **monolithic path** — the pre-sharding
  :class:`LockTable` with the rebuild-and-DFS per-park deadlock check
  and whole-table audits,
* asserts **trace equivalence**: fixed-seed runs under
  ``process-locking`` produce byte-identical schedules on every path,
* sweeps process count and conflict density through ``run_workload``
  and updates ``BENCH_scaling.json`` (wall time, throughput,
  lock-ops/sec per path) so later PRs have a perf trajectory,
* asserts the indexed path is ≥ 2× faster than the naive path, and the
  sharded+incremental path ≥ 1.5× the monolithic lock-ops/sec, each on
  its largest swept workload,
* sweeps the **parallel execution mode** (``repro.parallel``) against
  the sequential manager over workers × batch-k grids, asserts every
  variant's schedule is byte-identical to the sequential run, and
  bounds the parallel overhead (≥ 0.7× sequential at
  ``workers=n_subsystems`` on the largest point — the compiled plane
  collapsed the gate-scan asymmetry the old ≥ 1.5× bar measured),
* reconstructs the **adjacency path** — the sharded stack as it stood
  before the compiled conflict plane (frozenset adjacency iteration,
  un-memoized Figure-1 classification, dict-based gate) — and asserts
  the compiled plane is ≥ 1.3× faster on the largest contention point
  (``compiled_vs_indexed``),
* pins an absolute lock-ops/sec floor on the smallest point for the CI
  ``perf-guard`` job.
"""

from __future__ import annotations

import gc
import hashlib
import json
import time
from pathlib import Path

import functools

from repro.core.lock_table import LockTable
from repro.core.locks import LockEntry, LockMode
from repro.core.reference import (
    adjacency_conflicting_locks,
    adjacency_conflicting_locks_flat,
    adjacency_conflicting_younger_flat,
    adjacency_iter_conflicting,
    adjacency_probe_blocked,
    naive_commit_blockers,
    naive_conflicting_locks,
    naive_find_wait_cycle,
    reference_classify_regular,
)
from repro.core.sharding import ShardedLockTable
from repro.errors import ProtocolError
from repro.scheduler.manager import ManagerConfig, ProcessManager
from repro.sim.metrics import lock_operations
from repro.sim.runner import make_protocol, run_workload
from repro.sim.workload import WorkloadSpec, build_workload

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_scaling.json"

#: (n_processes, conflict_density, arrival_spacing) sweep, smallest to
#: largest.  The largest point is where the ≥2× assertion applies.
SCALING_SWEEP = [
    (40, 0.3, 0.5),
    (80, 0.3, 0.5),
    (120, 0.3, 1.0),
]

#: Multi-subsystem contention sweep for sharded-vs-monolithic (six
#: subsystems, audited runs).  The largest point carries the ≥1.5×
#: lock-ops/sec assertion.
CONTENTION_SWEEP = [
    (40, 0.4, 0.5),
    (80, 0.5, 0.3),
    (200, 0.5, 0.25),
]

#: Audit sampling interval for the sharded-vs-monolithic sweep: both
#: paths audit at the same cadence; the monolithic table can only audit
#: everything, the sharded table round-robins one shard per audit.
AUDIT_EVERY = 16

#: High resubmission headroom: heavy contention is the point here, and
#: starvation accounting is a protocol question, not a perf one.
BENCH_CONFIG = dict(max_resubmissions=100_000)

#: Parallel-vs-sequential sweep: (n_processes, n_activity_types,
#: n_subsystems, conflict_density, arrival_spacing), smallest to
#: largest.  The largest point — 300 processes over 12 subsystems at
#: tight spacing — maximizes concurrent in-flight activities, which is
#: where the sequential manager's O(inflight) gate scan and k-way
#: holder merges dominate; the ≥1.5× assertion applies there at
#: ``workers=n_subsystems``.
PARALLEL_SWEEP = [
    (60, 36, 6, 0.4, 0.3),
    (200, 72, 6, 0.5, 0.25),
    (300, 144, 12, 0.5, 0.1),
]

#: Batch lock-acquisition depths swept per worker count.
PARALLEL_BATCH_KS = (1, 2, 4)

# Byte-comparable paired runs use the shared ``uid_floor`` fixture
# (tests/conftest.py): pin() claims a fresh uid/lock-id floor, repin()
# restarts the counters there for the second run of a pair.

# ----------------------------------------------------------------------
# the naive (pre-index) path, kept runnable as a reference
# ----------------------------------------------------------------------
class NaiveLockTable(LockTable):
    """Lock table with the original recompute-from-scratch queries.

    ``acquire``/``release_all`` skip all index maintenance so the naive
    path pays neither the old scan costs *plus* the new upkeep.
    """

    def acquire(self, process, type_name, mode, activity_uid=None):
        self._position += 1
        entry = LockEntry(
            process=process,
            type_name=type_name,
            mode=mode,
            position=self._position,
            activity_uid=activity_uid,
        )
        self._by_type.setdefault(type_name, []).append(entry)
        self._by_pid.setdefault(process.pid, []).append(entry)
        return entry

    def release_all(self, pid):
        released = self._by_pid.pop(pid, [])
        for entry in released:
            try:
                self._by_type[entry.type_name].remove(entry)
            except (KeyError, ValueError):  # pragma: no cover
                raise ProtocolError(
                    f"lock table corruption while releasing {entry}"
                ) from None
            if not self._by_type[entry.type_name]:
                del self._by_type[entry.type_name]
        return released

    def conflicting_locks(self, type_name, exclude_pid=None):
        return naive_conflicting_locks(self, type_name, exclude_pid)

    def commit_blockers(self, process):
        return naive_commit_blockers(self, process)

    def on_hold(self, process):
        return bool(self.commit_blockers(process))

    def c_locks_of(self, pid):
        return tuple(
            entry
            for entry in self._by_pid.get(pid, ())
            if entry.mode is LockMode.C
        )

    def p_lock_holders(self):
        return {
            pid
            for pid, entries in self._by_pid.items()
            if any(e.mode is LockMode.P for e in entries)
        }


class NaiveProcessManager(ProcessManager):
    """Manager with the original parked-list fixpoint poll and the
    original unguarded per-park deadlock search."""

    def _resolve_wait_cycles(self):
        cycle = naive_find_wait_cycle(self._wait_edges())
        if cycle is None:
            return
        self._act_on_wait_cycle(cycle)

    def _retry_parked(self, dead_pid):
        progress = True
        while progress:
            progress = False
            live = set(self._processes)
            for request in list(self._parked.values()):
                if request.wait_for & live == request.wait_for:
                    continue  # nothing it waited for has terminated
                if self._parked.get(request.seq) is not request:
                    continue
                self._unpark(request)
                process = request.process
                if process.state.is_terminal:
                    continue
                if request.kind.value == "regular":
                    decision = self.protocol.request_activity_lock(
                        process, request.activity, request.mode
                    )
                elif request.kind.value == "compensation":
                    decision = self.protocol.request_compensation_lock(
                        process, request.activity
                    )
                else:
                    decision = self.protocol.try_commit(process)
                self._apply_decision(decision, request)
                progress = True


def run_naive_workload(workload, protocol_name, seed, config):
    """``run_workload`` but through the naive table and manager."""
    protocol = make_protocol(protocol_name, workload)
    protocol.table = NaiveLockTable(workload.conflicts)
    manager = NaiveProcessManager(
        protocol,
        subsystems=workload.make_subsystems(),
        config=config,
        seed=seed,
    )
    for index, program in enumerate(workload.programs):
        manager.submit(program, at=workload.arrival_time(index))
    return manager.run()


def run_monolithic_workload(workload, protocol_name, seed, config):
    """``run_workload`` but with the pre-sharding monolithic table.

    The plain :class:`LockTable` has no shard map, so the sampling
    auditor falls back to whole-table audits; pair this with
    ``incremental_deadlock=False`` in ``config`` to get the full
    pre-sharding hot path (rebuild-and-DFS on every park).
    """
    protocol = make_protocol(protocol_name, workload)
    protocol.table = LockTable(workload.conflicts)
    manager = ProcessManager(
        protocol,
        subsystems=workload.make_subsystems(),
        config=config,
        seed=seed,
    )
    for index, program in enumerate(workload.programs):
        manager.submit(program, at=workload.arrival_time(index))
    return manager.run()


# ----------------------------------------------------------------------
# the adjacency (pre-compiled-plane) path, kept runnable as a reference
# ----------------------------------------------------------------------
class AdjacencyLockTable(ShardedLockTable):
    """Sharded table with the pre-compiled-plane hot-path formulations.

    Exactly the indexed+sharded stack as it stood before the compiled
    conflict plane: blocker discovery and every conflict query iterate
    the dict-based adjacency frozensets instead of ANDing bitmasks.
    The bitmask fields stay untouched (and stale) — every reader is
    overridden, so the adjacency path pays neither mask upkeep nor
    mask wins.
    """

    def acquire(self, process, type_name, mode, activity_uid=None):
        self._sync()
        self._position += 1
        entry = LockEntry(
            process=process,
            type_name=type_name,
            mode=mode,
            position=self._position,
            activity_uid=activity_uid,
            table=self,
        )
        pid = process.pid
        self._by_type.setdefault(type_name, []).append(entry)
        self._by_pid.setdefault(pid, []).append(entry)
        if mode is LockMode.C:
            self._c_by_pid.setdefault(pid, []).append(entry)
        else:
            self._p_counts[pid] = self._p_counts.get(pid, 0) + 1
        by_type = self._by_type
        for candidate in self._conflicts.conflicting_types(type_name):
            for other in by_type.get(candidate, ()):
                if other.pid != pid:
                    self._add_block_edge(other.pid, pid)
        shard = self.shard_of(type_name)
        shard.lock_count += 1
        shard.acquires += 1
        return entry

    def conflicting_locks(self, type_name, exclude_pid=None):
        return adjacency_conflicting_locks(self, type_name, exclude_pid)

    def iter_conflicting(self, type_name, exclude_pid=None):
        return adjacency_iter_conflicting(self, type_name, exclude_pid)

    def probe_blocked(self, type_name, exclude_pid, ts, aborting):
        return adjacency_probe_blocked(
            self, type_name, exclude_pid, ts, aborting
        )

    def conflicting_locks_flat(self, type_name, exclude_pid):
        return adjacency_conflicting_locks_flat(
            self, type_name, exclude_pid
        )

    def conflicting_younger_flat(
        self, type_name, exclude_pid, ts, aborting
    ):
        return adjacency_conflicting_younger_flat(
            self, type_name, exclude_pid, ts, aborting
        )


class AdjacencyProcessManager(ProcessManager):
    """Manager with the pre-compiled-plane conflict gate."""

    def _gate_flight(self, flight):
        if flight.entry is None:
            return
        if not self.config.gate_conflicting_executions:
            return
        conflict = self.protocol.conflicts.conflict
        for other in self._inflight.values():
            if other is flight or other.cancelled or other.entry is None:
                continue
            if other.entry.position >= flight.entry.position:
                continue
            if conflict(other.activity.name, flight.activity.name):
                flight.gate.add(other.activity.uid)
                self._dependents.setdefault(
                    other.activity.uid, set()
                ).add(flight.activity.uid)


def run_adjacency_workload(workload, protocol_name, seed, config):
    """``run_workload`` through the pre-compiled-plane stack.

    Adjacency table, adjacency gate, and the un-memoized Figure-1
    classification — the full hot path as of the sharding/parallel PRs.
    """
    protocol = make_protocol(protocol_name, workload)
    protocol.table = AdjacencyLockTable(workload.conflicts)
    protocol.classify_regular = functools.partial(
        reference_classify_regular, protocol
    )
    manager = AdjacencyProcessManager(
        protocol,
        subsystems=workload.make_subsystems(),
        config=config,
        seed=seed,
    )
    for index, program in enumerate(workload.programs):
        manager.submit(program, at=workload.arrival_time(index))
    return manager.run()


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _canonical_trace(result) -> str:
    """Byte-stable serialization of the observed schedule.

    Activity uids come from a process-global counter, so two runs in the
    same interpreter see different absolute uids even when the schedules
    are identical; remap them to first-appearance order before
    comparing.
    """
    renumber: dict[int, int] = {}

    def canon(uid):
        if uid is None or uid == 0:
            return uid
        return renumber.setdefault(uid, len(renumber) + 1)

    return json.dumps(
        [
            (
                event.position,
                str(event.process),
                event.kind.value,
                event.name,
                canon(event.uid),
                canon(event.compensates),
            )
            for event in result.trace.events
        ],
        separators=(",", ":"),
    )


def _update_bench(key: str, payload: dict) -> None:
    """Merge one sweep's results into ``BENCH_scaling.json``.

    Each benchmark owns one top-level key, so the sweeps can run in any
    order (or individually) without clobbering each other's rows.
    """
    data = {}
    if BENCH_PATH.exists():
        data = json.loads(BENCH_PATH.read_text())
    data[key] = payload
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


def _spec(n_processes, density, spacing, seed) -> WorkloadSpec:
    return WorkloadSpec(
        n_processes=n_processes,
        n_activity_types=24,
        n_subsystems=3,
        conflict_density=density,
        arrival_spacing=spacing,
        failure_probability=0.02,
        seed=seed,
    )


def _spec6(n_processes, density, spacing, seed) -> WorkloadSpec:
    """Six-subsystem contention spec for the sharded sweep."""
    return WorkloadSpec(
        n_processes=n_processes,
        n_activity_types=36,
        n_subsystems=6,
        conflict_density=density,
        arrival_spacing=spacing,
        failure_probability=0.02,
        seed=seed,
    )


def _timed_run(runner, workload, seed, config):
    start = time.perf_counter()
    result = runner(workload, "process-locking", seed=seed, config=config)
    return result, time.perf_counter() - start


def _spec_parallel(point, seed=7) -> WorkloadSpec:
    """Spec of one parallel-vs-sequential sweep point."""
    n_processes, n_types, n_subsystems, density, spacing = point
    return WorkloadSpec(
        n_processes=n_processes,
        n_activity_types=n_types,
        n_subsystems=n_subsystems,
        conflict_density=density,
        arrival_spacing=spacing,
        failure_probability=0.02,
        seed=seed,
    )


def _worker_counts(n_subsystems: int) -> list[int]:
    """The swept worker counts: {1, 2, 4, n_subsystems}, deduplicated."""
    counts: list[int] = []
    for workers in (1, 2, 4, n_subsystems):
        if workers not in counts:
            counts.append(workers)
    return counts


def _timed_run_quiet(workload, seed, config, runner=run_workload):
    """One timed run with the cyclic GC parked.

    Collector pauses land at allocation-count thresholds, not at fixed
    schedule points, so they add run-to-run jitter that swamps the
    compared margins; every side is timed with the collector off and a
    clean heap.  ``runner`` swaps in an alternate execution path with
    ``run_workload``'s signature (the adjacency reconstruction, say).
    """
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        result = runner(
            workload, "process-locking", seed=seed, config=config
        )
        return result, time.perf_counter() - start
    finally:
        gc.enable()


def _schedule_digest(result) -> str:
    """Digest of the canonical trace (the full string is tens of MB on
    the largest parallel sweep point; only equality is ever needed)."""
    return hashlib.sha256(
        _canonical_trace(result).encode()
    ).hexdigest()


# ----------------------------------------------------------------------
# tests
# ----------------------------------------------------------------------
class TestTraceEquivalence:
    """Indexing is a pure perf change: schedules are byte-identical."""

    def test_fixed_seed_schedules_identical(self, uid_floor):
        config = ManagerConfig(**BENCH_CONFIG)
        for seed in (0, 7, 42):
            spec = _spec(30, 0.4, 0.5, seed)
            uid_floor.pin()
            indexed = run_workload(
                build_workload(spec), "process-locking",
                seed=seed, config=config,
            )
            uid_floor.repin()
            naive = run_naive_workload(
                build_workload(spec), "process-locking",
                seed=seed, config=config,
            )
            assert _canonical_trace(indexed) == _canonical_trace(naive)
            assert indexed.makespan == naive.makespan
            assert indexed.stats.committed == naive.stats.committed

    def test_equivalence_under_cost_based_pressure(self, uid_floor):
        config = ManagerConfig(**BENCH_CONFIG)
        spec = _spec(20, 0.5, 0.3, 3).with_(
            wcc_threshold=8.0, parallel_probability=0.3
        )
        uid_floor.pin()
        indexed = run_workload(
            build_workload(spec), "process-locking",
            seed=3, config=config,
        )
        uid_floor.repin()
        naive = run_naive_workload(
            build_workload(spec), "process-locking",
            seed=3, config=config,
        )
        assert _canonical_trace(indexed) == _canonical_trace(naive)


class TestScaling:
    def test_sweep_and_speedup(self, uid_floor):
        config = ManagerConfig(**BENCH_CONFIG)
        rows = []
        for n_processes, density, spacing in SCALING_SWEEP:
            spec = _spec(n_processes, density, spacing, seed=7)
            uid_floor.pin()
            indexed, wall_indexed = _timed_run(
                run_workload, build_workload(spec), 7, config
            )
            uid_floor.repin()
            naive, wall_naive = _timed_run(
                run_naive_workload, build_workload(spec), 7, config
            )
            assert _canonical_trace(indexed) == _canonical_trace(naive)
            ops = lock_operations(indexed.protocol_stats)
            rows.append(
                {
                    "n_processes": n_processes,
                    "conflict_density": density,
                    "arrival_spacing": spacing,
                    "committed": indexed.stats.committed,
                    "throughput": round(indexed.throughput, 4),
                    "lock_ops": ops,
                    "wall_s_indexed": round(wall_indexed, 3),
                    "wall_s_naive": round(wall_naive, 3),
                    "lock_ops_per_sec_indexed": round(
                        ops / wall_indexed
                    ),
                    "lock_ops_per_sec_naive": round(ops / wall_naive),
                    "speedup": round(wall_naive / wall_indexed, 2),
                }
            )
        _update_bench(
            "indexed_vs_naive",
            {
                "description": (
                    "process-locking hot path, indexed vs naive; "
                    "fixed seed 7, identical schedules asserted"
                ),
                "sweep": rows,
            },
        )
        print()
        for row in rows:
            print(row)
        largest = rows[-1]
        assert largest["speedup"] >= 2.0, (
            f"indexed path only {largest['speedup']}x faster than the "
            f"naive baseline on the largest workload: {largest}"
        )


class TestShardedIncrementalScaling:
    """Sharded table + incremental wait-for vs the monolithic path.

    Every point runs four byte-identical schedules:

    * **sharded** — the default stack (sharded table, incremental
      wait-for) with the sampling auditor round-robining one shard,
    * **monolithic** — the pre-sharding stack (plain table, DFS on
      every park, whole-table audits) at the *same* audit cadence,
    * **incremental / dfs** — the same pair with audits off, isolating
      the per-park deadlock check.

    The ≥1.5× lock-ops/sec bar applies to sharded-vs-monolithic on the
    largest point.
    """

    def test_sharded_vs_monolithic_sweep(self, uid_floor):
        audited = dict(audit=True, audit_every=AUDIT_EVERY)
        config_sharded = ManagerConfig(**BENCH_CONFIG, **audited)
        config_monolithic = ManagerConfig(
            **BENCH_CONFIG, **audited, incremental_deadlock=False
        )
        config_incremental = ManagerConfig(**BENCH_CONFIG)
        config_dfs = ManagerConfig(
            **BENCH_CONFIG, incremental_deadlock=False
        )
        rows = []
        for n_processes, density, spacing in CONTENTION_SWEEP:
            spec = _spec6(n_processes, density, spacing, seed=7)
            uid_floor.pin()
            sharded, wall_sharded = _timed_run(
                run_workload, build_workload(spec), 7, config_sharded
            )
            uid_floor.repin()
            monolithic, wall_monolithic = _timed_run(
                run_monolithic_workload,
                build_workload(spec),
                7,
                config_monolithic,
            )
            uid_floor.repin()
            incremental, wall_incremental = _timed_run(
                run_workload, build_workload(spec), 7, config_incremental
            )
            uid_floor.repin()
            dfs, wall_dfs = _timed_run(
                run_workload, build_workload(spec), 7, config_dfs
            )
            reference = _canonical_trace(sharded)
            assert reference == _canonical_trace(monolithic)
            assert reference == _canonical_trace(incremental)
            assert reference == _canonical_trace(dfs)
            ops = lock_operations(sharded.protocol_stats)
            rows.append(
                {
                    "n_processes": n_processes,
                    "conflict_density": density,
                    "arrival_spacing": spacing,
                    "n_subsystems": spec.n_subsystems,
                    "audit_every": AUDIT_EVERY,
                    "committed": sharded.stats.committed,
                    "lock_ops": ops,
                    "wall_s_sharded": round(wall_sharded, 3),
                    "wall_s_monolithic": round(wall_monolithic, 3),
                    "wall_s_incremental": round(wall_incremental, 3),
                    "wall_s_dfs": round(wall_dfs, 3),
                    "lock_ops_per_sec_sharded": round(
                        ops / wall_sharded
                    ),
                    "lock_ops_per_sec_monolithic": round(
                        ops / wall_monolithic
                    ),
                    "sharded_vs_monolithic": round(
                        wall_monolithic / wall_sharded, 2
                    ),
                    "incremental_vs_dfs": round(
                        wall_dfs / wall_incremental, 2
                    ),
                }
            )
        _update_bench(
            "sharded_vs_monolithic",
            {
                "description": (
                    "sharded table + incremental wait-for vs the "
                    "monolithic pre-sharding path; audited runs share "
                    "one sampling cadence; fixed seed 7, byte-identical "
                    "schedules asserted across all four variants"
                ),
                "sweep": rows,
            },
        )
        print()
        for row in rows:
            print(row)
        largest = rows[-1]
        assert largest["sharded_vs_monolithic"] >= 1.5, (
            f"sharded path only {largest['sharded_vs_monolithic']}x the "
            f"monolithic lock-ops/sec on the largest workload: {largest}"
        )


class TestCompiledVsIndexed:
    """Compiled conflict plane vs the adjacency (pre-bitset) hot path.

    Both sides run the sharded table and the incremental wait-for
    structure; the only difference is the conflict representation —
    per-type bitmasks + per-process held-type masks against frozenset
    adjacency iteration — plus the allocation-lean passes that rode in
    with the compiled plane (Wcc memo, slotted records).  Walls are
    min-of-2 with the GC parked on both sides; byte-identical schedules
    asserted at every point; the ≥1.3× bar applies to the largest
    (200-process) point.
    """

    def test_compiled_vs_indexed_sweep(self, uid_floor):
        config = ManagerConfig(**BENCH_CONFIG)
        rows = []
        for n_processes, density, spacing in CONTENTION_SWEEP:
            spec = _spec6(n_processes, density, spacing, seed=7)
            workload = build_workload(spec)
            uid_floor.pin()
            compiled, wall_c1 = _timed_run_quiet(workload, 7, config)
            uid_floor.repin()
            _, wall_c2 = _timed_run_quiet(workload, 7, config)
            wall_compiled = min(wall_c1, wall_c2)
            uid_floor.repin()
            indexed, wall_i1 = _timed_run_quiet(
                workload, 7, config, runner=run_adjacency_workload
            )
            uid_floor.repin()
            _, wall_i2 = _timed_run_quiet(
                workload, 7, config, runner=run_adjacency_workload
            )
            wall_indexed = min(wall_i1, wall_i2)
            assert _schedule_digest(compiled) == _schedule_digest(
                indexed
            ), f"schedule diverged at {n_processes} processes"
            ops = lock_operations(compiled.protocol_stats)
            rows.append(
                {
                    "n_processes": n_processes,
                    "conflict_density": density,
                    "arrival_spacing": spacing,
                    "n_subsystems": spec.n_subsystems,
                    "committed": compiled.stats.committed,
                    "lock_ops": ops,
                    "wall_s_compiled": round(wall_compiled, 3),
                    "wall_s_indexed": round(wall_indexed, 3),
                    "lock_ops_per_sec_compiled": round(
                        ops / wall_compiled
                    ),
                    "lock_ops_per_sec_indexed": round(
                        ops / wall_indexed
                    ),
                    "speedup": round(wall_indexed / wall_compiled, 2),
                }
            )
        _update_bench(
            "compiled_vs_indexed",
            {
                "description": (
                    "compiled conflict plane (bitset masks, Wcc memo, "
                    "slotted records) vs the adjacency hot path of the "
                    "sharding/parallel PRs; fixed seed 7, GC parked, "
                    "min-of-2 walls both sides, byte-identical "
                    "schedules asserted at every point"
                ),
                "sweep": rows,
            },
        )
        print()
        for row in rows:
            print(row)
        largest = rows[-1]
        assert largest["speedup"] >= 1.3, (
            f"compiled plane only {largest['speedup']}x the adjacency "
            f"path on the largest workload: {largest}"
        )


#: Pinned lock-ops/sec floor for the CI perf guard (smallest scaling
#: point, min-of-2 GC-parked walls).  Set to roughly a quarter of the
#: rate measured on the build box at PR time, so only a genuine hot-path
#: regression — not runner jitter — can trip it.
PERF_GUARD_FLOOR = 8_000


class TestPerfGuard:
    """Fast pinned-floor guard for the CI ``perf-guard`` job."""

    def test_lock_ops_per_sec_floor(self, uid_floor):
        config = ManagerConfig(**BENCH_CONFIG)
        spec = _spec(*SCALING_SWEEP[0], seed=7)
        workload = build_workload(spec)
        uid_floor.pin()
        result, wall_1 = _timed_run_quiet(workload, 7, config)
        uid_floor.repin()
        _, wall_2 = _timed_run_quiet(workload, 7, config)
        wall = min(wall_1, wall_2)
        ops = lock_operations(result.protocol_stats)
        rate = ops / wall
        print(f"\nperf-guard: {ops} lock ops / {wall:.3f}s = "
              f"{rate:.0f} ops/s (floor {PERF_GUARD_FLOOR})")
        assert rate >= PERF_GUARD_FLOOR, (
            f"lock throughput regressed: {rate:.0f} ops/s under the "
            f"pinned floor of {PERF_GUARD_FLOOR} "
            f"(smallest scaling point, min-of-2 walls)"
        )


class TestParallelVsSequential:
    """Thread-per-shard execution vs the sequential manager.

    Every (workers, batch-k) variant must emit a schedule byte-identical
    to the sequential run at the same seed — parallel mode is a pure
    perf change.  Historically the parallel mode was ~1.5x faster on
    the largest point: one CPU under the GIL means wall-clock gains
    were algorithmic, not thread-level — the per-shard in-flight
    buckets beat the sequential gate's scan of *all* in-flight
    activities, and the probe-first C-grant path skipped work.  The
    compiled conflict plane (``TestCompiledVsIndexed``) collapsed that
    gap: the sequential gate is now one bitwise AND per in-flight
    activity, so both modes run the same cheap hot path and the
    parallel mode's thread handoffs put it within noise of — not ahead
    of — the sequential manager.  The timing assertion is therefore an
    *overhead bound* (parallel must stay within 30% of sequential);
    byte-identity across every variant remains the real regression
    net.  Sequential baselines pass ``workers=0`` explicitly so a
    ``REPRO_WORKERS`` env default (the CI tier-1 matrix sets one)
    cannot silently parallelize them.
    """

    def test_parallel_smoke(self, uid_floor):
        """Smallest sweep point, workers=4: byte-identity only.

        This is the CI ``parallel-bench-smoke`` selection — fast enough
        for every push, no timing assertions.
        """
        workload = build_workload(_spec_parallel(PARALLEL_SWEEP[0]))
        uid_floor.pin()
        sequential = run_workload(
            workload,
            "process-locking",
            seed=7,
            config=ManagerConfig(workers=0, batch_k=1, **BENCH_CONFIG),
        )
        uid_floor.repin()
        parallel = run_workload(
            workload,
            "process-locking",
            seed=7,
            config=ManagerConfig(workers=4, batch_k=2, **BENCH_CONFIG),
        )
        assert _schedule_digest(sequential) == _schedule_digest(parallel)
        assert sequential.stats.committed == parallel.stats.committed
        assert sequential.makespan == parallel.makespan

    def test_parallel_vs_sequential_sweep(self, uid_floor):
        rows = []
        for point in PARALLEL_SWEEP:
            n_processes, n_types, n_subsystems, density, spacing = point
            workload = build_workload(_spec_parallel(point))
            seq_config = ManagerConfig(
                workers=0, batch_k=1, **BENCH_CONFIG
            )
            uid_floor.pin()
            sequential, wall_a = _timed_run_quiet(
                workload, 7, seq_config
            )
            uid_floor.repin()
            _, wall_b = _timed_run_quiet(workload, 7, seq_config)
            wall_sequential = min(wall_a, wall_b)
            reference = _schedule_digest(sequential)
            variants = []
            for workers in _worker_counts(n_subsystems):
                for batch_k in PARALLEL_BATCH_KS:
                    # Min-of-2 walls, same as the sequential baseline:
                    # a single parallel wall is exposed to one-off
                    # scheduler/allocator stalls that read as bogus
                    # slowdowns (a 0.79x outlier shipped in an earlier
                    # BENCH_scaling.json this way).
                    parallel_config = ManagerConfig(
                        workers=workers,
                        batch_k=batch_k,
                        **BENCH_CONFIG,
                    )
                    uid_floor.repin()
                    parallel, wall_1 = _timed_run_quiet(
                        workload, 7, parallel_config
                    )
                    uid_floor.repin()
                    _, wall_2 = _timed_run_quiet(
                        workload, 7, parallel_config
                    )
                    wall = min(wall_1, wall_2)
                    assert reference == _schedule_digest(parallel), (
                        f"schedule diverged at workers={workers} "
                        f"batch_k={batch_k} on {point}"
                    )
                    variants.append(
                        {
                            "workers": workers,
                            "batch_k": batch_k,
                            "wall_s": round(wall, 3),
                            "speedup": round(wall_sequential / wall, 2),
                        }
                    )
            best_full = min(
                variant["wall_s"]
                for variant in variants
                if variant["workers"] == n_subsystems
            )
            rows.append(
                {
                    "n_processes": n_processes,
                    "n_activity_types": n_types,
                    "n_subsystems": n_subsystems,
                    "conflict_density": density,
                    "arrival_spacing": spacing,
                    "committed": sequential.stats.committed,
                    "lock_ops": lock_operations(
                        sequential.protocol_stats
                    ),
                    "wall_s_sequential": round(wall_sequential, 3),
                    "variants": variants,
                    "speedup_at_full_workers": round(
                        wall_sequential / best_full, 2
                    ),
                }
            )
        _update_bench(
            "parallel_vs_sequential",
            {
                "description": (
                    "thread-per-shard parallel mode vs the sequential "
                    "manager over workers x batch-k grids; fixed seed "
                    "7, GC parked during timing, all walls min-of-2 "
                    "(sequential and every parallel variant); "
                    "byte-identical schedules asserted for every "
                    "variant"
                ),
                "sweep": rows,
            },
        )
        print()
        for row in rows:
            print(
                {
                    key: value
                    for key, value in row.items()
                    if key != "variants"
                }
            )
        # Overhead bound, not a speedup bar: since the compiled
        # conflict plane the sequential manager runs the same bitwise
        # gate the parallel mode's per-shard buckets used to win on,
        # so the best full-worker variant is expected near 1.0x (see
        # the class docstring).  Guard against the parallel path
        # *regressing* — thread handoffs must stay within 30% of the
        # sequential wall on the largest point.
        largest = rows[-1]
        assert largest["speedup_at_full_workers"] >= 0.7, (
            "parallel mode fell to "
            f"{largest['speedup_at_full_workers']}x the sequential "
            f"manager at workers=n_subsystems on the largest point "
            f"(overhead bound 0.7x): {largest}"
        )
