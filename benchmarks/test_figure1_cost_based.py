"""Exhibit F1 — Figure 1: dynamic pivot determination.

Traces the cost-based scheduling algorithm over the scripted demo
process, asserts the pseudo-pivot transition happens exactly at the
threshold crossing, verifies Lemma 1 (a real pivot trips any finite
threshold), and cross-checks the symbolic trace against the live
protocol's ``classify_regular``.
"""

import math

import pytest

from repro.activities.commutativity import ConflictMatrix
from repro.analysis.exhibits import build_figure1_demo, figure1_text
from repro.core.cost_based import figure1_trace, lemma1_holds
from repro.core.locks import LockMode
from repro.core.protocol import ProcessLockManager
from repro.process.builder import ProgramBuilder
from repro.process.instance import Process


def run_figure1():
    registry, names, threshold = build_figure1_demo()
    steps = figure1_trace(registry, names, threshold)
    # Cross-check against the live protocol.
    conflicts = ConflictMatrix(registry)
    protocol = ProcessLockManager(registry, conflicts)
    program = (
        ProgramBuilder("fig1", registry, wcc_threshold=threshold)
        .sequence(*names[:-1])
        .pivot(names[-1])
        .build()
    )
    process = Process(pid=1, program=program, timestamp=1)
    protocol.attach(process)
    live = []
    for name in names:
        activity = process.launch(name)
        live.append(protocol.classify_regular(process, activity))
        process.on_committed(activity)
    return registry, steps, live, threshold


@pytest.mark.benchmark(group="exhibits")
def test_figure1_cost_based(benchmark):
    registry, steps, live, threshold = benchmark(run_figure1)
    print()
    print(figure1_text(steps))

    # The symbolic algorithm and the live protocol agree step by step.
    assert [s.treatment for s in steps] == live

    # The transition structure of the demo: C… then P from the crossing.
    treatments = [s.treatment for s in steps]
    first_p = treatments.index(LockMode.P)
    assert all(t is LockMode.C for t in treatments[:first_p])
    assert all(t is LockMode.P for t in treatments[first_p:])
    crossing = steps[first_p]
    assert crossing.wcc_before < threshold <= crossing.wcc_after
    assert crossing.pseudo_pivot

    # Lemma 1 for the real pivot, across thresholds.
    for bound in (0.0, 1.0, 1e9, math.inf):
        assert lemma1_holds(registry, "charge_customer", bound)
