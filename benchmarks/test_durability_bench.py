"""Durability overhead guard.

Pins what ``repro serve --store`` costs over the in-memory default on
one contended grounded workload, end to end: journaled submissions,
write-through subsystem WALs and record stores, terminal records, a
final snapshot, and batch fsync.  The factor is recorded to
``BENCH_durability.json`` and asserted under a ceiling — the headline
claim is that full kill-9 durability stays within a small constant
factor of the in-memory run, so anything accidentally quadratic on the
append path (say, re-reading the journal per drain) fails loudly here.

The schedule itself is asserted byte-identical: durability may only
observe the run, never participate in it.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.faults.harness import canonical_trace
from repro.scheduler.manager import ManagerConfig, make_manager
from repro.sim.runner import make_protocol
from repro.sim.workload import WorkloadSpec, build_workload
from repro.storage import PersistencePlane, Store

BENCH_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_durability.json"
)

#: Grounded (every activity is a real subsystem transaction, so the
#: WAL write-through path is exercised), contended, big enough for
#: stable timing.
SPEC = WorkloadSpec(
    n_processes=60,
    n_activity_types=24,
    n_subsystems=3,
    conflict_density=0.3,
    arrival_spacing=0.5,
    failure_probability=0.02,
    grounded=True,
    seed=7,
)

#: A fully durable run may cost at most this factor over in-memory
#: (the issue's acceptance bar).  Measured factors for the log backend
#: sit well under 2x with batch fsync.
MAX_DURABLE_FACTOR = 3.0

CONFIG = dict(max_resubmissions=100_000)


def _run_once(store):
    workload = build_workload(SPEC)
    config = ManagerConfig(**CONFIG, store=store)
    manager = make_manager(
        make_protocol("process-locking", workload),
        subsystems=workload.make_subsystems(),
        config=config,
        seed=SPEC.seed,
    )
    plane = (
        PersistencePlane(store, workload.programs, snapshot_every=256)
        if store is not None
        else None
    )
    start = time.perf_counter()
    for index, program in enumerate(workload.programs):
        pid = manager.submit(program)
        if plane is not None:
            plane.note_submit(pid, index)
    result = manager.run()
    if plane is not None:
        is_terminal = lambda pid: (  # noqa: E731
            pid not in manager._pending_init
            and pid not in manager._processes
        )
        plane.after_drain(manager, is_terminal, set())
        plane.final(manager)
    return result, time.perf_counter() - start


def _timed_min2(uid_floor, make_store):
    first_result = None
    walls = []
    stats = {}
    for attempt in range(2):
        uid_floor.repin()
        store = make_store()
        result, wall = _run_once(store)
        walls.append(wall)
        if attempt == 0:
            first_result = result
            if store is not None:
                stats = store.stats()
        if store is not None:
            store.close()
    return first_result, min(walls), stats


def test_durable_log_overhead_is_bounded(uid_floor):
    uid_floor.pin()
    _run_once(None)  # warm-up: imports, first-touch costs

    workdir = tempfile.mkdtemp(prefix="repro-bench-durability-")
    counters = iter(range(1_000))

    def log_store():
        return Store.open(
            "log",
            f"{workdir}/log-{next(counters)}",
            fsync="batch",
        )

    def sqlite_store():
        return Store.open(
            "sqlite",
            f"{workdir}/sqlite-{next(counters)}",
            fsync="batch",
        )

    plain, wall_plain, _ = _timed_min2(uid_floor, lambda: None)
    durable, wall_log, log_stats = _timed_min2(uid_floor, log_store)
    __, wall_sqlite, sqlite_stats = _timed_min2(
        uid_floor, sqlite_store
    )

    # Durability is an observer: the schedule is byte-identical.
    assert canonical_trace(plain.trace.events) == canonical_trace(
        durable.trace.events
    )
    assert plain.stats.committed == durable.stats.committed
    assert plain.makespan == durable.makespan

    factor_log = wall_log / wall_plain
    factor_sqlite = wall_sqlite / wall_plain
    BENCH_PATH.write_text(
        json.dumps(
            {
                "description": (
                    "fully durable run (journal + snapshot + "
                    "write-through subsystem WAL/data, batch fsync) "
                    "vs the in-memory default on one grounded "
                    "contended workload; schedules asserted "
                    "byte-identical; all walls min-of-2"
                ),
                "n_processes": SPEC.n_processes,
                "committed": plain.stats.committed,
                "wall_s_memory": round(wall_plain, 3),
                "wall_s_log": round(wall_log, 3),
                "wall_s_sqlite": round(wall_sqlite, 3),
                "log_overhead_factor": round(factor_log, 2),
                "sqlite_overhead_factor": round(factor_sqlite, 2),
                "log_appends": log_stats.get("appends"),
                "log_fsyncs": log_stats.get("fsyncs"),
                "log_bytes_written": log_stats.get("bytes_written"),
                "sqlite_appends": sqlite_stats.get("appends"),
                "max_allowed_factor": MAX_DURABLE_FACTOR,
            },
            indent=2,
        )
        + "\n"
    )
    print(
        f"\ndurability overhead: log {factor_log:.2f}x, "
        f"sqlite {factor_sqlite:.2f}x over memory "
        f"({wall_plain:.3f}s -> {wall_log:.3f}s / {wall_sqlite:.3f}s; "
        f"{log_stats.get('appends')} appends, "
        f"{log_stats.get('fsyncs')} fsyncs)"
    )
    assert factor_log < MAX_DURABLE_FACTOR, (
        f"durable log costs {factor_log:.2f}x over in-memory "
        f"(limit {MAX_DURABLE_FACTOR}x)"
    )
