"""Make the shared harness importable from the benchmark files."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
