"""Make the shared harness importable from the benchmark files."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent))

# Re-export shared fixtures so benchmark files can use them too.
from tests.conftest import UidFloorPinner, uid_floor  # noqa: E402,F401
