"""Open-system service benchmark: multi-client Poisson load over TCP.

Drives the full ``repro serve`` stack — asyncio front door, wire
protocol, engine thread, sequential or thread-per-shard manager — with
four concurrent clients submitting processes on Poisson arrival
schedules (wall clock, not virtual time), and measures what a service
operator would: submit-to-commit wall latency (p50/p99) and achieved
completion throughput versus offered load, per backend.

The sweep ascends offered rates until the service stops tracking the
offered load; the highest rate still achieving ≥80 % of it is recorded
as the measured saturation point.  Results land in
``BENCH_service.json`` next to the other benchmark artifacts.
"""

import json
import threading
import time
from pathlib import Path

import pytest

from repro.client import ServiceClient
from repro.server.net import start_server_thread
from repro.server.service import ServiceConfig
from repro.sim.arrivals import poisson_arrivals
from repro.sim.workload import WorkloadSpec

BENCH_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_service.json"
)

N_CLIENTS = 4
SUBMISSIONS = 120  # total per (backend, rate) point
#: Offered load sweep, arrivals/second across all clients.
RATES = [25.0, 100.0, 400.0, 1600.0]
#: (label, workers, batch_k) — the sequential manager and the
#: thread-per-shard manager behind the same front door.
BACKENDS = [("sequential", 0, 1), ("parallel", 3, 2)]
#: A rate "tracks" the offered load while achieved/offered >= this.
TRACKING = 0.80

SPEC = WorkloadSpec(
    n_processes=8,
    n_activity_types=12,
    conflict_density=0.3,
    failure_probability=0.04,
    seed=3,
)


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (values need not be sorted)."""
    ordered = sorted(values)
    index = min(
        len(ordered) - 1, max(0, round(q / 100 * len(ordered)) - 1)
    )
    return ordered[index]


def drive_clients(host: str, port: int, rate: float) -> dict:
    """Offer ``SUBMISSIONS`` processes at ``rate``/s over 4 clients.

    Each client pipelines ``wait=True`` submits on its own Poisson
    schedule (no waiting for completions between sends), so the
    offered load is open-system: arrivals keep landing while earlier
    processes are still being served.
    """
    per_client = SUBMISSIONS // N_CLIENTS
    latencies: list[float] = []
    outcomes: dict[str, int] = {}
    mutex = threading.Lock()
    start = time.monotonic()
    last_done = [start]

    def client_main(index: int) -> None:
        schedule = poisson_arrivals(
            rate=rate / N_CLIENTS, count=per_client, seed=31 + index
        )
        pending = []

        def record(fut, sent_at: float) -> None:
            # Runs on the client's reader thread the moment the
            # response frame arrives, so the latency is genuine
            # submit-to-commit wall time, not collection-loop time.
            done_at = time.monotonic()
            frame = fut.result()
            assert frame.get("ok"), frame
            outcome = frame["outcomes"][0]["outcome"]
            with mutex:
                latencies.append(done_at - sent_at)
                outcomes[outcome] = outcomes.get(outcome, 0) + 1
                last_done[0] = max(last_done[0], done_at)

        with ServiceClient(host, port, timeout=120) as client:
            for j, offset in enumerate(schedule):
                now = time.monotonic() - start
                if offset > now:
                    time.sleep(offset - now)
                fut = client.call_async(
                    "submit",
                    program=(index * 31 + j) % SPEC.n_processes,
                    count=1,
                    wait=True,
                )
                fut.add_done_callback(
                    lambda f, sent=time.monotonic(): record(f, sent)
                )
                pending.append(fut)
            for fut in pending:
                fut.result(timeout=120)

    threads = [
        threading.Thread(target=client_main, args=(i,))
        for i in range(N_CLIENTS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    wall = max(last_done[0] - start, 1e-9)
    done = len(latencies)
    return {
        "offered_rate": rate,
        "completed": done,
        "committed": outcomes.get("committed", 0),
        "aborted": outcomes.get("aborted", 0),
        "wall_s": round(wall, 3),
        "achieved_rate": round(done / wall, 1),
        "p50_ms": round(percentile(latencies, 50) * 1e3, 2),
        "p99_ms": round(percentile(latencies, 99) * 1e3, 2),
    }


def run_service_sweep() -> dict:
    results: dict[str, list[dict]] = {}
    saturation: dict[str, float | None] = {}
    for label, workers, batch_k in BACKENDS:
        rows = []
        for rate in RATES:
            handle = start_server_thread(
                ServiceConfig(
                    spec=SPEC,
                    seed=3,
                    workers=workers,
                    batch_k=batch_k,
                )
            )
            try:
                row = drive_clients(handle.host, handle.port, rate)
            finally:
                handle.stop()
            row["tracking"] = round(
                row["achieved_rate"] / rate, 3
            )
            rows.append(row)
        results[label] = rows
        tracked = [
            row["offered_rate"]
            for row in rows
            if row["tracking"] >= TRACKING
        ]
        saturation[label] = max(tracked) if tracked else None
    return {"sweep": results, "saturation": saturation}


@pytest.mark.benchmark(group="service")
def test_service_open_system(benchmark):
    table = benchmark.pedantic(
        run_service_sweep, rounds=1, iterations=1
    )
    payload = {
        "open_system_service": {
            "description": (
                "open-system load over the repro serve TCP front "
                "door: 4 concurrent clients, Poisson arrivals, "
                "pipelined wait=True submits; wall-clock "
                "submit-to-commit latency and achieved completion "
                "rate per offered rate and backend"
            ),
            "clients": N_CLIENTS,
            "submissions_per_point": SUBMISSIONS,
            "tracking_threshold": TRACKING,
            **table,
        }
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))

    for label, rows in table["sweep"].items():
        for row in rows:
            # Every offered process terminated and was answered.
            assert row["completed"] == SUBMISSIONS, (label, row)
            assert row["committed"] > 0, (label, row)
        # The lowest offered rate must be fully tracked — a service
        # that cannot keep up with 25/s has a functional regression.
        assert rows[0]["tracking"] >= TRACKING, (label, rows[0])
        assert table["saturation"][label] is not None, label
