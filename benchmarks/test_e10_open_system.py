"""E10 — Open-system saturation: throughput vs offered load.

Offers Poisson arrivals at increasing rates and measures sustained
throughput and mean latency for serial execution, exclusive S2PL, and
process locking.  Expected shape: all protocols track the offered load
while unsaturated; the serial scheduler saturates first (its service
capacity is one process at a time), process locking saturates last and
sustains the highest peak throughput — the open-system restatement of
the paper's concurrency claim.
"""

import pytest

from harness import print_experiment
from repro.sim.arrivals import poisson_arrivals
from repro.sim.metrics import mean
from repro.sim.runner import run_workload
from repro.sim.workload import WorkloadSpec, build_workload

RATES = [0.05, 0.1, 0.2, 0.4]
PROTOCOLS = ["serial", "s2pl", "process-locking"]
SEEDS = [1, 2, 3]

SPEC = WorkloadSpec(
    n_processes=24,
    n_activity_types=14,
    conflict_density=0.3,
    failure_probability=0.04,
    pivot_probability=0.7,
)


def run_e10():
    table: dict[tuple[float, str], dict[str, float]] = {}
    for rate in RATES:
        for protocol in PROTOCOLS:
            throughputs = []
            latencies = []
            for seed in SEEDS:
                workload = build_workload(SPEC.with_(seed=seed))
                arrivals = poisson_arrivals(
                    rate, len(workload.programs), seed=seed
                )
                result = run_workload(
                    workload, protocol, seed=seed, arrivals=arrivals
                )
                throughputs.append(result.throughput)
                latencies.append(result.mean_latency)
            table[(rate, protocol)] = {
                "throughput": mean(throughputs),
                "latency": mean(latencies),
            }
    return table


@pytest.mark.benchmark(group="experiments")
def test_e10_open_system(benchmark):
    table = benchmark.pedantic(run_e10, rounds=1, iterations=1)
    rows = [
        {
            "rate": rate,
            "protocol": protocol,
            "throughput": round(m["throughput"], 4),
            "latency": round(m["latency"], 1),
        }
        for (rate, protocol), m in table.items()
    ]
    print_experiment(
        "E10: open-system saturation (Poisson arrivals, "
        f"mean of {len(SEEDS)} seeds)", rows,
    )

    # Mean commit latency is the clean open-system signal (throughput
    # is confounded by intrinsic-failure re-rolls across resubmissions):
    # at every offered load, process locking turns processes around
    # faster than exclusive S2PL, which beats serial.
    for rate in RATES:
        assert (
            table[(rate, "process-locking")]["latency"]
            < table[(rate, "s2pl")]["latency"]
        )
        assert (
            table[(rate, "s2pl")]["latency"]
            < table[(rate, "serial")]["latency"]
        )
    # Saturation is visible: latency grows with offered load.
    for protocol in PROTOCOLS:
        series = [table[(rate, protocol)]["latency"] for rate in RATES]
        assert series[-1] > series[0]
