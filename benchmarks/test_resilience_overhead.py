"""Resilience-layer overhead guard.

``ManagerConfig(resilience=None)`` — the default — must cost nothing:
every hook site in the manager is a single ``is not None`` test, no RNG
draws, no extra engine events, so the schedule is *byte-identical* to a
build without the subsystem.  That identity is pinned here against a
digest recorded before the layer existed.

An *attached but inert* layer (breakers that can never trip) must also
leave the schedule byte-identical — admission gating admits instantly
when nothing is OPEN and the threshold provider returns the base
``Wcc*`` — while its bookkeeping stays within a bounded constant
factor, recorded to ``BENCH_resilience_overhead.json``.
"""

from __future__ import annotations

import itertools
import json
import time
from pathlib import Path

import repro.activities.activity as _activity_module
import repro.core.locks as _locks_module
from repro.faults.harness import canonical_trace, trace_digest
from repro.resilience import (
    BreakerConfig,
    ResilienceConfig,
    ResilienceLayer,
)
from repro.scheduler.manager import ManagerConfig
from repro.sim.runner import run_workload
from repro.sim.workload import WorkloadSpec, build_workload

BENCH_PATH = (
    Path(__file__).resolve().parent.parent
    / "BENCH_resilience_overhead.json"
)

#: Digest of this benchmark's schedule recorded on a build *without*
#: the resilience subsystem (uids renumbered canonically, so the value
#: is floor-independent).  If the default-config run ever drifts from
#: it, a hook leaked into the ``resilience=None`` path.
PINNED_PRE_PR_DIGEST = "aaba0fa041610606"

#: Fixed uid floor: both paired runs restart the global counters here
#: so their raw traces are byte-comparable within the test.
UID_FLOOR = 777_000_000

#: Contended, failure-bearing point with a finite ``Wcc*`` so the
#: classify path (where the threshold provider hooks in) is hot.
SPEC = WorkloadSpec(
    n_processes=40,
    n_activity_types=18,
    n_subsystems=3,
    conflict_density=0.4,
    arrival_spacing=0.5,
    failure_probability=0.05,
    wcc_threshold=30.0,
    seed=11,
)

#: An attached-but-inert layer may cost at most this factor.  Measured
#: factors sit near 1.0–1.3× (admission checks plus threshold
#: indirection); the ceiling absorbs CI-runner noise.
MAX_INERT_FACTOR = 2.5


def _pin_uid_floor() -> None:
    _activity_module._activity_ids = itertools.count(UID_FLOOR)
    _locks_module._lock_ids = itertools.count(UID_FLOOR)


def _inert_layer() -> ResilienceLayer:
    """A layer whose breakers can never reach OPEN."""
    return ResilienceLayer(
        ResilienceConfig(
            breaker=BreakerConfig(failure_threshold=10**9)
        )
    )


def _timed(resilience=None):
    config = ManagerConfig(
        max_resubmissions=100_000, resilience=resilience
    )
    workload = build_workload(SPEC)
    start = time.perf_counter()
    result = run_workload(
        workload, "process-locking", seed=SPEC.seed, config=config
    )
    return result, time.perf_counter() - start


def test_default_config_matches_pre_pr_digest():
    _pin_uid_floor()
    result, _ = _timed()
    digest = trace_digest(result.trace.events)
    assert digest == PINNED_PRE_PR_DIGEST, (
        f"resilience=None schedule drifted from the pre-layer build "
        f"({digest} != {PINNED_PRE_PR_DIGEST}): some hook is live on "
        f"the default path"
    )


def test_inert_layer_is_byte_identical_and_bounded():
    # Warm-up so neither measured run pays first-import costs.
    _pin_uid_floor()
    _timed()

    _pin_uid_floor()
    plain, wall_plain = _timed()
    _pin_uid_floor()
    layer = _inert_layer()
    guarded, wall_guarded = _timed(layer)

    assert canonical_trace(plain.trace.events) == canonical_trace(
        guarded.trace.events
    )
    assert plain.stats.committed == guarded.stats.committed
    assert plain.makespan == guarded.makespan
    # The layer watched the run without shaping it.
    assert layer.stats.admissions_deferred == 0
    assert layer.stats.breaker_opens == 0

    factor = wall_guarded / wall_plain
    BENCH_PATH.write_text(
        json.dumps(
            {
                "description": (
                    "attached-but-inert resilience layer vs the "
                    "resilience=None default on one contended "
                    "workload; schedules asserted byte-identical"
                ),
                "n_processes": SPEC.n_processes,
                "committed": plain.stats.committed,
                "wall_s_default": round(wall_plain, 3),
                "wall_s_inert_layer": round(wall_guarded, 3),
                "inert_overhead_factor": round(factor, 2),
                "max_allowed_factor": MAX_INERT_FACTOR,
                "pinned_pre_pr_digest": PINNED_PRE_PR_DIGEST,
            },
            indent=2,
        )
        + "\n"
    )
    print(
        f"\nresilience overhead: {factor:.2f}x "
        f"({wall_plain:.3f}s -> {wall_guarded:.3f}s)"
    )
    assert factor < MAX_INERT_FACTOR, (
        f"inert resilience layer costs {factor:.2f}x "
        f"(limit {MAX_INERT_FACTOR}x)"
    )
