"""E4 — Cascading aborts are restricted to running processes.

High-contention workload under process locking; the run instruments the
manager to census the state of every cascade victim at abort time.
Expected shape: *all* victims are running, none completing, and
completing processes commit with lower residual latency than the overall
mean (they are first-class).
"""

import pytest

from harness import print_experiment
from repro.process.state import ProcessState
from repro.scheduler.manager import ManagerConfig, ProcessManager
from repro.sim.runner import make_protocol
from repro.sim.workload import WorkloadSpec, build_workload

SPEC = WorkloadSpec(
    n_processes=12,
    n_activity_types=12,
    conflict_density=0.7,
    failure_probability=0.08,
    pivot_probability=0.9,
)


class CensusManager(ProcessManager):
    """Manager that records each cascade victim's state at selection.

    The census hooks decision application: the states are captured the
    instant the protocol names its victims, before any abort work runs.
    (``_begin_protocol_abort`` itself is also re-invoked idempotently
    for victims whose abort a nested cascade already started, so hooking
    there would double-count.)
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.victim_states: list[str] = []

    def _apply_decision(self, decision, request):
        from repro.core.decisions import AbortVictims

        if isinstance(decision, AbortVictims):
            for pid in decision.victims:
                victim = self._processes.get(pid)
                if victim is not None:
                    self.victim_states.append(victim.state.value)
        super()._apply_decision(decision, request)


def run_e4():
    states: list[str] = []
    committed = 0
    submitted = 0
    for seed in (5, 6, 7, 8):
        workload = build_workload(SPEC.with_(seed=seed))
        protocol = make_protocol("process-locking", workload)
        manager = CensusManager(
            protocol, config=ManagerConfig(audit=True), seed=seed
        )
        for program in workload.programs:
            manager.submit(program)
        result = manager.run()
        states.extend(manager.victim_states)
        committed += result.stats.committed
        submitted += result.stats.submitted
    return states, committed, submitted


@pytest.mark.benchmark(group="experiments")
def test_e4_completing_protection(benchmark):
    states, committed, submitted = benchmark.pedantic(
        run_e4, rounds=1, iterations=1
    )
    census = {
        state: states.count(state)
        for state in sorted(set(states))
    }
    rows = [
        {"victim state": state, "count": count}
        for state, count in census.items()
    ]
    rows.append(
        {"victim state": "(committed processes)",
         "count": f"{committed}/{submitted}"}
    )
    print_experiment(
        "E4: cascade-victim state census under process locking", rows,
    )

    assert states, "the workload must actually produce cascades"
    # The paper's guarantee: cascades hit running processes only.
    assert ProcessState.COMPLETING.value not in census
    assert set(census) == {ProcessState.RUNNING.value}
