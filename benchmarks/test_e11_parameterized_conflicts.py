"""E11 — Parameterized conflicts (the paper's granularity remark).

The type-level ``CON`` matrix is "the most general possibility" given
black-box activities, but the paper notes it "does not consider
parameters associated with these invocations".  When parameter
information is available, one logical activity can be expanded into a
partitioned type family (``reserve@sku0``, ``reserve@sku1``, …) so that
only same-partition invocations conflict.

This experiment builds a hot-spot workload — every process reserves one
of K SKUs, then pays through a shared gateway pivot — and compares the
coarse (single conflicting type) against the partitioned reading.
Expected shape: makespan drops and concurrency rises with the number of
partitions; at K = 1 both readings coincide.
"""

import pytest

from harness import print_experiment
from repro.activities.commutativity import ConflictMatrix
from repro.activities.partitioning import (
    coarse_equivalent,
    declare_family_self_conflicts,
    define_partitioned_compensatable,
)
from repro.activities.registry import ActivityRegistry
from repro.core.protocol import ProcessLockManager
from repro.process.builder import ProgramBuilder
from repro.scheduler.manager import ManagerConfig, ProcessManager

PROCESSES = 12
PARTITION_COUNTS = [1, 2, 4, 8]


def run_hotspot(partitions: int, refined: bool, seed: int = 3):
    registry = ActivityRegistry()
    labels = [f"sku{i}" for i in range(partitions)]
    family = define_partitioned_compensatable(
        registry, "reserve", labels, "shop",
        cost=3.0, compensation_cost=1.0,
    )
    registry.define_pivot("charge", "gateway", cost=1.0)
    registry.define_retriable("ship", "shop", cost=1.0)
    matrix = ConflictMatrix(registry)
    if refined:
        declare_family_self_conflicts(matrix, family)
    else:
        coarse_equivalent(registry, matrix, family)
    matrix.close_perfect()
    protocol = ProcessLockManager(registry, matrix)
    manager = ProcessManager(
        protocol, config=ManagerConfig(audit=True), seed=seed
    )
    for index in range(PROCESSES):
        member = family.member(labels[index % partitions])
        program = (
            ProgramBuilder(f"order{index}", registry)
            .step(member)
            .pivot("charge")
            .alternatives(lambda b: b.step("ship"))
            .build()
        )
        manager.submit(program)
    result = manager.run()
    return result


def run_e11():
    rows = []
    for count in PARTITION_COUNTS:
        for refined in (False, True):
            result = run_hotspot(count, refined)
            rows.append(
                {
                    "partitions": count,
                    "CON": "parameterized" if refined else "type-level",
                    "makespan": round(result.makespan, 1),
                    "concurrency": round(result.mean_concurrency, 2),
                    "cascades": result.protocol_stats.cascade_victims,
                }
            )
    return rows


@pytest.mark.benchmark(group="experiments")
def test_e11_parameterized_conflicts(benchmark):
    rows = benchmark.pedantic(run_e11, rounds=1, iterations=1)
    print_experiment(
        "E11: type-level vs parameterized CON on a hot-spot workload",
        rows,
    )
    by = {
        (row["partitions"], row["CON"]): row["makespan"]
        for row in rows
    }
    # Identical when there is nothing to partition.
    assert by[(1, "parameterized")] == by[(1, "type-level")]
    # The refinement helps, and more partitions help more.
    for count in PARTITION_COUNTS[1:]:
        assert by[(count, "parameterized")] < by[(count, "type-level")]
    refined_series = [
        by[(count, "parameterized")] for count in PARTITION_COUNTS
    ]
    assert refined_series[-1] < refined_series[0]