"""Domain-scenario benchmarks (the paper's Section-6 applications).

Runs each of the four application scenarios — e-commerce payments,
travel booking, hospital order entry, manufacturing coordination —
under serial execution, exclusive S2PL, and process locking, over real
(simulated) subsystems with derived conflict matrices.  Asserted shape:
process locking is correct on every scenario (CT + P-RC) and never
slower than serial execution; subsystem histories stay CPSR + ACA.
"""

import pytest

from harness import print_experiment
from repro.scheduler.manager import ManagerConfig, ProcessManager
from repro.sim.runner import PROTOCOL_FACTORIES
from repro.theory.criteria import (
    has_correct_termination,
    is_process_recoverable,
)
from repro.workloads import (
    hospital_scenario,
    manufacturing_scenario,
    payment_scenario,
    travel_scenario,
)

SCENARIOS = {
    "payment": lambda: payment_scenario(
        customers=8, items=3, failure_probability=0.04
    ),
    "travel": lambda: travel_scenario(
        trips=8, failure_probability=0.06
    ),
    "hospital": lambda: hospital_scenario(
        patients=6, failure_probability=0.04
    ),
    "manufacturing": lambda: manufacturing_scenario(
        orders=8, failure_probability=0.05
    ),
}
PROTOCOLS = ["serial", "s2pl", "process-locking"]
SEEDS = [1, 2, 3]


def run_scenarios():
    rows = []
    checks = []
    for scenario_name, maker in SCENARIOS.items():
        for protocol_name in PROTOCOLS:
            makespans = []
            committed = 0
            for seed in SEEDS:
                scenario = maker()
                factory = PROTOCOL_FACTORIES[protocol_name]
                protocol = factory(
                    scenario.registry, scenario.conflicts
                )
                pool = scenario.make_subsystems()
                manager = ProcessManager(
                    protocol,
                    subsystems=pool,
                    config=ManagerConfig(audit=True),
                    seed=seed,
                )
                for program in scenario.programs:
                    manager.submit(program)
                result = manager.run()
                makespans.append(result.makespan)
                committed += result.stats.committed
                if protocol_name == "process-locking":
                    schedule = result.trace.to_schedule(
                        scenario.conflicts.conflict
                    )
                    checks.append(
                        has_correct_termination(schedule, stride=3)
                        and is_process_recoverable(schedule)
                        and all(
                            sub.is_serializable()
                            and sub.avoids_cascading_aborts()
                            for sub in pool
                        )
                    )
            rows.append(
                {
                    "scenario": scenario_name,
                    "protocol": protocol_name,
                    "makespan": round(
                        sum(makespans) / len(makespans), 1
                    ),
                    "committed": committed,
                }
            )
    return rows, checks


@pytest.mark.benchmark(group="scenarios")
def test_domain_scenarios(benchmark):
    rows, checks = benchmark.pedantic(
        run_scenarios, rounds=1, iterations=1
    )
    print_experiment(
        f"Domain scenarios × protocols (mean of {len(SEEDS)} seeds)",
        rows,
    )
    assert checks and all(checks)
    by = {
        (row["scenario"], row["protocol"]): row["makespan"]
        for row in rows
    }
    for scenario_name in SCENARIOS:
        assert (
            by[(scenario_name, "process-locking")]
            <= by[(scenario_name, "serial")]
        ), scenario_name
