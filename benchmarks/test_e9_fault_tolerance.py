"""E9 — Fault tolerance: manager crash and recovery.

Sweeps the crash point over a workload's event timeline; after each
crash the manager is recovered from its journal and run to quiescence.
Asserted shape: at *every* crash point the combined schedule is complete
and correct (CT + P-RC), and every process that had passed its point of
no return before the crash commits afterwards (forward recovery of
completing processes — the "guaranteed termination" promise surviving
the PM's own failure).
"""

import pytest

from harness import print_experiment
from repro.process.state import ProcessState
from repro.scheduler.manager import ManagerConfig, ProcessManager
from repro.scheduler.recovery import crash, recover
from repro.sim.runner import make_protocol
from repro.sim.workload import WorkloadSpec, build_workload
from repro.theory.criteria import (
    has_correct_termination,
    is_process_recoverable,
)

SPEC = WorkloadSpec(
    n_processes=8,
    n_activity_types=12,
    conflict_density=0.4,
    failure_probability=0.08,
    pivot_probability=0.8,
)
CRASH_POINTS = [5, 15, 30, 60, 120]
SEEDS = [3, 9]


def run_e9():
    rows = []
    for seed in SEEDS:
        workload = build_workload(SPEC.with_(seed=seed))
        for point in CRASH_POINTS:
            manager = ProcessManager(
                make_protocol("process-locking", workload),
                config=ManagerConfig(audit=True),
                seed=seed,
            )
            for program in workload.programs:
                manager.submit(program)
            manager.engine.run_steps(point)
            image = crash(manager)
            completing = [
                snap.pid
                for snap in image.snapshots
                if snap.state == ProcessState.COMPLETING.value
            ]
            recovered = recover(
                image,
                make_protocol("process-locking", workload),
                config=ManagerConfig(audit=True),
                seed=seed,
            )
            result = recovered.run()
            schedule = result.trace.to_schedule(
                workload.conflicts.conflict
            )
            forward_ok = all(
                result.records[pid].committed_at is not None
                for pid in completing
            )
            rows.append(
                {
                    "seed": seed,
                    "crash after": point,
                    "live at crash": len(image.snapshots),
                    "completing at crash": len(completing),
                    "forward recovery": forward_ok,
                    "complete": schedule.is_complete,
                    "CT": has_correct_termination(schedule, stride=3),
                    "P-RC": is_process_recoverable(schedule),
                }
            )
    return rows


@pytest.mark.benchmark(group="experiments")
def test_e9_fault_tolerance(benchmark):
    rows = benchmark.pedantic(run_e9, rounds=1, iterations=1)
    print_experiment(
        "E9: crash-point sweep — recovery correctness and forward "
        "recovery of completing processes", rows,
    )
    assert any(row["completing at crash"] > 0 for row in rows), (
        "the sweep should hit at least one crash with a completing "
        "process to make forward recovery observable"
    )
    for row in rows:
        assert row["forward recovery"], row
        assert row["complete"], row
        assert row["CT"], row
        assert row["P-RC"], row
