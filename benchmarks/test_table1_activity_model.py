"""Exhibit T1 — Table 1: activity classes and their constraints.

Regenerates the table from the implementation and verifies that the
activity registry enforces every constraint row mechanically (invalid
definitions are rejected, valid ones admitted).
"""

import math

import pytest

from repro.activities.activity import INFINITE_COST
from repro.activities.registry import ActivityRegistry
from repro.analysis.exhibits import table1_text
from repro.errors import ActivityModelError


def exercise_table1() -> dict[str, int]:
    """Probe the registry with valid and invalid definitions per row."""
    accepted = 0
    rejected = 0

    def expect_ok(define):
        nonlocal accepted
        define()
        accepted += 1

    def expect_fail(define):
        nonlocal rejected
        try:
            define()
        except ActivityModelError:
            rejected += 1
        else:  # pragma: no cover - harness assertion
            raise AssertionError("expected rejection")

    reg = ActivityRegistry()
    # Row 1: compensatable — finite positive cost, p in [0,1), finite
    # compensation cost.
    expect_ok(lambda: reg.define_compensatable(
        "c_ok", "s", cost=1.0, compensation_cost=0.0,
        failure_probability=0.99,
    ))
    expect_fail(lambda: reg.define_compensatable(
        "c_p1", "s", cost=1.0, compensation_cost=1.0,
        failure_probability=1.0,
    ))
    expect_fail(lambda: reg.define_compensatable(
        "c_inf", "s", cost=1.0, compensation_cost=math.inf,
    ))
    # Row 2: pivot — compensation cost infinite by construction.
    expect_ok(lambda: reg.define_pivot("p_ok", "s", cost=1.0,
                                       failure_probability=0.5))
    assert reg.compensation_cost("p_ok") == INFINITE_COST
    expect_fail(lambda: reg.define_pivot("p_zero", "s", cost=0.0))
    # Row 3: retriable — failure probability pinned to zero.
    expect_ok(lambda: reg.define_retriable("r_ok", "s", cost=1.0))
    assert reg.get("r_ok").failure_probability == 0.0
    # Row 4: compensating — retriable, cost may be zero, never
    # compensatable itself.
    comp = reg.get("c_ok^-1")
    assert comp.retriable and comp.is_compensation
    assert comp.cost == 0.0
    assert comp.compensation_cost == INFINITE_COST
    return {"accepted": accepted, "rejected": rejected}


@pytest.mark.benchmark(group="exhibits")
def test_table1_activity_model(benchmark):
    counts = benchmark(exercise_table1)
    print()
    print(table1_text())
    print(
        f"\nconstraint probes: {counts['accepted']} valid definitions "
        f"accepted, {counts['rejected']} invalid rejected"
    )
    assert counts["accepted"] == 3
    assert counts["rejected"] == 3
