"""E6 — Cost-based scheduling protects expensive work (Section 4).

Bimodal-cost workload (30% of compensatable activities cost 50, the rest
1–5).  Once a process's worst-case cost crosses ``Wcc*`` its locks are
pivot-treated, so *cascading aborts* — the Comp-, Piv-, and C⁻¹-Rule
victim channel the paper discusses — can no longer reach it.

Measured shape: the number of expensive activities undone because of a
**cascade** is exactly zero under a finite threshold at the expensive
cost, and positive under pure process locking.  Deadlock-cycle
resolution (a channel the paper does not model; it only exists because
pseudo-pivot deferment can cycle) is reported separately.
"""

import math

import pytest

from harness import print_experiment
from repro.scheduler.manager import ManagerConfig
from repro.sim.runner import run_workload
from repro.sim.workload import WorkloadSpec, build_workload

SEEDS = [2, 3, 5, 8, 13, 21]

BASE = WorkloadSpec(
    n_processes=10,
    n_activity_types=12,
    conflict_density=0.5,
    failure_probability=0.04,
    expensive_fraction=0.3,
    expensive_cost=50.0,
    pivot_probability=0.7,
)


def measure(threshold: float) -> dict[str, float]:
    by_cause = {"cascade": 0, "deadlock": 0, "other": 0}
    committed = 0
    makespan = 0.0
    for seed in SEEDS:
        workload = build_workload(
            BASE.with_(wcc_threshold=threshold, seed=seed)
        )
        result = run_workload(
            workload, "process-locking", seed=seed,
            config=ManagerConfig(audit=True),
        )
        committed += result.stats.committed
        makespan += result.makespan
        for record in result.records.values():
            for name, cause in zip(
                record.compensated_names, record.compensated_causes
            ):
                if name not in workload.expensive_types:
                    continue
                if cause == "protocol-abort:cascade":
                    by_cause["cascade"] += 1
                elif cause == "protocol-abort:deadlock":
                    by_cause["deadlock"] += 1
                else:
                    by_cause["other"] += 1
    n = len(SEEDS)
    return {
        "expensive_undone_by_cascade": by_cause["cascade"] / n,
        "expensive_undone_by_deadlock": by_cause["deadlock"] / n,
        "expensive_undone_other": by_cause["other"] / n,
        "committed": committed / n,
        "makespan": makespan / n,
    }


def run_e6():
    return {
        "Wcc* = 50 (protected)": measure(50.0),
        "Wcc* = inf (pure PL)": measure(math.inf),
    }


@pytest.mark.benchmark(group="experiments")
def test_e6_expensive_protection(benchmark):
    table = benchmark.pedantic(run_e6, rounds=1, iterations=1)
    rows = [
        {
            "configuration": label,
            "exp. undone (cascade)": round(
                m["expensive_undone_by_cascade"], 2
            ),
            "exp. undone (deadlock)": round(
                m["expensive_undone_by_deadlock"], 2
            ),
            "exp. undone (own failure)": round(
                m["expensive_undone_other"], 2
            ),
            "committed": round(m["committed"], 1),
            "makespan": round(m["makespan"], 1),
        }
        for label, m in table.items()
    ]
    print_experiment(
        "E6: protecting expensive activities from cascading aborts "
        f"(mean of {len(SEEDS)} seeds)", rows,
    )
    protected = table["Wcc* = 50 (protected)"]
    pure = table["Wcc* = inf (pure PL)"]
    # The paper's guarantee, verbatim: once pivot-treated, a process can
    # no longer be aborted "due to the failure of some other process".
    assert protected["expensive_undone_by_cascade"] == 0.0
    assert pure["expensive_undone_by_cascade"] > 0.0
    # Pure process locking never needs deadlock resolution.
    assert pure["expensive_undone_by_deadlock"] == 0.0
