"""E2 — Early timestamp verification vs pure OSL's late validation.

Sweeps the conflict density and compares pure ordered shared locking
against process locking.  Expected shape: OSL's unresolvable violations
(completing processes that a cascading abort could not reach) appear and
grow with density, while process locking stays at zero by construction;
process locking converts those situations into early aborts of *running*
processes instead.
"""

import pytest

from harness import SEEDS, averaged_metrics, print_experiment
from repro.sim.workload import WorkloadSpec

DENSITIES = [0.2, 0.4, 0.6, 0.8]

BASE = WorkloadSpec(
    n_processes=10,
    n_activity_types=12,
    failure_probability=0.12,
    pivot_probability=0.8,
)


def run_e2():
    table = {}
    for density in DENSITIES:
        spec = BASE.with_(conflict_density=density)
        table[density] = {
            "osl-pure": averaged_metrics(spec, "osl-pure"),
            "process-locking": averaged_metrics(
                spec, "process-locking"
            ),
        }
    return table


@pytest.mark.benchmark(group="experiments")
def test_e2_early_verification(benchmark):
    table = benchmark.pedantic(run_e2, rounds=1, iterations=1)
    rows = []
    for density, by_protocol in table.items():
        for protocol, metrics in by_protocol.items():
            rows.append(
                {
                    "density": density,
                    "protocol": protocol,
                    "unresolvable": round(metrics["unresolvable"], 2),
                    "cascades": round(metrics["cascades"], 1),
                    "comp_cost": round(metrics["comp_cost"], 1),
                    "makespan": round(metrics["makespan"], 1),
                }
            )
    print_experiment(
        "E2: late validation (osl-pure) vs early verification "
        f"(process locking), mean of {len(SEEDS)} seeds", rows,
    )

    # Process locking never violates correctness.
    for density in DENSITIES:
        assert table[density]["process-locking"]["unresolvable"] == 0
    # Pure OSL does, and increasingly so at higher contention.
    osl_series = [
        table[density]["osl-pure"]["unresolvable"]
        for density in DENSITIES
    ]
    assert sum(osl_series) > 0
    assert osl_series[-1] >= osl_series[0]
