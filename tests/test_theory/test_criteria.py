"""Tests for P-RED, CT, and P-RC (Definitions 5–7)."""

import itertools

import pytest

from repro.errors import ScheduleError
from repro.theory.criteria import (
    check_all_prefixes_recoverable,
    check_process_recoverability,
    has_correct_termination,
    is_prefix_reducible,
    is_process_recoverable,
    is_reducible,
)
from repro.theory.schedule import (
    EventKind,
    ProcessSchedule,
    ScheduleEvent,
)

_uids = itertools.count(5000)


def act(pos, proc, name, compensatable=True, pnr=False, compensates=None):
    return ScheduleEvent(
        position=pos,
        process=(proc, 0),
        kind=EventKind.ACTIVITY,
        name=name,
        uid=next(_uids),
        compensates=compensates,
        compensatable=compensatable,
        point_of_no_return=pnr,
    )


def term(pos, proc, kind=EventKind.COMMIT):
    return ScheduleEvent(position=pos, process=(proc, 0), kind=kind)


def conflict_all(a, b):
    return True


class TestPrefixReducibility:
    def test_every_prefix_checked(self):
        # Full schedule reduces (pair cancels) but the 3-event prefix
        # a1 a2 a1^-1 is irreducible — P-RED must fail.
        first = act(0, 1, "a")
        events = [
            first,
            act(1, 2, "a"),
            act(2, 2, "a", compensates=None),
        ]
        # build: a(P1) a(P2) a^-1(P2) a^-1(P1)
        second = events[1]
        events[2] = act(2, 2, "a", compensates=second.uid)
        events.append(act(3, 1, "a", compensates=first.uid))
        schedule = ProcessSchedule(events, conflict_all)
        assert is_reducible(schedule)
        assert is_prefix_reducible(schedule)  # nested pairs: all good

    def test_irreducible_prefix_detected(self):
        first = act(0, 1, "a")
        second = act(1, 2, "a")
        comp_first = act(2, 1, "a", compensates=first.uid)
        comp_second = act(3, 2, "a", compensates=second.uid)
        # a(P1) a(P2) a^-1(P1) a^-1(P2): P1's pair has P2's conflicting
        # activity inside -> prefix of length 3 (and the whole) stuck.
        schedule = ProcessSchedule(
            [first, second, comp_first, comp_second], conflict_all
        )
        assert not is_prefix_reducible(schedule)

    def test_stride_still_checks_full_schedule(self):
        first = act(0, 1, "a")
        second = act(1, 2, "a")
        comp_first = act(2, 1, "a", compensates=first.uid)
        schedule = ProcessSchedule(
            [first, second, comp_first], conflict_all
        )
        assert not is_prefix_reducible(schedule, stride=10)


class TestCorrectTermination:
    def test_requires_complete_schedule(self):
        schedule = ProcessSchedule([act(0, 1, "a")], conflict_all)
        with pytest.raises(ScheduleError):
            has_correct_termination(schedule)

    def test_committed_serial_history(self):
        events = [
            act(0, 1, "a"),
            term(1, 1),
            act(2, 2, "a"),
            term(3, 2),
        ]
        schedule = ProcessSchedule(events, conflict_all)
        assert has_correct_termination(schedule)

    def test_aborted_process_with_clean_undo(self):
        first = act(0, 1, "a")
        events = [
            first,
            act(1, 1, "a", compensates=first.uid),
            term(2, 1, EventKind.ABORT),
            act(3, 2, "a"),
            term(4, 2),
        ]
        schedule = ProcessSchedule(events, conflict_all)
        assert has_correct_termination(schedule)

    def test_dirty_read_of_aborted_work_fails(self):
        first = act(0, 1, "a")
        events = [
            first,
            act(1, 2, "a"),             # P2 reads past P1's update
            act(2, 1, "a", compensates=first.uid),
            term(3, 1, EventKind.ABORT),
            term(4, 2),                  # P2 commits anyway
        ]
        schedule = ProcessSchedule(events, conflict_all)
        assert not has_correct_termination(schedule)


class TestProcessRecoverability:
    def test_clean_commit_order_is_recoverable(self):
        events = [
            act(0, 1, "a"),
            act(1, 2, "a"),
            term(2, 1),
            term(3, 2),
        ]
        schedule = ProcessSchedule(events, conflict_all)
        assert is_process_recoverable(schedule)

    def test_reversed_commit_order_violates(self):
        """Definition 7.1: C_j before C_i while sharing a_ik^c < a_jm."""
        events = [
            act(0, 1, "a"),
            act(1, 2, "a"),
            term(2, 2),  # the dependent process commits first
            term(3, 1),
        ]
        schedule = ProcessSchedule(events, conflict_all)
        report = check_process_recoverability(schedule)
        assert not report.ok
        assert len(report.violations) == 1

    def test_pivot_counts_as_point_of_no_return(self):
        """Definition 7.2: a pivot behind an uncommitted writer."""
        events = [
            act(0, 1, "a"),
            act(1, 2, "piv", compensatable=False, pnr=True),
        ]
        schedule = ProcessSchedule(events, conflict_all)
        assert not is_process_recoverable(schedule)

    def test_pivot_after_writer_commit_is_fine(self):
        events = [
            act(0, 1, "a"),
            term(1, 1),
            act(2, 2, "piv", compensatable=False, pnr=True),
            term(3, 2),
        ]
        schedule = ProcessSchedule(events, conflict_all)
        assert is_process_recoverable(schedule)

    def test_compensated_dependency_is_discharged(self):
        """If a_ik^-1 precedes a_jm the pair imposes no constraint."""
        first = act(0, 1, "a")
        events = [
            first,
            act(1, 1, "a", compensates=first.uid),
            term(2, 1, EventKind.ABORT),
            act(3, 2, "piv", compensatable=False, pnr=True),
            term(4, 2),
        ]
        schedule = ProcessSchedule(events, conflict_all)
        assert is_process_recoverable(schedule)

    def test_writer_pivot_before_reader_discharges(self):
        """a_i* < a_jm: P_i passed its point of no return first."""
        events = [
            act(0, 1, "a"),
            act(1, 1, "p1", compensatable=False, pnr=True),
            act(2, 2, "piv", compensatable=False, pnr=True),
            term(3, 1),
            term(4, 2),
        ]
        schedule = ProcessSchedule(events, conflict_all)
        assert is_process_recoverable(schedule)

    def test_running_reader_imposes_no_constraint_yet(self):
        """Rule 1 guard: no constraint while a_j* is not in S."""
        events = [
            act(0, 1, "a"),
            act(1, 2, "a"),
        ]
        schedule = ProcessSchedule(events, conflict_all)
        assert is_process_recoverable(schedule)

    def test_prefix_check_is_stronger(self):
        # Final schedule fine, but a prefix had the reader's pivot before
        # the writer's -> never produced by the protocol, and the prefix
        # checker must flag it.
        events = [
            act(0, 1, "a"),
            act(1, 2, "a"),
            act(2, 2, "piv", compensatable=False, pnr=True),
            term(3, 2),
            term(4, 1),
        ]
        schedule = ProcessSchedule(events, conflict_all)
        assert not check_all_prefixes_recoverable(schedule)

    def test_non_conflicting_activities_ignored(self):
        events = [
            act(0, 1, "a"),
            act(1, 2, "b"),
            term(2, 2),
            term(3, 1),
        ]
        schedule = ProcessSchedule(events, lambda a, b: a == b)
        assert is_process_recoverable(schedule)
