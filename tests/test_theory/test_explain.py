"""Tests for irreducibility witnesses."""

import itertools

from repro.theory.explain import (
    explain_irreducibility,
    first_bad_prefix,
)
from repro.theory.schedule import (
    EventKind,
    ProcessSchedule,
    ScheduleEvent,
)

_uids = itertools.count(9000)


def act(pos, proc, name, compensates=None):
    return ScheduleEvent(
        position=pos,
        process=(proc, 0),
        kind=EventKind.ACTIVITY,
        name=name,
        uid=next(_uids),
        compensates=compensates,
        compensatable=True,
    )


def conflict_same_name(a, b):
    return a.rstrip("^-1") == b.rstrip("^-1") if False else a == b


def always(a, b):
    return True


class TestWitnesses:
    def test_reducible_schedule_has_no_witness(self):
        schedule = ProcessSchedule(
            [act(0, 1, "a"), act(1, 2, "a")], always
        )
        assert explain_irreducibility(schedule) is None

    def test_cycle_witness(self):
        events = [
            act(0, 1, "a"),
            act(1, 2, "a"),
            act(2, 2, "b"),
            act(3, 1, "b"),
        ]
        schedule = ProcessSchedule(events, lambda x, y: x == y)
        witness = explain_irreducibility(schedule)
        assert witness is not None
        assert set(witness.cycle) == {(1, 0), (2, 0)}
        assert witness.cycle_edges
        text = witness.describe()
        assert "serialization cycle" in text
        assert "P1" in text and "P2" in text

    def test_stuck_pair_witness(self):
        first = act(0, 1, "a")
        events = [
            first,
            act(1, 2, "a"),
            act(2, 1, "a", compensates=first.uid),
        ]
        schedule = ProcessSchedule(events, always)
        witness = explain_irreducibility(schedule)
        assert witness is not None
        assert len(witness.stuck_pairs) == 1
        pair = witness.stuck_pairs[0]
        assert pair.regular.uid == first.uid
        assert len(pair.blockers) == 1
        assert "blocked by" in pair.describe()


class TestFirstBadPrefix:
    def test_none_for_clean_schedule(self):
        schedule = ProcessSchedule(
            [act(0, 1, "a"), act(1, 2, "b")], lambda x, y: x == y
        )
        assert first_bad_prefix(schedule) is None

    def test_finds_shortest_violation(self):
        first = act(0, 1, "a")
        events = [
            first,
            act(1, 2, "a"),
            act(2, 1, "a", compensates=first.uid),
            act(3, 2, "b"),
        ]
        schedule = ProcessSchedule(events, always)
        assert first_bad_prefix(schedule) == 3
