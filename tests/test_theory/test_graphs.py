"""Unit tests for serialization-graph utilities."""

import itertools

from repro.theory.graphs import (
    is_conflict_serializable,
    serialization_graph,
    serialization_order,
)
from repro.theory.schedule import EventKind, ScheduleEvent

_uids = itertools.count(12000)


def act(pos, proc, name):
    return ScheduleEvent(
        position=pos,
        process=(proc, 0),
        kind=EventKind.ACTIVITY,
        name=name,
        uid=next(_uids),
        compensatable=True,
    )


def same_name(a, b):
    return a == b


class TestSerializationGraph:
    def test_edge_orientation_follows_observed_order(self):
        events = [act(0, 1, "x"), act(1, 2, "x")]
        graph = serialization_graph(events, same_name)
        assert list(graph.edges) == [((1, 0), (2, 0))]

    def test_commuting_events_add_no_edge(self):
        events = [act(0, 1, "x"), act(1, 2, "y")]
        graph = serialization_graph(events, same_name)
        assert list(graph.edges) == []
        assert set(graph.nodes) == {(1, 0), (2, 0)}

    def test_same_process_never_edges(self):
        events = [act(0, 1, "x"), act(1, 1, "x")]
        graph = serialization_graph(events, same_name)
        assert list(graph.edges) == []

    def test_cycle_detection(self):
        events = [
            act(0, 1, "x"), act(1, 2, "x"),
            act(2, 2, "y"), act(3, 1, "y"),
        ]
        assert not is_conflict_serializable(events, same_name)

    def test_serialization_order_witness(self):
        events = [act(0, 2, "x"), act(1, 1, "x")]
        order = serialization_order(events, same_name)
        assert order == [(2, 0), (1, 0)]

    def test_no_order_for_cycles(self):
        events = [
            act(0, 1, "x"), act(1, 2, "x"),
            act(2, 2, "y"), act(3, 1, "y"),
        ]
        assert serialization_order(events, same_name) is None

    def test_unsorted_input_is_sorted_by_position(self):
        events = [act(1, 2, "x"), act(0, 1, "x")]
        graph = serialization_graph(events, same_name)
        assert list(graph.edges) == [((1, 0), (2, 0))]
