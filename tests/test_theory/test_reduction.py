"""Tests for the reduction rules (RED) — exact and polynomial deciders.

The hypothesis property at the bottom is the suite's centrepiece: both
deciders must agree on random small schedules, which cross-validates the
polynomial algorithm against a literal implementation of Definition 4.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory.reduction import (
    exact_is_reducible,
    poly_is_reducible,
    reduce_schedule,
)
from repro.theory.schedule import (
    EventKind,
    ProcessSchedule,
    ScheduleEvent,
)

_uids = itertools.count(1000)


def act(pos, proc, name, compensates=None):
    return ScheduleEvent(
        position=pos,
        process=(proc, 0),
        kind=EventKind.ACTIVITY,
        name=name,
        uid=next(_uids),
        compensates=compensates,
        compensatable=True,
    )


def build(schedule_spec, conflict_pairs):
    """``schedule_spec``: list of (proc, name) or (proc, name, comp_idx)."""
    events = []
    for pos, spec in enumerate(schedule_spec):
        if len(spec) == 2:
            proc, name = spec
            events.append(act(pos, proc, name))
        else:
            proc, name, comp_idx = spec
            events.append(
                act(pos, proc, name, compensates=events[comp_idx].uid)
            )
    pairs = {frozenset(p) for p in conflict_pairs}

    def conflict(a, b):
        return frozenset((a, b)) in pairs

    return ProcessSchedule(events, conflict)


class TestSerialAndCommuting:
    def test_serial_schedule_is_reducible(self):
        schedule = build(
            [(1, "a"), (1, "b"), (2, "a"), (2, "b")],
            [("a", "a"), ("b", "b"), ("a", "b")],
        )
        assert exact_is_reducible(schedule)
        assert poly_is_reducible(schedule)

    def test_commuting_interleaving_is_reducible(self):
        schedule = build(
            [(1, "a"), (2, "b"), (1, "a"), (2, "b")],
            [("a", "a"), ("b", "b")],  # a and b commute
        )
        assert exact_is_reducible(schedule)
        assert poly_is_reducible(schedule)

    def test_conflicting_cycle_is_irreducible(self):
        # P1: a ... P2: a — two conflicting pairs in opposite orders.
        schedule = build(
            [(1, "a"), (2, "a"), (2, "b"), (1, "b")],
            [("a", "a"), ("b", "b")],
        )
        assert not exact_is_reducible(schedule)
        assert not poly_is_reducible(schedule)

    def test_empty_schedule_is_reducible(self):
        schedule = build([], [])
        assert exact_is_reducible(schedule)
        assert poly_is_reducible(schedule)


class TestCompensationRule:
    def test_adjacent_pair_cancels(self):
        schedule = build(
            [(1, "a"), (1, "a", 0), (2, "a")],
            [("a", "a")],
        )
        # P1's (a, a^-1) cancels; P2's lone a survives — serial.
        assert exact_is_reducible(schedule)
        assert poly_is_reducible(schedule)

    def test_pair_with_commuting_event_between(self):
        schedule = build(
            [(1, "a"), (2, "b"), (1, "a", 0)],
            [("a", "a"), ("b", "b")],
        )
        assert exact_is_reducible(schedule)
        assert poly_is_reducible(schedule)

    def test_pair_with_conflicting_event_between_is_stuck(self):
        # b conflicts a and sits inside the (a, a^-1) interval; the pair
        # cannot cancel and the surviving conflicts form a cycle.
        schedule = build(
            [(1, "a"), (2, "a"), (1, "a", 0)],
            [("a", "a")],
        )
        assert not exact_is_reducible(schedule)
        assert not poly_is_reducible(schedule)

    def test_nested_pairs_cancel_inside_out(self):
        schedule = build(
            [(1, "a"), (2, "a"), (2, "a", 1), (1, "a", 0)],
            [("a", "a")],
        )
        assert exact_is_reducible(schedule)
        assert poly_is_reducible(schedule)

    def test_reduce_schedule_reports_survivors(self):
        schedule = build(
            [(1, "a"), (1, "a", 0), (2, "b")],
            [("a", "a")],
        )
        survivors = reduce_schedule(schedule)
        assert [e.name for e in survivors] == ["b"]

    def test_same_process_event_blocks_cancellation(self):
        # P1 executes b between a and a^-1; b cannot swap within its own
        # process, so the pair stays until b is itself compensated.
        schedule = build(
            [(1, "a"), (1, "b"), (1, "a", 0)],
            [("a", "a")],
        )
        survivors = reduce_schedule(schedule)
        assert len(survivors) == 3  # nothing cancelled
        # Single process, so still serial/reducible:
        assert poly_is_reducible(schedule)
        assert exact_is_reducible(schedule)


class TestCrossValidationHandPicked:
    def test_interleaved_aborted_processes(self):
        # P1 aborts after P2 read past it — P2 must have been undone too
        # for reducibility; here P2 commits, so irreducible.
        schedule = build(
            [(1, "a"), (2, "a"), (1, "a", 0)],
            [("a", "a")],
        )
        assert exact_is_reducible(schedule) == poly_is_reducible(schedule)

    def test_cascading_compensations(self):
        schedule = build(
            [
                (1, "a"),
                (2, "a"),
                (2, "b"),
                (2, "b", 2),
                (2, "a", 1),
                (1, "a", 0),
            ],
            [("a", "a"), ("b", "b")],
        )
        assert exact_is_reducible(schedule)
        assert poly_is_reducible(schedule)


@settings(max_examples=120, deadline=None)
@given(data=st.data())
def test_property_deciders_agree(data):
    """exact (Definition 4 search) == polynomial decider, always."""
    n = data.draw(st.integers(min_value=1, max_value=7), label="length")
    names = ["a", "b", "c"]
    pair_pool = [
        ("a", "a"), ("b", "b"), ("c", "c"),
        ("a", "b"), ("a", "c"), ("b", "c"),
    ]
    conflict_pairs = data.draw(
        st.sets(st.sampled_from(pair_pool), max_size=6), label="conflicts"
    )
    spec = []
    open_regulars: list[tuple[int, int, str]] = []  # (index, proc, name)
    for pos in range(n):
        proc = data.draw(st.integers(min_value=1, max_value=3))
        mine = [r for r in open_regulars if r[1] == proc]
        compensate = mine and data.draw(st.booleans())
        if compensate:
            # Compensate the most recent uncompensated own activity
            # (reverse order, as the execution model guarantees).
            index, __, name = mine[-1]
            spec.append((proc, name, index))
            open_regulars.remove(mine[-1])
        else:
            name = data.draw(st.sampled_from(names))
            spec.append((proc, name))
            open_regulars.append((pos, proc, name))
    schedule = build(spec, conflict_pairs)
    assert exact_is_reducible(schedule) == poly_is_reducible(schedule)
