"""Unit tests for process schedule objects."""

import pytest

from repro.errors import ScheduleError
from repro.theory.schedule import (
    EventKind,
    ProcessSchedule,
    ScheduleEvent,
)


def ev(pos, proc, kind=EventKind.ACTIVITY, name="a", uid=None,
       compensates=None, compensatable=True, pnr=False):
    return ScheduleEvent(
        position=pos,
        process=(proc, 0),
        kind=kind,
        name=name if kind is EventKind.ACTIVITY else "",
        uid=uid if uid is not None else pos + 1,
        compensates=compensates,
        compensatable=compensatable,
        point_of_no_return=pnr,
    )


def always_conflict(a, b):
    return True


class TestConstruction:
    def test_positions_must_match_indices(self):
        with pytest.raises(ScheduleError):
            ProcessSchedule([ev(1, 1)], always_conflict)

    def test_double_termination_rejected(self):
        events = [
            ev(0, 1, kind=EventKind.COMMIT),
            ev(1, 1, kind=EventKind.ABORT),
        ]
        with pytest.raises(ScheduleError):
            ProcessSchedule(events, always_conflict)

    def test_processes_in_first_appearance_order(self):
        events = [ev(0, 2), ev(1, 1), ev(2, 2)]
        schedule = ProcessSchedule(events, always_conflict)
        assert schedule.processes == [(2, 0), (1, 0)]

    def test_completeness(self):
        partial = ProcessSchedule([ev(0, 1)], always_conflict)
        assert not partial.is_complete
        complete = ProcessSchedule(
            [ev(0, 1), ev(1, 1, kind=EventKind.COMMIT)], always_conflict
        )
        assert complete.is_complete

    def test_prefix(self):
        events = [ev(0, 1), ev(1, 2), ev(2, 1, kind=EventKind.COMMIT)]
        schedule = ProcessSchedule(events, always_conflict)
        prefix = schedule.prefix(2)
        assert len(prefix) == 2
        assert not prefix.is_complete


class TestQueries:
    def test_conflicting_pairs_are_cross_process_only(self):
        events = [ev(0, 1), ev(1, 1), ev(2, 2)]
        schedule = ProcessSchedule(events, always_conflict)
        pairs = schedule.conflicting_activity_pairs()
        assert len(pairs) == 2  # (e0,e2) and (e1,e2)
        assert all(a.process != b.process for a, b in pairs)

    def test_conflict_respects_matrix(self):
        events = [ev(0, 1, name="x"), ev(1, 2, name="y")]
        schedule = ProcessSchedule(
            events, lambda a, b: {a, b} == {"x", "x"}
        )
        assert schedule.conflicting_activity_pairs() == []

    def test_next_point_of_no_return_finds_pivot(self):
        events = [
            ev(0, 1),
            ev(1, 2),
            ev(2, 1, name="piv", pnr=True, compensatable=False),
            ev(3, 1, kind=EventKind.COMMIT),
        ]
        schedule = ProcessSchedule(events, always_conflict)
        star = schedule.next_point_of_no_return((1, 0), 0)
        assert star is not None and star.position == 2

    def test_next_point_of_no_return_falls_back_to_commit(self):
        events = [ev(0, 1), ev(1, 1, kind=EventKind.COMMIT)]
        schedule = ProcessSchedule(events, always_conflict)
        star = schedule.next_point_of_no_return((1, 0), 0)
        assert star.kind is EventKind.COMMIT

    def test_next_point_of_no_return_absent_in_partial(self):
        events = [ev(0, 1), ev(1, 2)]
        schedule = ProcessSchedule(events, always_conflict)
        assert schedule.next_point_of_no_return((1, 0), 0) is None

    def test_activities_excludes_terminal_events(self):
        events = [ev(0, 1), ev(1, 1, kind=EventKind.COMMIT)]
        schedule = ProcessSchedule(events, always_conflict)
        assert len(schedule.activities) == 1

    def test_events_of(self):
        events = [ev(0, 1), ev(1, 2), ev(2, 1, kind=EventKind.COMMIT)]
        schedule = ProcessSchedule(events, always_conflict)
        assert len(schedule.events_of((1, 0))) == 2
        assert schedule.terminal_event((2, 0)) is None
