"""Tests for wait-for graph bookkeeping and cycle-victim choice."""

import pytest

from repro.core.deadlock import WaitForGraph, choose_cycle_victim
from repro.errors import ProtocolError


class TestWaitForGraph:
    def test_no_cycle_initially(self):
        graph = WaitForGraph()
        assert graph.find_cycle() is None
        graph.assert_acyclic()

    def test_simple_cycle_detected(self):
        graph = WaitForGraph()
        graph.set_waits(1, frozenset({2}))
        graph.set_waits(2, frozenset({1}))
        cycle = graph.find_cycle()
        assert cycle is not None
        assert set(cycle) == {1, 2}
        with pytest.raises(ProtocolError):
            graph.assert_acyclic()

    def test_chain_is_acyclic(self):
        graph = WaitForGraph()
        graph.set_waits(3, frozenset({2}))
        graph.set_waits(2, frozenset({1}))
        assert graph.find_cycle() is None
        assert graph.waiters() == {2, 3}

    def test_set_waits_replaces(self):
        graph = WaitForGraph()
        graph.set_waits(1, frozenset({2}))
        graph.set_waits(1, frozenset({3}))
        assert graph.edges() == [(1, 3)]

    def test_self_edges_ignored(self):
        graph = WaitForGraph()
        graph.set_waits(1, frozenset({1, 2}))
        assert graph.edges() == [(1, 2)]

    def test_clear_waits(self):
        graph = WaitForGraph()
        graph.set_waits(1, frozenset({2}))
        graph.clear_waits(1)
        assert graph.edges() == []

    def test_remove_process_drops_incoming_edges(self):
        graph = WaitForGraph()
        graph.set_waits(1, frozenset({2}))
        graph.set_waits(3, frozenset({2}))
        graph.remove_process(2)
        assert graph.edges() == []

    def test_three_cycle(self):
        graph = WaitForGraph()
        graph.set_waits(1, frozenset({2}))
        graph.set_waits(2, frozenset({3}))
        graph.set_waits(3, frozenset({1}))
        assert set(graph.find_cycle()) == {1, 2, 3}


class TestVictimChoice:
    def test_youngest_running_chosen(self):
        victim = choose_cycle_victim(
            [1, 2, 3],
            timestamps={1: 10, 2: 30, 3: 20},
            running={1, 2, 3},
        )
        assert victim == 2

    def test_non_running_excluded(self):
        victim = choose_cycle_victim(
            [1, 2, 3],
            timestamps={1: 10, 2: 30, 3: 20},
            running={1, 3},
        )
        assert victim == 3

    def test_no_running_member_raises(self):
        with pytest.raises(ProtocolError):
            choose_cycle_victim(
                [1, 2], timestamps={1: 1, 2: 2}, running=set()
            )
