"""Tests for cost-based scheduling (Section 4, Figure 1, Lemma 1)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.activities.registry import ActivityRegistry
from repro.core.cost_based import (
    figure1_trace,
    is_pseudo_pivot,
    lemma1_holds,
    wcc_after,
    worst_case_cost,
)
from repro.core.locks import LockMode
from repro.core.protocol import ProcessLockManager
from repro.process.builder import ProgramBuilder
from repro.process.instance import Process


@pytest.fixture
def cost_registry() -> ActivityRegistry:
    registry = ActivityRegistry()
    registry.define_compensatable("cheap", "s", cost=2.0,
                                  compensation_cost=1.0)
    registry.define_compensatable("pricey", "s", cost=30.0,
                                  compensation_cost=10.0)
    registry.define_pivot("pivot", "s", cost=1.0)
    return registry


class TestWccAccounting:
    def test_equation_1(self, cost_registry):
        total = worst_case_cost(cost_registry, ["cheap", "pricey"])
        assert total == pytest.approx(2 + 1 + 30 + 10)

    def test_equation_2(self, cost_registry):
        after = wcc_after(cost_registry, 5.0, "cheap")
        assert after == pytest.approx(8.0)

    def test_pivot_contributes_infinity(self, cost_registry):
        assert math.isinf(
            worst_case_cost(cost_registry, ["cheap", "pivot"])
        )

    def test_equation_3_pseudo_pivot(self, cost_registry):
        # threshold crossed exactly by 'pricey' (3 -> 43 over 40).
        assert is_pseudo_pivot(cost_registry, 3.0, "pricey", 40.0)
        assert not is_pseudo_pivot(cost_registry, 3.0, "cheap", 40.0)
        assert not is_pseudo_pivot(cost_registry, 50.0, "pricey", 40.0)

    def test_real_pivot_is_not_pseudo(self, cost_registry):
        assert not is_pseudo_pivot(cost_registry, 3.0, "pivot", 40.0)


class TestLemma1:
    def test_pivot_always_crosses_any_finite_threshold(
        self, cost_registry
    ):
        for threshold in (0.0, 1.0, 1e6, 1e12):
            assert lemma1_holds(cost_registry, "pivot", threshold)

    def test_even_infinite_threshold(self, cost_registry):
        assert lemma1_holds(cost_registry, "pivot", math.inf)

    def test_non_pivot_rejected(self, cost_registry):
        with pytest.raises(ValueError):
            lemma1_holds(cost_registry, "cheap", 10.0)


class TestFigure1Trace:
    def test_treatments_in_demo(self):
        from repro.analysis.exhibits import build_figure1_demo

        registry, names, threshold = build_figure1_demo()
        steps = figure1_trace(registry, names, threshold)
        treatments = [step.treatment for step in steps]
        assert treatments == [
            LockMode.C, LockMode.C, LockMode.P, LockMode.P, LockMode.P,
        ]
        assert [s.pseudo_pivot for s in steps] == [
            False, False, True, True, False,
        ]
        assert steps[-1].real_pivot

    def test_wcc_is_cumulative(self, cost_registry):
        steps = figure1_trace(
            cost_registry, ["cheap", "cheap", "pricey"], 100.0
        )
        assert steps[0].wcc_after == pytest.approx(3.0)
        assert steps[1].wcc_before == pytest.approx(3.0)
        assert steps[2].wcc_after == pytest.approx(46.0)

    def test_zero_threshold_makes_everything_pivot_like(
        self, cost_registry
    ):
        steps = figure1_trace(cost_registry, ["cheap", "cheap"], 0.0)
        assert all(s.treatment is LockMode.P for s in steps)

    def test_describe_renders(self, cost_registry):
        steps = figure1_trace(cost_registry, ["cheap"], 10.0)
        assert "cheap" in steps[0].describe()


class TestProtocolIntegration:
    """The live protocol's classify_regular matches the symbolic trace."""

    def _process(self, registry, threshold) -> Process:
        program = (
            ProgramBuilder("p", registry, wcc_threshold=threshold)
            .sequence("cheap", "pricey", "cheap")
            .build()
        )
        return Process(pid=1, program=program, timestamp=1)

    def test_matches_symbolic_trace(self, cost_registry):
        from repro.activities.commutativity import ConflictMatrix

        conflicts = ConflictMatrix(cost_registry)
        protocol = ProcessLockManager(cost_registry, conflicts)
        threshold = 40.0
        process = self._process(cost_registry, threshold)
        protocol.attach(process)
        names = ["cheap", "pricey", "cheap"]
        symbolic = figure1_trace(cost_registry, names, threshold)
        for step in symbolic:
            activity = process.launch(step.activity)
            mode = protocol.classify_regular(process, activity)
            assert mode is step.treatment
            process.on_committed(activity)

    def test_cost_based_off_ignores_threshold(self, cost_registry):
        from repro.activities.commutativity import ConflictMatrix

        conflicts = ConflictMatrix(cost_registry)
        protocol = ProcessLockManager(
            cost_registry, conflicts, cost_based=False
        )
        process = self._process(cost_registry, threshold=0.0)
        protocol.attach(process)
        activity = process.launch("cheap")
        assert protocol.classify_regular(
            process, activity
        ) is LockMode.C


@settings(max_examples=50, deadline=None)
@given(
    costs=st.lists(
        st.floats(min_value=0.1, max_value=100.0),
        min_size=1,
        max_size=8,
    ),
    threshold=st.floats(min_value=0.0, max_value=500.0),
)
def test_property_pseudo_pivots_are_sticky(costs, threshold):
    """Once Wcc crosses the threshold, treatment stays P forever.

    Wcc only grows, so Figure 1 can never fall back to C treatment.
    """
    registry = ActivityRegistry()
    names = []
    for index, cost in enumerate(costs):
        name = f"t{index}"
        registry.define_compensatable(
            name, "s", cost=cost, compensation_cost=cost / 2
        )
        names.append(name)
    steps = figure1_trace(registry, names, threshold)
    seen_p = False
    for step in steps:
        if seen_p:
            assert step.treatment is LockMode.P
        if step.treatment is LockMode.P:
            seen_p = True
