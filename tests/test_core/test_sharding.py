"""Tests for the sharded lock table and the sampled per-shard auditor.

The shard layer must be *observationally inert*: partitioning by
subsystem changes how the table is audited and gauged, never how a lock
request is ordered or granted.  These tests pin the partition itself,
the per-shard counters and audits (including corruption detection), the
``REPRO_AUDIT_EVERY`` sampling knob with its round-robin shard cursor,
and the schedule byte-identity of sampled-audit runs.
"""

from __future__ import annotations

import pytest

from repro.core.lock_table import LockTable
from repro.core.locks import LockMode
from repro.core.sharding import ShardedLockTable
from repro.errors import ProtocolError
from repro.faults.harness import canonical_trace
from repro.obs import Tracer
from repro.scheduler.manager import ManagerConfig
from repro.sim.runner import run_workload
from repro.sim.workload import WorkloadSpec, build_workload


class FakeProcess:
    """The table only ever reads ``pid`` from a process."""

    def __init__(self, pid: int) -> None:
        self.pid = pid


@pytest.fixture
def table(conflicts):
    return ShardedLockTable(conflicts)


class TestShardPartition:
    def test_every_type_owned_by_its_subsystem_shard(
        self, registry, table
    ):
        assert set(table.shard_names()) == {
            activity_type.subsystem for activity_type in registry
        }
        for activity_type in registry:
            shard = table.shard_of(activity_type.name)
            assert shard.name == activity_type.subsystem
            assert activity_type.name in shard.types

    def test_types_partition_exactly(self, registry, table):
        seen: set[str] = set()
        for shard in table.shards.values():
            assert not (shard.types & seen)  # disjoint
            seen |= shard.types
        assert seen == {
            activity_type.name for activity_type in registry
        }

    def test_late_registered_type_gets_a_shard(self, registry, table):
        registry.define_compensatable(
            "restock", "warehouse", cost=1.0, compensation_cost=0.5
        )
        shard = table.shard_of("restock")
        assert shard.name == "warehouse"
        assert "warehouse" in table.shard_names()

    def test_unknown_shard_audit_rejected(self, table):
        with pytest.raises(ProtocolError, match="unknown lock shard"):
            table.check_invariants([], shards=["nope"])


class TestShardCounters:
    def test_acquire_release_maintain_counters(self, table):
        p1, p2 = FakeProcess(1), FakeProcess(2)
        table.acquire(p1, "reserve", LockMode.C)
        table.acquire(p1, "charge", LockMode.P)
        table.acquire(p2, "reserve", LockMode.C)
        shop = table.shard_of("reserve")
        bank = table.shard_of("charge")
        assert (shop.lock_count, shop.acquires) == (2, 2)
        assert (bank.lock_count, bank.acquires) == (1, 1)
        assert sum(
            shard.lock_count for shard in table.shards.values()
        ) == table.lock_count
        table.check_invariants([1, 2])

        table.release_all(1)
        assert (shop.lock_count, shop.releases) == (1, 1)
        assert (bank.lock_count, bank.releases) == (0, 1)
        table.check_invariants([2])

    def test_per_shard_audit_checks_only_named_shard(self, table):
        p1 = FakeProcess(1)
        table.acquire(p1, "reserve", LockMode.C)
        table.acquire(p1, "charge", LockMode.C)
        # Corrupt the bank shard's counter: the shop-only audit stays
        # green, the bank audit and the full audit both trip.
        table.shard_of("charge").lock_count += 1
        shop = table.shard_of("reserve").name
        bank = table.shard_of("charge").name
        table.check_invariants([1], shards=[shop])
        with pytest.raises(ProtocolError, match="counter"):
            table.check_invariants([1], shards=[bank])
        with pytest.raises(ProtocolError):
            table.check_invariants([1])


class TestShardAuditDetection:
    def test_dead_holder_detected_shard_locally(self, table):
        table.acquire(FakeProcess(1), "reserve", LockMode.C)
        shard = table.shard_of("reserve").name
        table.check_invariants([1], shards=[shard])
        with pytest.raises(ProtocolError, match="terminated"):
            table.check_invariants([], shards=[shard])

    def test_missing_blocker_edge_detected(self, conflicts, table):
        # reserve-reserve conflicts: two holders on the same type give
        # one blocker edge; dropping it from the global index must be
        # caught by the shard-restricted recompute.
        table.acquire(FakeProcess(1), "reserve", LockMode.C)
        table.acquire(FakeProcess(2), "reserve", LockMode.C)
        shard = table.shard_of("reserve").name
        table.check_invariants([1, 2], shards=[shard])
        table._blocked_by[2].discard(1)
        with pytest.raises(ProtocolError, match="blocker edge"):
            table.check_invariants([1, 2], shards=[shard])

    def test_unsorted_positions_detected(self, table):
        table.acquire(FakeProcess(1), "reserve", LockMode.C)
        table.acquire(FakeProcess(2), "reserve", LockMode.C)
        table._by_type["reserve"].reverse()
        with pytest.raises(ProtocolError, match="position-sorted"):
            table.check_invariants(
                [1, 2], shards=[table.shard_of("reserve").name]
            )


class TestAuditSamplingKnob:
    def test_env_knob_sets_audit_every(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT_EVERY", "4")
        assert ManagerConfig().audit_every == 4
        monkeypatch.setenv("REPRO_AUDIT_EVERY", "0")
        assert ManagerConfig().audit_every == 1  # clamped
        monkeypatch.delenv("REPRO_AUDIT_EVERY")
        assert ManagerConfig().audit_every == 1

    def test_sampled_audit_preserves_schedule_bytes(self, uid_floor):
        spec = WorkloadSpec(
            n_processes=12,
            n_activity_types=18,
            n_subsystems=3,
            conflict_density=0.5,
            failure_probability=0.05,
            arrival_spacing=0.5,
            seed=11,
        )
        uid_floor.pin()
        dense = run_workload(
            build_workload(spec),
            seed=spec.seed,
            config=ManagerConfig(audit=True, audit_every=1),
        )
        uid_floor.repin()
        sampled = run_workload(
            build_workload(spec),
            seed=spec.seed,
            config=ManagerConfig(audit=True, audit_every=3),
        )
        assert canonical_trace(dense.trace.events) == canonical_trace(
            sampled.trace.events
        )

    def test_round_robin_covers_every_shard(self, uid_floor):
        spec = WorkloadSpec(
            n_processes=10,
            n_activity_types=18,
            n_subsystems=3,
            conflict_density=0.5,
            arrival_spacing=0.5,
            seed=5,
        )
        audited: list[str] = []

        uid_floor.pin()
        workload = build_workload(spec)
        from repro.scheduler.manager import ProcessManager
        from repro.sim.runner import make_protocol

        protocol = make_protocol("process-locking", workload)
        original_audit = protocol.audit

        def spying_audit(shards=None):
            if shards is not None:
                audited.extend(shards)
            return original_audit(shards=shards)

        protocol.audit = spying_audit
        manager = ProcessManager(
            protocol,
            subsystems=workload.make_subsystems(),
            config=ManagerConfig(audit=True, audit_every=2),
            seed=spec.seed,
        )
        for index, program in enumerate(workload.programs):
            manager.submit(program, at=workload.arrival_time(index))
        manager.run()
        assert set(audited) == set(protocol.table.shard_names())


class TestShardObservability:
    def test_per_shard_gauges_and_wait_edge_shards(self, uid_floor):
        spec = WorkloadSpec(
            n_processes=12,
            n_activity_types=18,
            n_subsystems=3,
            conflict_density=0.6,
            arrival_spacing=0.3,
            seed=3,
        )
        uid_floor.pin()
        tracer = Tracer()
        result = run_workload(
            build_workload(spec), seed=spec.seed, tracer=tracer
        )
        assert result.committed_pids  # the run did something
        shard_names = {
            name
            for name in tracer.series.gauges
            if name.startswith("locks.")
        }
        assert shard_names  # at least one shard held a lock
        subsystems = {
            name.removeprefix("locks.") for name in shard_names
        }
        wait_edges = [
            record
            for record in tracer.records()
            if record["kind"] == "wait.edge"
        ]
        assert wait_edges
        for record in wait_edges:
            if record["request"] == "commit":
                assert record["shard"] is None
            else:
                assert record["shard"] in subsystems


class TestDropInEquivalence:
    def test_sharded_table_is_schedule_inert(self, uid_floor):
        """Monolithic table + sharded table: byte-identical schedules."""
        spec = WorkloadSpec(
            n_processes=12,
            n_activity_types=18,
            n_subsystems=3,
            conflict_density=0.5,
            failure_probability=0.05,
            arrival_spacing=0.5,
            seed=13,
        )
        from repro.sim.runner import make_protocol
        from repro.scheduler.manager import ProcessManager

        def run(sharded: bool):
            workload = build_workload(spec)
            protocol = make_protocol("process-locking", workload)
            if not sharded:
                protocol.table = LockTable(workload.conflicts)
            manager = ProcessManager(
                protocol,
                subsystems=workload.make_subsystems(),
                seed=spec.seed,
            )
            for index, program in enumerate(workload.programs):
                manager.submit(
                    program, at=workload.arrival_time(index)
                )
            return manager.run()

        uid_floor.pin()
        monolithic = run(sharded=False)
        uid_floor.repin()
        sharded = run(sharded=True)
        assert canonical_trace(
            monolithic.trace.events
        ) == canonical_trace(sharded.trace.events)
