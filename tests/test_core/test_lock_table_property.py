"""Property tests: the incremental indexes agree with the naive oracles.

The lock table is churned through randomized acquire / upgrade /
release / conflict-declaration histories; after every step the
incremental structures (blocker index, mode indexes, conflict adjacency)
must agree with the recompute-from-scratch reference formulations in
:mod:`repro.core.reference`, and :meth:`LockTable.check_invariants`
must hold.
"""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.activities.commutativity import ConflictMatrix
from repro.activities.registry import ActivityRegistry
from repro.core.deadlock import has_cycle
from repro.core.lock_table import LockTable
from repro.core.locks import LockMode
from repro.core.reference import (
    naive_blocked_by,
    naive_commit_blockers,
    naive_conflicting_locks,
    naive_conflicting_types,
)

TYPE_NAMES = [f"t{i}" for i in range(6)]
PIDS = list(range(1, 6))


class FakeProcess:
    """The table only ever reads ``pid`` from a process."""

    def __init__(self, pid: int) -> None:
        self.pid = pid


def make_relation(
    pairs: list[tuple[str, str]]
) -> tuple[ActivityRegistry, ConflictMatrix]:
    registry = ActivityRegistry()
    for name in TYPE_NAMES:
        registry.define_compensatable(
            name, "shop", cost=1.0, compensation_cost=0.5
        )
    matrix = ConflictMatrix(registry)
    for left, right in pairs:
        matrix.declare_conflict(left, right)
    return registry, matrix


def assert_agrees_with_oracles(
    table: LockTable, processes: dict[int, FakeProcess]
) -> None:
    # check_invariants already audits the blocker index against
    # naive_blocked_by and the mode indexes against the entries.
    table.check_invariants(live_pids=table.holders())
    for process in processes.values():
        assert table.commit_blockers(process) == naive_commit_blockers(
            table, process
        )
        assert table.on_hold(process) == bool(
            naive_commit_blockers(table, process)
        )
    oracle = naive_blocked_by(table)
    for pid in PIDS:
        assert table.blockers_of(pid) == frozenset(oracle.get(pid, ()))
        assert table.waiters_on(pid) == frozenset(
            waiter
            for waiter, blockers in oracle.items()
            if pid in blockers
        )
    for name in TYPE_NAMES:
        assert table.conflicting_locks(name) == naive_conflicting_locks(
            table, name
        )
        assert table._conflicts.conflicting_types(name) == frozenset(
            naive_conflicting_types(table._conflicts, name)
        )


pair_strategy = st.tuples(
    st.sampled_from(TYPE_NAMES), st.sampled_from(TYPE_NAMES)
)

op_strategy = st.one_of(
    st.tuples(
        st.just("acquire"),
        st.sampled_from(PIDS),
        st.sampled_from(TYPE_NAMES),
        st.sampled_from([LockMode.C, LockMode.P]),
    ),
    st.tuples(st.just("upgrade"), st.integers(min_value=0)),
    st.tuples(st.just("release"), st.sampled_from(PIDS)),
    st.tuples(st.just("declare"), pair_strategy),
)


class TestLockTableProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        initial_pairs=st.lists(pair_strategy, max_size=8),
        ops=st.lists(op_strategy, min_size=1, max_size=40),
    )
    def test_indexes_agree_with_oracles_under_churn(
        self, initial_pairs, ops
    ):
        __, matrix = make_relation(initial_pairs)
        table = LockTable(matrix)
        processes = {pid: FakeProcess(pid) for pid in PIDS}
        for op in ops:
            kind = op[0]
            if kind == "acquire":
                __, pid, name, mode = op
                table.acquire(processes[pid], name, mode)
            elif kind == "upgrade":
                entries = [
                    entry
                    for entry in table.iter_entries()
                    if entry.mode is LockMode.C
                ]
                if entries:
                    entries[op[1] % len(entries)].upgrade_to_p()
            elif kind == "release":
                table.release_all(op[1])
            else:  # declare: mutate the relation mid-history
                left, right = op[1]
                matrix.declare_conflict(left, right)
            assert_agrees_with_oracles(table, processes)

    @settings(max_examples=60, deadline=None)
    @given(
        pairs=st.lists(pair_strategy, max_size=10),
        acquires=st.lists(
            st.tuples(
                st.sampled_from(PIDS), st.sampled_from(TYPE_NAMES)
            ),
            max_size=20,
        ),
    )
    def test_release_returns_table_to_oracle_agreement(
        self, pairs, acquires
    ):
        __, matrix = make_relation(pairs)
        table = LockTable(matrix)
        processes = {pid: FakeProcess(pid) for pid in PIDS}
        for pid, name in acquires:
            table.acquire(processes[pid], name, LockMode.C)
        for pid in PIDS:
            table.release_all(pid)
            assert_agrees_with_oracles(table, processes)
        assert table.lock_count == 0
        assert table.blockers_of(PIDS[0]) == frozenset()


class TestHasCycleProperty:
    """The cheap guard agrees with networkx on arbitrary digraphs."""

    @settings(max_examples=120, deadline=None)
    @given(
        edges=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=0, max_value=7),
            ),
            max_size=24,
        )
    )
    def test_matches_networkx(self, edges):
        adjacency: dict[int, set[int]] = {}
        for src, dst in edges:
            if src != dst:  # waits-for graphs have no self-edges
                adjacency.setdefault(src, set()).add(dst)
        graph = nx.DiGraph()
        for src, dsts in adjacency.items():
            for dst in dsts:
                graph.add_edge(src, dst)
        try:
            nx.find_cycle(graph)
            expected = True
        except nx.NetworkXNoCycle:
            expected = False
        assert has_cycle(adjacency) == expected
