"""Property tests: the compiled-plane lock table vs the adjacency path.

The compiled conflict plane replaced frozenset adjacency iteration in
every hot lock-table query with bitmask ANDs over ``_live_mask`` /
``_pid_type_masks``.  These tests churn a table through randomized
acquire / release / state-flip / declare-conflict histories and assert,
after every step, that

* the live-type and per-process bitmasks match a recompute from the
  primary per-type/per-pid lists (plane adoption after a post-freeze
  ``declare_conflict`` included), and
* every bitmask query agrees with its pre-compiled adjacency
  formulation preserved in :mod:`repro.core.reference`.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.activities.commutativity import ConflictMatrix
from repro.activities.registry import ActivityRegistry
from repro.core.lock_table import LockTable
from repro.core.locks import LockMode
from repro.core.reference import (
    adjacency_blocker_pids,
    adjacency_conflicting_locks,
    adjacency_conflicting_locks_flat,
    adjacency_conflicting_younger_flat,
    adjacency_iter_conflicting,
    adjacency_probe_blocked,
)
from repro.process.state import ProcessState

TYPE_NAMES = [f"t{i}" for i in range(6)]
PIDS = list(range(1, 6))
ABORTING = ProcessState.ABORTING


class FakeProcess:
    """Just the fields the table and the probe queries read."""

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.timestamp = pid  # fixed, distinct ages
        self.state = ProcessState.RUNNING


def make_table(
    pairs: list[tuple[str, str]]
) -> tuple[ConflictMatrix, LockTable]:
    registry = ActivityRegistry()
    for name in TYPE_NAMES:
        registry.define_compensatable(
            name, "shop", cost=1.0, compensation_cost=0.5
        )
    matrix = ConflictMatrix(registry)
    for left, right in pairs:
        matrix.declare_conflict(left, right)
    return matrix, LockTable(matrix)


def recomputed_masks(table: LockTable) -> tuple[int, dict[int, int]]:
    index = table._conflicts.compiled().index
    live = 0
    for type_name in table._by_type:
        live |= 1 << index[type_name]
    pid_masks = {}
    for pid, entries in table._by_pid.items():
        mask = 0
        for entry in entries:
            mask |= 1 << index[entry.type_name]
        pid_masks[pid] = mask
    return live, pid_masks


def assert_agrees_with_adjacency(
    table: LockTable, processes: dict[int, "FakeProcess"]
) -> None:
    # check_invariants audits the masks against the lists and the
    # compiled rows against the dict-based matrix (_check_masks)...
    table.check_invariants(live_pids=table.holders())
    # ...and this re-derives them independently of that audit.
    live, pid_masks = recomputed_masks(table)
    assert table._live_mask == live
    assert table._pid_type_masks == pid_masks
    for name in TYPE_NAMES:
        for pid in PIDS:
            process = processes[pid]
            assert table.conflicting_locks(
                name, exclude_pid=pid
            ) == adjacency_conflicting_locks(table, name, pid)
            assert table.conflicting_locks_flat(
                name, pid
            ) == adjacency_conflicting_locks_flat(table, name, pid)
            assert table.conflicting_younger_flat(
                name, pid, process.timestamp, ABORTING
            ) == adjacency_conflicting_younger_flat(
                table, name, pid, process.timestamp, ABORTING
            )
            assert table.probe_blocked(
                name, pid, process.timestamp, ABORTING
            ) == adjacency_probe_blocked(
                table, name, pid, process.timestamp, ABORTING
            )
            by_position = lambda entry: entry.position  # noqa: E731
            assert sorted(
                table.iter_conflicting(name, pid), key=by_position
            ) == sorted(
                adjacency_iter_conflicting(table, name, pid),
                key=by_position,
            )
            # Acquire-time blocker discovery: the foreign pids the
            # bitmask AND finds are the adjacency scan's, exactly.
            held = table._pid_type_masks
            plane = table._conflicts.compiled()
            mask = plane.mask_of[name]
            assert {
                other
                for other, bits in held.items()
                if other != pid and bits & mask
            } == adjacency_blocker_pids(table, name, pid)
        assert table.conflicting_locks(name) == (
            adjacency_conflicting_locks(table, name)
        )


pair_strategy = st.tuples(
    st.sampled_from(TYPE_NAMES), st.sampled_from(TYPE_NAMES)
)

op_strategy = st.one_of(
    st.tuples(
        st.just("acquire"),
        st.sampled_from(PIDS),
        st.sampled_from(TYPE_NAMES),
        st.sampled_from([LockMode.C, LockMode.P]),
    ),
    st.tuples(st.just("release"), st.sampled_from(PIDS)),
    st.tuples(st.just("declare"), pair_strategy),
    st.tuples(
        st.just("flip_state"),
        st.sampled_from(PIDS),
        st.sampled_from(
            [ProcessState.RUNNING, ProcessState.ABORTING,
             ProcessState.COMPLETING]
        ),
    ),
)


class TestCompiledTableProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        initial_pairs=st.lists(pair_strategy, max_size=8),
        ops=st.lists(op_strategy, min_size=1, max_size=40),
    )
    def test_masks_and_queries_agree_under_churn(
        self, initial_pairs, ops
    ):
        matrix, table = make_table(initial_pairs)
        processes = {pid: FakeProcess(pid) for pid in PIDS}
        for op in ops:
            kind = op[0]
            if kind == "acquire":
                __, pid, name, mode = op
                table.acquire(processes[pid], name, mode)
            elif kind == "release":
                table.release_all(op[1])
            elif kind == "declare":
                # Post-freeze mutation: the table must adopt the
                # recompiled plane before its next query.
                left, right = op[1]
                matrix.declare_conflict(left, right)
            else:  # flip_state
                processes[op[1]].state = op[2]
            assert_agrees_with_adjacency(table, processes)

    @settings(max_examples=40, deadline=None)
    @given(
        pairs=st.lists(pair_strategy, max_size=10),
        acquires=st.lists(
            st.tuples(
                st.sampled_from(PIDS), st.sampled_from(TYPE_NAMES)
            ),
            max_size=20,
        ),
    )
    def test_release_drains_masks(self, pairs, acquires):
        matrix, table = make_table(pairs)
        processes = {pid: FakeProcess(pid) for pid in PIDS}
        for pid, name in acquires:
            table.acquire(processes[pid], name, LockMode.C)
        for pid in PIDS:
            table.release_all(pid)
            assert_agrees_with_adjacency(table, processes)
        assert table._live_mask == 0
        assert table._pid_type_masks == {}

    @settings(max_examples=40, deadline=None)
    @given(pairs=st.lists(pair_strategy, max_size=8))
    def test_close_perfect_adoption(self, pairs):
        matrix, table = make_table(pairs)
        processes = {pid: FakeProcess(pid) for pid in PIDS}
        for pid in PIDS[:3]:
            table.acquire(
                processes[pid], TYPE_NAMES[pid % 3], LockMode.C
            )
        matrix.close_perfect()
        assert_agrees_with_adjacency(table, processes)
