"""Unit tests for decision objects and protocol statistics."""

import pytest

from repro.core.decisions import (
    AbortVictims,
    Defer,
    Grant,
    ProtocolStats,
    SelfAbort,
)


class TestDecisionObjects:
    def test_grant_defaults_to_no_locks(self):
        assert Grant().locks == ()

    def test_defer_requires_waiters(self):
        with pytest.raises(ValueError):
            Defer(wait_for=frozenset(), reason="empty")

    def test_abort_victims_requires_victims(self):
        with pytest.raises(ValueError):
            AbortVictims(victims=frozenset())

    def test_decisions_are_immutable(self):
        defer = Defer(wait_for=frozenset({1}), reason="x")
        with pytest.raises(AttributeError):
            defer.reason = "y"

    def test_self_abort_carries_reason(self):
        assert SelfAbort(reason="wait-die").reason == "wait-die"


class TestProtocolStats:
    def test_note_defer_counts_by_reason(self):
        stats = ProtocolStats()
        stats.note_defer("a")
        stats.note_defer("a")
        stats.note_defer("b")
        assert stats.defers == 3
        assert stats.defer_reasons == {"a": 2, "b": 1}

    def test_fresh_stats_are_zero(self):
        stats = ProtocolStats()
        assert stats.c_grants == 0
        assert stats.cascade_victims == 0
        assert stats.commits == 0
