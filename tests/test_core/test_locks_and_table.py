"""Unit tests for lock primitives and the ordered lock table."""

import pytest

from repro.core.lock_table import LockTable
from repro.core.locks import LockMode, can_ordered_share
from repro.errors import ProtocolError
from tests.conftest import make_process


class TestTable2Function:
    """The static compatibility function mirrors Table 2."""

    def test_c_behind_c_shares(self):
        assert can_ordered_share(LockMode.C, LockMode.C)

    def test_p_behind_c_is_exclusive(self):
        assert not can_ordered_share(LockMode.C, LockMode.P)

    def test_c_behind_p_shares(self):
        assert can_ordered_share(LockMode.P, LockMode.C)

    def test_p_behind_p_is_exclusive(self):
        assert not can_ordered_share(LockMode.P, LockMode.P)


@pytest.fixture
def table(conflicts) -> LockTable:
    return LockTable(conflicts)


@pytest.fixture
def two_processes(protocol, flat_program):
    older = make_process(protocol, flat_program, pid=1)
    younger = make_process(protocol, flat_program, pid=2)
    return older, younger


class TestLockTable:
    def test_positions_are_globally_increasing(self, table, two_processes):
        older, younger = two_processes
        first = table.acquire(older, "reserve", LockMode.C)
        second = table.acquire(younger, "wrap", LockMode.C)
        assert first.position < second.position

    def test_conflicting_locks_cover_related_types(
        self, table, two_processes
    ):
        older, younger = two_processes
        table.acquire(older, "reserve", LockMode.C)
        hits = table.conflicting_locks("wrap", exclude_pid=younger.pid)
        assert [e.type_name for e in hits] == ["reserve"]

    def test_self_conflict_included(self, table, two_processes):
        older, younger = two_processes
        table.acquire(older, "reserve", LockMode.C)
        hits = table.conflicting_locks("reserve", exclude_pid=2)
        assert len(hits) == 1

    def test_non_conflicting_type_invisible(self, table, two_processes):
        older, __ = two_processes
        table.acquire(older, "ship", LockMode.C)
        assert table.conflicting_locks("reserve") == []

    def test_exclude_pid(self, table, two_processes):
        older, __ = two_processes
        table.acquire(older, "reserve", LockMode.C)
        assert table.conflicting_locks("reserve", exclude_pid=1) == []

    def test_release_all(self, table, two_processes):
        older, younger = two_processes
        table.acquire(older, "reserve", LockMode.C)
        table.acquire(older, "wrap", LockMode.C)
        released = table.release_all(older.pid)
        assert len(released) == 2
        assert table.lock_count == 0
        assert table.locks_of(older.pid) == ()

    def test_commit_blockers_by_position(self, table, two_processes):
        older, younger = two_processes
        table.acquire(older, "reserve", LockMode.C)
        table.acquire(younger, "reserve", LockMode.C)
        assert table.commit_blockers(younger) == {older.pid}
        assert table.commit_blockers(older) == set()
        assert table.on_hold(younger)
        assert not table.on_hold(older)

    def test_commit_blockers_cleared_by_release(
        self, table, two_processes
    ):
        older, younger = two_processes
        table.acquire(older, "reserve", LockMode.C)
        table.acquire(younger, "reserve", LockMode.C)
        table.release_all(older.pid)
        assert table.commit_blockers(younger) == set()

    def test_c_locks_of_and_upgrade(self, table, two_processes):
        older, __ = two_processes
        entry = table.acquire(older, "reserve", LockMode.C)
        assert table.c_locks_of(older.pid) == (entry,)
        entry.upgrade_to_p()
        assert entry.mode is LockMode.P
        assert entry.converted
        assert table.c_locks_of(older.pid) == ()
        assert table.p_lock_holders() == {older.pid}

    def test_entry_for_activity(self, table, two_processes):
        older, __ = two_processes
        entry = table.acquire(older, "reserve", LockMode.C,
                              activity_uid=77)
        assert table.entry_for_activity(older.pid, 77) is entry
        assert table.entry_for_activity(older.pid, 99) is None

    def test_invariants_catch_foreign_locks(self, table, two_processes):
        older, __ = two_processes
        table.acquire(older, "reserve", LockMode.C)
        with pytest.raises(ProtocolError):
            table.check_invariants(live_pids=[])  # nobody is live

    def test_invariants_pass_for_live_holder(self, table, two_processes):
        older, __ = two_processes
        table.acquire(older, "reserve", LockMode.C)
        table.check_invariants(live_pids=[older.pid])
