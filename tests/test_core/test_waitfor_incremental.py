"""Property tests for the incremental wait-for maintainer and graph ports.

Three oracle layers back the networkx-free hot path:

* :class:`IncrementalWaitFor` (Pearce–Kelly order maintenance) is
  churned through random insert / delete / clear-waiter sequences and
  must agree with the three-color :func:`has_cycle` recompute after
  every step — including the older-waits-for-younger edges a pseudo
  pivot introduces.
* The ported :func:`find_cycle_edges` / :func:`topological_order` must
  return *identical* results to the real ``networkx`` algorithms they
  replaced, because the chosen cycle decides the deadlock victim and
  the schedule bytes downstream.
* The operation-count test pins the acceptance claim: a protocol-shaped
  acyclic park costs **zero** reorder work, where the historical
  per-park DFS visited every parked process each time.
"""

from __future__ import annotations

import networkx as nx  # test-only dependency (oracle)
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deadlock import (
    Digraph,
    IncrementalWaitFor,
    WaitForGraph,
    find_cycle_edges,
    has_cycle,
    topological_order,
)
from repro.core.reference import naive_find_wait_cycle
from repro.errors import ProtocolError

NODES = st.integers(min_value=0, max_value=7)

op_strategy = st.one_of(
    st.tuples(st.just("add"), NODES, NODES),
    # delete/clear pick from the live edge multiset by index, so every
    # generated op is applicable regardless of the prefix.
    st.tuples(st.just("remove"), st.integers(min_value=0), NODES),
    st.tuples(st.just("clear"), NODES, NODES),
)


def _model_adjacency(multi: dict[tuple[int, int], int]) -> dict[int, set[int]]:
    adjacency: dict[int, set[int]] = {}
    for (waiter, blocker), count in multi.items():
        if count > 0:
            adjacency.setdefault(waiter, set()).add(blocker)
    return adjacency


class TestIncrementalVsOracle:
    """Random churn: acyclicity always matches the full recompute."""

    @settings(max_examples=150, deadline=None)
    @given(ops=st.lists(op_strategy, min_size=1, max_size=60))
    def test_matches_has_cycle_under_churn(self, ops):
        waitfor = IncrementalWaitFor()
        multi: dict[tuple[int, int], int] = {}
        for op in ops:
            kind = op[0]
            if kind == "add":
                __, waiter, blocker = op
                waitfor.add_edge(waiter, blocker)
                if waiter != blocker:
                    key = (waiter, blocker)
                    multi[key] = multi.get(key, 0) + 1
            elif kind == "remove":
                live = [key for key, count in multi.items() if count > 0]
                if not live:
                    continue
                waiter, blocker = live[op[1] % len(live)]
                waitfor.remove_edge(waiter, blocker)
                multi[(waiter, blocker)] -= 1
            else:  # clear: withdraw every contribution of one waiter,
                # the shape of an unpark.
                waiter = op[1]
                for (src, blocker), count in list(multi.items()):
                    if src != waiter:
                        continue
                    for _ in range(count):
                        waitfor.remove_edge(src, blocker)
                    multi[(src, blocker)] = 0
            adjacency = _model_adjacency(multi)
            assert waitfor.acyclic() == (not has_cycle(adjacency))
        assert sorted(waitfor.edges()) == sorted(
            key for key, count in multi.items() if count > 0
        )

    def test_pseudo_pivot_cycle_detected_and_cleared(self):
        """Older-waits-for-younger closes a cycle; withdrawing it heals.

        The timestamp discipline normally only produces young→old
        edges (acyclic by construction).  A pseudo pivot's unretained
        C-lock lets an *older* process end up waiting on a younger
        holder — the one shape that can close a cycle.
        """
        waitfor = IncrementalWaitFor()
        # Discipline edges, youngest parked last: 4→3→2→1.
        for young, old in ((2, 1), (3, 2), (4, 3)):
            waitfor.add_edge(young, old)
            assert waitfor.acyclic()
        # Pseudo-pivot inversion: the oldest waits on the youngest.
        waitfor.add_edge(1, 4)
        assert not waitfor.acyclic()
        # The edge is retained while cyclic; victim abort withdraws one
        # contribution and the graph must report acyclic again.
        waitfor.remove_edge(1, 4)
        assert waitfor.acyclic()
        # Repeated churn after the lazy rebuild stays consistent.
        waitfor.add_edge(1, 4)
        assert not waitfor.acyclic()
        waitfor.remove_edge(2, 1)
        assert waitfor.acyclic()

    def test_multiplicity_keeps_edge_until_last_removal(self):
        waitfor = IncrementalWaitFor()
        waitfor.add_edge(2, 1)
        waitfor.add_edge(2, 1)
        waitfor.add_edge(1, 2)
        assert not waitfor.acyclic()
        waitfor.remove_edge(2, 1)
        assert not waitfor.acyclic()  # second contribution still live
        waitfor.remove_edge(2, 1)
        assert waitfor.acyclic()
        assert waitfor.edges() == [(1, 2)]

    def test_remove_unknown_edge_raises(self):
        waitfor = IncrementalWaitFor()
        with pytest.raises(KeyError):
            waitfor.remove_edge(1, 2)

    def test_discard_node_requires_no_contributions(self):
        waitfor = IncrementalWaitFor()
        waitfor.add_edge(2, 1)
        with pytest.raises(ProtocolError):
            waitfor.discard_node(2)
        waitfor.remove_edge(2, 1)
        waitfor.discard_node(2)
        waitfor.discard_node(2)  # idempotent once gone


class TestPortedAlgorithmsMatchNetworkx:
    """The in-tree ports must be *byte-identical* to networkx.

    ``find_cycle`` in particular feeds victim choice: a different (but
    equally valid) cycle would abort a different process and change the
    schedule, so equality is on the exact edge list, not just cycle-ness.
    """

    @settings(max_examples=150, deadline=None)
    @given(edges=st.lists(st.tuples(NODES, NODES), max_size=24))
    def test_find_cycle_edges_identical(self, edges):
        ours = Digraph()
        theirs = nx.DiGraph()
        for src, dst in edges:
            if src == dst:
                continue
            ours.add_edge(src, dst)
            theirs.add_edge(src, dst)
        assert list(ours.nodes) == list(theirs.nodes)
        assert list(ours.edges) == list(theirs.edges)
        try:
            expected = [
                (src, dst) for src, dst, _ in nx.find_cycle(theirs)
            ] if theirs.is_multigraph() else list(nx.find_cycle(theirs))
        except nx.NetworkXNoCycle:
            expected = None
        assert find_cycle_edges(ours) == expected

    @settings(max_examples=150, deadline=None)
    @given(
        edges=st.lists(st.tuples(NODES, NODES), max_size=24),
        isolated=st.lists(NODES, max_size=4),
    )
    def test_topological_order_identical_on_dags(self, edges, isolated):
        ours = Digraph()
        theirs = nx.DiGraph()
        for node in isolated:
            ours.add_node(node)
            theirs.add_node(node)
        for src, dst in edges:
            if src < dst:  # guarantees acyclicity
                ours.add_edge(src, dst)
                theirs.add_edge(src, dst)
        assert topological_order(ours) == list(
            nx.topological_sort(theirs)
        )

    def test_topological_order_raises_on_cycle(self):
        graph = Digraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 1)
        with pytest.raises(ProtocolError):
            topological_order(graph)

    @settings(max_examples=150, deadline=None)
    @given(
        waits=st.dictionaries(
            NODES, st.frozensets(NODES, max_size=4), max_size=8
        )
    )
    def test_waitforgraph_matches_naive_oracle(self, waits):
        graph = WaitForGraph()
        for waiter, blockers in waits.items():
            graph.set_waits(waiter, blockers)
        assert graph.find_cycle() == naive_find_wait_cycle(
            {waiter: set(blockers) for waiter, blockers in waits.items()}
        )


def _legacy_dfs_visits(adjacency: dict[int, set[int]]) -> int:
    """Nodes the historical per-park ``has_cycle`` scan touched.

    The pre-incremental resolver rebuilt the wait-for graph and ran the
    three-color DFS over *every* node on *every* park; on an acyclic
    graph the DFS colors each node exactly once.
    """
    nodes = set(adjacency)
    for blockers in adjacency.values():
        nodes |= blockers
    return len(nodes)


class TestAcyclicParkCost:
    """Acceptance: the acyclic park no longer walks the parked set."""

    def test_discipline_shaped_parks_cost_zero_reorders(self):
        # N successive parks, each a *fresh, younger* waiter blocking on
        # the previously parked process — the timestamp-discipline shape
        # that dominates every workload.  Order-consistent on arrival,
        # so the Pearce–Kelly maintainer does no reorder work at all,
        # while the legacy formulation revisits the whole parked set.
        n_parks = 400
        waitfor = IncrementalWaitFor()
        adjacency: dict[int, set[int]] = {}
        legacy_visits = 0
        for step in range(n_parks):
            waitfor.add_edge(step + 1, step)
            adjacency.setdefault(step + 1, set()).add(step)
            assert waitfor.acyclic()
            legacy_visits += _legacy_dfs_visits(adjacency)
        assert waitfor.ops == 0
        # The replaced formulation was quadratic over the same history.
        assert legacy_visits >= n_parks * (n_parks - 1) // 2

    def test_random_acyclic_churn_is_cheap(self):
        # Even with blockers appearing *after* their waiters (the rarer
        # awaiting-cascade materialization), total reorder work stays a
        # small multiple of the edge count — amortized O(1) per park —
        # instead of the legacy Θ(parks · graph).
        import random

        rng = random.Random(42)
        n_edges = 600
        waitfor = IncrementalWaitFor()
        for index in range(n_edges):
            # Mostly discipline-shaped, occasionally inverted-but-
            # acyclic (waiter older than blocker yet no cycle closed).
            waiter = index + 1
            blocker = rng.randrange(max(1, index)) if index else 0
            waitfor.add_edge(waiter, blocker)
            assert waitfor.acyclic()
        assert waitfor.ops <= 4 * n_edges
