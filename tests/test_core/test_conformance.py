"""Tests for the protocol conformance suite (the rule checklist)."""

import pytest

from repro.baselines.aca import CascadeAvoidingScheduler
from repro.baselines.osl import PureOrderedSharedLocking
from repro.baselines.s2pl import StrictTwoPhaseLocking
from repro.baselines.serial import SerialScheduler
from repro.core.conformance import CHECKS, run_conformance
from repro.core.protocol import ProcessLockManager


class TestProcessLocking:
    def test_fully_conformant(self):
        report = run_conformance(ProcessLockManager, "process-locking")
        assert report.fully_conformant, report.describe()

    def test_basic_protocol_also_conformant(self):
        report = run_conformance(
            lambda reg, con: ProcessLockManager(
                reg, con, cost_based=False
            ),
            "process-locking-basic",
        )
        assert report.fully_conformant, report.describe()

    def test_every_check_ran(self):
        report = run_conformance(ProcessLockManager)
        assert len(report.checks) == len(CHECKS)


class TestBaselineProfiles:
    """Each baseline fails exactly the checks that motivate the paper."""

    def test_pure_osl_fails_verification_and_p_exclusivity(self):
        report = run_conformance(PureOrderedSharedLocking, "osl-pure")
        assert report.failed == {
            "early-verification",
            "p-exclusive-behind-c",
            "p-p-exclusive",
        }

    def test_osl_still_honours_relinquish_rule(self):
        report = run_conformance(PureOrderedSharedLocking)
        assert "commit-respects-hold" in report.passed
        assert "compensation-cascades" in report.passed

    def test_s2pl_fails_only_sharing(self):
        report = run_conformance(StrictTwoPhaseLocking, "s2pl")
        assert report.failed == {
            "c-shares-behind-older-c",
            "c-shares-behind-older-p",
        }

    def test_serial_fails_only_sharing(self):
        report = run_conformance(SerialScheduler, "serial")
        assert report.failed == {
            "c-shares-behind-older-c",
            "c-shares-behind-older-p",
        }

    def test_aca_profile_matches_s2pl(self):
        aca = run_conformance(CascadeAvoidingScheduler, "aca")
        s2pl = run_conformance(StrictTwoPhaseLocking, "s2pl")
        assert aca.failed == s2pl.failed


class TestReport:
    def test_describe_mentions_every_check(self):
        report = run_conformance(ProcessLockManager, "pl")
        text = report.describe()
        for name, __, __desc in CHECKS:
            assert name in text
        assert "PASS" in text

    def test_broken_protocol_counts_exceptions_as_failures(self):
        class Broken:
            def __init__(self, registry, conflicts):
                self.registry = registry
                self._ts = iter(range(1, 100))

            def new_timestamp(self):
                return next(self._ts)

            def attach(self, process):
                pass

            def request_activity_lock(self, *args):
                raise RuntimeError("boom")

        report = run_conformance(Broken, "broken")
        assert not report.fully_conformant
        assert len(report.failed) == len(CHECKS)
