"""Unit tests for the six process-locking rules (Section 3.2.3).

Each test drives the protocol directly (no simulation engine) through a
minimal scenario and asserts the exact decision the rule prescribes.
"""

import pytest

from repro.core.decisions import AbortVictims, Defer, Grant
from repro.core.locks import LockMode
from repro.core.protocol import ProcessLockManager
from repro.errors import ProtocolError
from repro.process.state import ProcessState
from tests.conftest import make_process


def launch(process, name):
    return process.launch(name)


def mint(protocol, process, name, seq=90):
    """Mint an activity invocation directly (bypassing program order).

    Unit tests for individual rules need locks on arbitrary types
    without walking a whole program; the protocol only looks at the
    activity's type and uid.
    """
    from repro.activities.activity import Activity

    return Activity(protocol.registry.get(name), process.pid, seq=seq)


def grant_c(protocol, process, name):
    activity = launch(process, name)
    decision = protocol.request_activity_lock(
        process, activity, LockMode.C
    )
    assert isinstance(decision, Grant), decision
    return activity


@pytest.fixture
def env(protocol, flat_program, order_program):
    older = make_process(protocol, flat_program, pid=1)
    younger = make_process(protocol, flat_program, pid=2)
    return protocol, older, younger


class TestCompRule:
    def test_grant_with_no_conflicts(self, env):
        protocol, older, __ = env
        grant_c(protocol, older, "reserve")

    def test_ordered_sharing_behind_older(self, env):
        protocol, older, younger = env
        grant_c(protocol, older, "reserve")
        grant_c(protocol, younger, "reserve")
        assert protocol.table.on_hold(younger)

    def test_younger_running_c_holder_is_aborted(self, env):
        protocol, older, younger = env
        grant_c(protocol, younger, "reserve")
        activity = launch(older, "reserve")
        decision = protocol.request_activity_lock(
            older, activity, LockMode.C
        )
        assert isinstance(decision, AbortVictims)
        assert decision.victims == frozenset({younger.pid})

    def test_younger_aborting_holder_is_waited_for(self, env):
        protocol, older, younger = env
        grant_c(protocol, younger, "reserve")
        younger.abandon_all = None  # readability only
        younger.begin_abort()
        activity = launch(older, "reserve")
        decision = protocol.request_activity_lock(
            older, activity, LockMode.C
        )
        assert isinstance(decision, Defer)
        assert decision.reason == "wait-aborting"
        assert decision.wait_for == frozenset({younger.pid})

    def test_defer_on_younger_p_holder(
        self, protocol, flat_program, order_program
    ):
        older = make_process(protocol, flat_program, pid=1)
        younger = make_process(protocol, order_program, pid=2)
        # Younger acquires a pseudo/pivot-mode lock on 'reserve'.
        activity = launch(younger, "reserve")
        decision = protocol.request_activity_lock(
            younger, activity, LockMode.P
        )
        assert isinstance(decision, Grant)
        request = launch(older, "reserve")
        decision = protocol.request_activity_lock(
            older, request, LockMode.C
        )
        assert isinstance(decision, Defer)
        assert younger.pid in decision.wait_for

    def test_commutative_requests_ignore_each_other(self, env):
        protocol, older, younger = env
        ship = mint(protocol, older, "ship")
        decision = protocol.request_activity_lock(
            older, ship, LockMode.C
        )
        assert isinstance(decision, Grant)
        grant_c(protocol, younger, "reserve")
        assert not protocol.table.on_hold(younger)


class TestPivRule:
    def test_grant_without_conflicts(self, protocol, order_program):
        process = make_process(protocol, order_program, pid=1)
        activity = launch(process, "reserve")
        protocol.request_activity_lock(process, activity, LockMode.C)
        process.on_committed(activity)
        wrap = launch(process, "wrap")
        protocol.request_activity_lock(process, wrap, LockMode.C)
        process.on_committed(wrap)
        pivot = launch(process, "charge")
        decision = protocol.request_activity_lock(
            process, pivot, LockMode.P
        )
        assert isinstance(decision, Grant)
        assert protocol.completing_token_owner == process.pid
        # Comp→Piv: every C lock was converted.
        assert protocol.table.c_locks_of(process.pid) == ()

    def test_defer_on_older_c_holder(
        self, protocol, flat_program, order_program
    ):
        older = make_process(protocol, flat_program, pid=1)
        younger = make_process(protocol, order_program, pid=2)
        grant_c(protocol, older, "reserve")
        grant_c(protocol, younger, "reserve")  # shares behind older
        # P-mode request on a compensatable type (a pseudo pivot)
        # isolates the Comp→Piv conversion condition.
        pivot = mint(protocol, younger, "wrap")
        decision = protocol.request_activity_lock(
            younger, pivot, LockMode.P
        )
        assert isinstance(decision, Defer)
        assert older.pid in decision.wait_for
        assert decision.reason == "piv-rule-defer"

    def test_younger_c_holders_cascaded(
        self, protocol, flat_program, order_program
    ):
        older = make_process(protocol, order_program, pid=1)
        younger = make_process(protocol, flat_program, pid=2)
        grant_c(protocol, older, "reserve")
        grant_c(protocol, younger, "reserve")
        pivot = mint(protocol, older, "charge")
        decision = protocol.request_activity_lock(
            older, pivot, LockMode.P
        )
        # Conversion of older's C lock on 'reserve' hits younger's
        # shared C lock -> cascade.
        assert isinstance(decision, AbortVictims)
        assert decision.victims == frozenset({younger.pid})

    def test_p_lock_holders_are_globally_serialized(
        self, protocol, order_program
    ):
        """Literal Piv-Rule: any other P-lock holder defers a P request,
        pseudo pivots included."""
        first = make_process(protocol, order_program, pid=1)
        second = make_process(protocol, order_program, pid=2)
        pseudo = mint(protocol, first, "reserve")
        protocol.request_activity_lock(first, pseudo, LockMode.P)
        # A pseudo-pivot P lock does not take the completing token...
        assert protocol.completing_token_owner is None
        charge_first = mint(protocol, first, "charge")
        decision = protocol.request_activity_lock(
            first, charge_first, LockMode.P
        )
        # ...but a real pivot of the same process proceeds and does.
        assert isinstance(decision, Grant)
        assert protocol.completing_token_owner == first.pid
        charge_second = mint(protocol, second, "charge")
        decision = protocol.request_activity_lock(
            second, charge_second, LockMode.P
        )
        assert isinstance(decision, Defer)
        assert decision.reason == "other-p-holder"
        assert decision.wait_for == frozenset({first.pid})


class TestCInverseRule:
    def test_compensation_aborts_later_sharers(self, env):
        protocol, older, younger = env
        reserved = grant_c(protocol, older, "reserve")
        older.on_committed(reserved)
        grant_c(protocol, younger, "reserve")  # shares after older
        plan = None
        # Older aborts (e.g. intrinsic failure elsewhere).
        wrap = launch(older, "wrap")
        plan = older.on_failed(wrap)
        comp = older.make_compensation(plan.compensations[0])
        decision = protocol.request_compensation_lock(older, comp)
        assert isinstance(decision, AbortVictims)
        assert decision.victims == frozenset({younger.pid})

    def test_compensation_ignores_earlier_holders(self, env):
        protocol, older, younger = env
        grant_c(protocol, older, "reserve")
        reserved = grant_c(protocol, younger, "reserve")
        younger.on_committed(reserved)
        wrap = launch(younger, "wrap")
        plan = younger.on_failed(wrap)
        comp = younger.make_compensation(plan.compensations[0])
        decision = protocol.request_compensation_lock(younger, comp)
        # Older's lock precedes ours: unaffected, grant.
        assert isinstance(decision, Grant)

    def test_compensation_without_lock_is_an_error(self, env):
        protocol, older, __ = env
        reserved = launch(older, "reserve")
        older.on_committed(reserved)  # committed without a lock (bug)
        wrap = launch(older, "wrap")
        plan = older.on_failed(wrap)
        comp = older.make_compensation(plan.compensations[0])
        with pytest.raises(ProtocolError):
            protocol.request_compensation_lock(older, comp)

    def test_regular_activity_rejected(self, env):
        protocol, older, __ = env
        activity = launch(older, "reserve")
        with pytest.raises(ProtocolError):
            protocol.request_compensation_lock(older, activity)


class TestCommitRule:
    def test_commit_clean_process(self, env):
        protocol, older, __ = env
        grant_c(protocol, older, "reserve")
        decision = protocol.try_commit(older)
        assert isinstance(decision, Grant)

    def test_commit_deferred_while_on_hold(self, env):
        protocol, older, younger = env
        grant_c(protocol, older, "reserve")
        grant_c(protocol, younger, "reserve")
        decision = protocol.try_commit(younger)
        assert isinstance(decision, Defer)
        assert decision.reason == "commit-on-hold"
        assert decision.wait_for == frozenset({older.pid})

    def test_commit_allowed_after_older_detaches(self, env):
        protocol, older, younger = env
        grant_c(protocol, older, "reserve")
        grant_c(protocol, younger, "reserve")
        protocol.detach(older)
        decision = protocol.try_commit(younger)
        assert isinstance(decision, Grant)


class TestAbortRuleAndLifecycle:
    def test_detach_releases_locks_and_token(
        self, protocol, order_program
    ):
        process = make_process(protocol, order_program, pid=1)
        from repro.activities.activity import Activity

        charge = Activity(
            protocol.registry.get("charge"), process.pid, seq=0
        )
        protocol.request_activity_lock(process, charge, LockMode.P)
        assert protocol.completing_token_owner == process.pid
        protocol.detach(process)
        assert protocol.completing_token_owner is None
        assert protocol.table.lock_count == 0

    def test_requests_from_inactive_process_rejected(self, env):
        protocol, older, __ = env
        older.begin_abort()
        from repro.activities.activity import Activity

        activity = Activity(
            protocol.registry.get("reserve"), older.pid, seq=0
        )
        with pytest.raises(ProtocolError):
            protocol.request_activity_lock(older, activity, LockMode.C)

    def test_detached_process_rejected(self, env, flat_program):
        protocol, older, __ = env
        protocol.detach(older)
        from repro.activities.activity import Activity

        activity = Activity(
            protocol.registry.get("reserve"), older.pid, seq=0
        )
        with pytest.raises(ProtocolError):
            protocol.request_activity_lock(older, activity, LockMode.C)


class TestFirstClassCompleting:
    def test_completing_wounds_older_running_holders(
        self, protocol, flat_program, order_program
    ):
        older = make_process(protocol, flat_program, pid=1)
        younger = make_process(protocol, order_program, pid=2)
        grant_c(protocol, older, "reserve")
        # Younger becomes completing: walk it through its pivot on a
        # non-conflicting path.
        from repro.activities.activity import Activity

        charge = Activity(
            protocol.registry.get("charge"), younger.pid, seq=50
        )
        decision = protocol.request_activity_lock(
            younger, charge, LockMode.P
        )
        assert isinstance(decision, Grant)
        younger.state = ProcessState.COMPLETING
        wrap = Activity(
            protocol.registry.get("wrap"), younger.pid, seq=51
        )
        decision = protocol.request_activity_lock(
            younger, wrap, LockMode.C
        )
        assert isinstance(decision, AbortVictims)
        assert decision.victims == frozenset({older.pid})

    def test_two_completing_processes_rejected(
        self, protocol, flat_program
    ):
        first = make_process(protocol, flat_program, pid=1)
        second = make_process(protocol, flat_program, pid=2)
        from repro.activities.activity import Activity

        wrap_second = Activity(
            protocol.registry.get("wrap"), second.pid, seq=0
        )
        protocol.request_activity_lock(second, wrap_second, LockMode.C)
        first.state = ProcessState.COMPLETING
        second.state = ProcessState.COMPLETING
        reserve = Activity(
            protocol.registry.get("reserve"), first.pid, seq=0
        )
        with pytest.raises(ProtocolError):
            protocol.request_activity_lock(first, reserve, LockMode.C)
