"""Unit tests for the holder-partition helper (rules.py)."""

import pytest

from repro.core.locks import LockEntry, LockMode
from repro.core.rules import partition_holders
from repro.process.instance import Process
from repro.process.state import ProcessState
from tests.conftest import make_process


@pytest.fixture
def trio(protocol, flat_program):
    """Three processes with ascending timestamps."""
    return [
        make_process(protocol, flat_program, pid=pid)
        for pid in (1, 2, 3)
    ]


def entry(process: Process, mode: LockMode, position: int) -> LockEntry:
    return LockEntry(
        process=process,
        type_name="reserve",
        mode=mode,
        position=position,
    )


class TestPartition:
    def test_older_and_younger_split(self, trio):
        p1, p2, p3 = trio
        partition = partition_holders(
            p2,
            [entry(p1, LockMode.C, 1), entry(p3, LockMode.C, 2)],
        )
        assert partition.older_c == {1}
        assert partition.younger_running_c == {3}
        assert partition.older_running == {1}
        assert partition.older_running_c == {1}

    def test_modes_split(self, trio):
        p1, p2, p3 = trio
        partition = partition_holders(
            p2,
            [entry(p1, LockMode.P, 1), entry(p3, LockMode.P, 2)],
        )
        assert partition.older_p == {1}
        assert partition.younger_running_p == {3}
        assert partition.older_c == set()
        assert partition.any_p == {1, 3}

    def test_aborting_holders_bucketed_regardless_of_age(self, trio):
        p1, p2, p3 = trio
        p1.begin_abort()
        p3.begin_abort()
        partition = partition_holders(
            p2,
            [entry(p1, LockMode.C, 1), entry(p3, LockMode.P, 2)],
        )
        assert partition.aborting == {1, 3}
        assert partition.older_c == set()
        assert partition.younger_running_p == set()

    def test_younger_completing_bucket(self, trio):
        p1, p2, p3 = trio
        p3.state = ProcessState.COMPLETING
        partition = partition_holders(p2, [entry(p3, LockMode.C, 5)])
        assert partition.younger_completing == {3}
        assert partition.younger_running_c == set()

    def test_older_completing_counts_as_older(self, trio):
        p1, p2, p3 = trio
        p1.state = ProcessState.COMPLETING
        partition = partition_holders(p2, [entry(p1, LockMode.C, 1)])
        assert partition.older_c == {1}
        assert partition.younger_completing == set()
        # Completing is not running: not a wound candidate.
        assert partition.older_running == set()

    def test_empty(self, trio):
        __, p2, __ = trio
        partition = partition_holders(p2, [])
        assert partition.empty

    def test_non_empty(self, trio):
        p1, p2, __ = trio
        partition = partition_holders(p2, [entry(p1, LockMode.C, 1)])
        assert not partition.empty

    def test_same_holder_in_multiple_buckets(self, trio):
        p1, p2, __ = trio
        partition = partition_holders(
            p2,
            [entry(p1, LockMode.C, 1), entry(p1, LockMode.P, 2)],
        )
        assert partition.older_c == {1}
        assert partition.older_p == {1}
