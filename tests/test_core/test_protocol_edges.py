"""Targeted tests for less-travelled protocol paths."""

import pytest

from repro.core.decisions import AbortVictims, Defer, Grant
from repro.core.locks import LockMode
from repro.core.protocol import ProcessLockManager
from repro.process.state import ProcessState
from tests.conftest import make_process


def mint(protocol, process, name, seq=90):
    from repro.activities.activity import Activity

    return Activity(protocol.registry.get(name), process.pid, seq=seq)


class TestCompletingVsPseudoPivot:
    def test_completing_defers_on_pseudo_holder(
        self, protocol, flat_program, order_program
    ):
        """Pseudo-pivot protection outranks the completing process."""
        pseudo_holder = make_process(protocol, flat_program, pid=1)
        completing = make_process(protocol, order_program, pid=2)
        # The older process protects itself with a pseudo-P lock.
        decision = protocol.request_activity_lock(
            pseudo_holder,
            mint(protocol, pseudo_holder, "reserve"),
            LockMode.P,
        )
        assert isinstance(decision, Grant)
        completing.state = ProcessState.COMPLETING
        outcome = protocol.request_activity_lock(
            completing, mint(protocol, completing, "reserve"),
            LockMode.C,
        )
        assert isinstance(outcome, Defer)
        assert outcome.reason == "completing-defers-on-pseudo"
        assert outcome.wait_for == frozenset({pseudo_holder.pid})

    def test_completing_still_wounds_c_holders(
        self, protocol, flat_program, order_program
    ):
        holder = make_process(protocol, flat_program, pid=1)
        completing = make_process(protocol, order_program, pid=2)
        protocol.request_activity_lock(
            holder, mint(protocol, holder, "reserve"), LockMode.C
        )
        completing.state = ProcessState.COMPLETING
        outcome = protocol.request_activity_lock(
            completing, mint(protocol, completing, "reserve"),
            LockMode.C,
        )
        assert isinstance(outcome, AbortVictims)
        assert outcome.victims == frozenset({holder.pid})


class TestScopedDefermentAblation:
    def test_scoped_mode_grants_non_conflicting_p(
        self, registry, conflicts, flat_program
    ):
        protocol = ProcessLockManager(
            registry, conflicts, global_p_deferment=False
        )
        first = make_process(protocol, flat_program, pid=1)
        second = make_process(protocol, flat_program, pid=2)
        assert isinstance(
            protocol.request_activity_lock(
                first, mint(protocol, first, "reserve"), LockMode.P
            ),
            Grant,
        )
        # 'ship' commutes with 'reserve': scoped mode admits both P's.
        assert isinstance(
            protocol.request_activity_lock(
                second, mint(protocol, second, "ship"), LockMode.P
            ),
            Grant,
        )

    def test_global_mode_defers_even_non_conflicting_p(
        self, registry, conflicts, flat_program
    ):
        protocol = ProcessLockManager(registry, conflicts)
        first = make_process(protocol, flat_program, pid=1)
        second = make_process(protocol, flat_program, pid=2)
        protocol.request_activity_lock(
            first, mint(protocol, first, "reserve"), LockMode.P
        )
        decision = protocol.request_activity_lock(
            second, mint(protocol, second, "ship"), LockMode.P
        )
        assert isinstance(decision, Defer)
        assert decision.reason == "other-p-holder"


class TestRecoveryGrants:
    def test_restore_grant_rebuilds_order_and_token(
        self, protocol, flat_program, order_program
    ):
        older = make_process(protocol, flat_program, pid=1)
        completing = make_process(protocol, order_program, pid=2)
        first = protocol.restore_grant(older, "reserve", LockMode.C, 11)
        second = protocol.restore_grant(
            completing, "reserve", LockMode.C, 12
        )
        assert first.position < second.position
        assert protocol.table.commit_blockers(completing) == {1}
        assert protocol.completing_token_owner is None
        protocol.restore_grant(completing, "charge", LockMode.P, 13)
        assert protocol.completing_token_owner == completing.pid

    def test_timestamp_floor(self, protocol):
        protocol.ensure_timestamp_floor(100)
        assert protocol.new_timestamp() == 101
        # Never goes backwards.
        protocol.ensure_timestamp_floor(5)
        assert protocol.new_timestamp() > 101


class TestWaitAborting:
    def test_compensation_waits_for_aborting_later_sharer(
        self, protocol, flat_program
    ):
        older = make_process(protocol, flat_program, pid=1)
        younger = make_process(protocol, flat_program, pid=2)
        reserved = older.launch("reserve")
        protocol.request_activity_lock(older, reserved, LockMode.C)
        older.on_committed(reserved)
        shared = younger.launch("reserve")
        protocol.request_activity_lock(younger, shared, LockMode.C)
        younger.abandon(shared)
        younger.begin_abort()  # the sharer is itself aborting
        failed = older.launch("wrap")
        plan = older.on_failed(failed)
        comp = older.make_compensation(plan.compensations[0])
        decision = protocol.request_compensation_lock(older, comp)
        assert isinstance(decision, Defer)
        assert decision.reason == "wait-aborting"
        assert decision.wait_for == frozenset({younger.pid})
