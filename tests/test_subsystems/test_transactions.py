"""Unit tests for subsystem transactions (undo, strictness)."""

import pytest

from repro.errors import TransactionAborted
from repro.subsystems.subsystem import TransactionalSubsystem


@pytest.fixture
def sub() -> TransactionalSubsystem:
    return TransactionalSubsystem("test")


class TestCommitAbort:
    def test_commit_makes_writes_visible(self, sub):
        txn = sub.begin()
        txn.write("k", lambda old: 42)
        txn.commit()
        assert sub.store.read("k") == 42

    def test_abort_restores_before_images(self, sub):
        seed = sub.begin()
        seed.write("k", lambda old: 10)
        seed.commit()
        txn = sub.begin()
        txn.write("k", lambda old: 99)
        txn.write("m", lambda old: 1)
        txn.abort()
        assert sub.store.read("k") == 10
        assert sub.store.read("m") == 0

    def test_abort_restores_in_reverse_order(self, sub):
        txn = sub.begin()
        txn.write("k", lambda old: 1)
        txn.write("k", lambda old: 2)
        txn.abort()
        assert sub.store.read("k") == 0

    def test_no_ops_after_commit(self, sub):
        txn = sub.begin()
        txn.commit()
        with pytest.raises(TransactionAborted):
            txn.read("k")

    def test_no_ops_after_abort(self, sub):
        txn = sub.begin()
        txn.abort()
        with pytest.raises(TransactionAborted):
            txn.write("k", lambda old: 1)

    def test_locks_released_at_commit(self, sub):
        txn = sub.begin()
        txn.write("k", lambda old: 1)
        txn.commit()
        other = sub.begin()
        assert other.read("k") == 1

    def test_locks_released_at_abort(self, sub):
        txn = sub.begin()
        txn.write("k", lambda old: 1)
        txn.abort()
        other = sub.begin()
        other.write("k", lambda old: 5)
        other.commit()
        assert sub.store.read("k") == 5

    def test_reads_collected(self, sub):
        seed = sub.begin()
        seed.write("k", lambda old: 3)
        seed.commit()
        txn = sub.begin()
        txn.read("k")
        txn.read("m")
        assert txn.reads == [3, 0]


class TestHistoryRecording:
    def test_history_records_operations(self, sub):
        txn = sub.begin()
        txn.read("a")
        txn.write("b", lambda old: 1)
        txn.commit()
        ops = [(op, key) for _, op, key in sub.history]
        assert ops == [("r", "a"), ("w", "b"), ("c", "")]

    def test_history_records_aborts(self, sub):
        txn = sub.begin()
        txn.write("a", lambda old: 1)
        txn.abort()
        assert sub.history[-1][1] == "a"
