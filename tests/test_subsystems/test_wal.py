"""Tests for write-ahead logging and subsystem crash recovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    DataDeadlockAvoided,
    SubsystemError,
    SubsystemWouldBlock,
)
from repro.subsystems.storage import RecordStore
from repro.subsystems.subsystem import TransactionalSubsystem
from repro.subsystems.wal import (
    WalKind,
    WriteAheadLog,
    recover_store,
)


class TestWriteAheadLog:
    def test_lsns_are_monotone(self):
        wal = WriteAheadLog()
        first = wal.log_write(1, "k", 0)
        second = wal.log_commit(1)
        assert second > first

    def test_losers_without_terminal_record(self):
        wal = WriteAheadLog()
        wal.log_write(1, "k", 0)
        wal.log_write(2, "m", 0)
        wal.log_commit(1)
        assert wal.losers() == {2}

    def test_aborted_transactions_are_not_losers(self):
        wal = WriteAheadLog()
        wal.log_write(1, "k", 0)
        wal.log_abort(1)
        assert wal.losers() == set()

    def test_readonly_transactions_are_not_losers(self):
        wal = WriteAheadLog()
        wal.log_commit(7)
        assert wal.losers() == set()


class TestRecoverStore:
    def test_loser_writes_undone_in_reverse(self):
        store = RecordStore()
        wal = WriteAheadLog()
        wal.log_write(1, "k", 0)
        store.write("k", 5)
        wal.log_write(1, "k", 5)
        store.write("k", 9)
        undone = recover_store(store, wal)
        assert undone == 2
        assert store.read("k") == 0

    def test_committed_writes_survive(self):
        store = RecordStore()
        wal = WriteAheadLog()
        wal.log_write(1, "k", 0)
        store.write("k", 5)
        wal.log_commit(1)
        assert recover_store(store, wal) == 0
        assert store.read("k") == 5

    def test_recovery_logs_aborts_and_is_idempotent(self):
        store = RecordStore()
        wal = WriteAheadLog()
        wal.log_write(1, "k", 0)
        store.write("k", 5)
        recover_store(store, wal)
        assert any(
            r.kind is WalKind.ABORT and r.txn_id == 1
            for r in wal.records
        )
        # Running recovery again finds no losers.
        assert recover_store(store, wal) == 0
        assert store.read("k") == 0


class TestSubsystemCrash:
    def test_crash_rolls_back_in_flight_transaction(self):
        sub = TransactionalSubsystem("s", durable=True)
        committed = sub.begin()
        committed.write("a", lambda old: 10)
        committed.commit()
        doomed = sub.begin()
        doomed.write("a", lambda old: 99)
        doomed.write("b", lambda old: 1)
        undone = sub.simulate_crash_and_recover()
        assert undone == 2
        assert sub.store.read("a") == 10
        assert sub.store.read("b") == 0

    def test_locks_cleared_by_crash(self):
        sub = TransactionalSubsystem("s", durable=True)
        doomed = sub.begin()
        doomed.write("a", lambda old: 1)
        sub.simulate_crash_and_recover()
        survivor = sub.begin()
        survivor.write("a", lambda old: 7)
        survivor.commit()
        assert sub.store.read("a") == 7

    def test_history_stays_cpsr_and_aca(self):
        sub = TransactionalSubsystem("s", durable=True)
        first = sub.begin()
        first.write("a", lambda old: 1)
        first.commit()
        doomed = sub.begin()
        doomed.write("b", lambda old: 1)
        sub.simulate_crash_and_recover()
        after = sub.begin()
        after.read("a")
        after.commit()
        assert sub.is_serializable()
        assert sub.avoids_cascading_aborts()

    def test_non_durable_subsystem_rejects_crash(self):
        sub = TransactionalSubsystem("s")
        with pytest.raises(SubsystemError):
            sub.simulate_crash_and_recover()

    def test_crashed_handles_are_dead(self):
        from repro.errors import TransactionAborted

        sub = TransactionalSubsystem("s", durable=True)
        doomed = sub.begin()
        doomed.write("a", lambda old: 1)
        sub.simulate_crash_and_recover()
        with pytest.raises(TransactionAborted):
            doomed.write("a", lambda old: 2)


@settings(max_examples=40, deadline=None)
@given(
    script=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),  # transaction
            st.sampled_from(["w", "c"]),            # op
            st.sampled_from(["x", "y"]),            # key
        ),
        min_size=1,
        max_size=20,
    ),
    crash_at=st.integers(min_value=0, max_value=20),
)
def test_property_crash_preserves_exactly_committed_effects(
    script, crash_at
):
    """After a crash, each counter equals its committed increments."""
    sub = TransactionalSubsystem("prop", durable=True)
    txns = {i: sub.begin(timestamp=i + 1) for i in range(3)}
    committed_increments = {"x": 0, "y": 0}
    pending: dict[int, dict[str, int]] = {i: {"x": 0, "y": 0}
                                          for i in range(3)}
    for step, (index, op, key) in enumerate(script):
        if step == crash_at:
            break
        txn = txns[index]
        if txn.state.value != "active":
            continue
        try:
            if op == "w":
                txn.write(key, lambda old: (old or 0) + 1)
                pending[index][key] += 1
            else:
                txn.commit()
                for k, count in pending[index].items():
                    committed_increments[k] += count
                pending[index] = {"x": 0, "y": 0}
        except (SubsystemWouldBlock, DataDeadlockAvoided):
            txn.abort()
            pending[index] = {"x": 0, "y": 0}
    sub.simulate_crash_and_recover()
    for key, expected in committed_increments.items():
        assert sub.store.read(key) == expected
    assert sub.is_serializable()
