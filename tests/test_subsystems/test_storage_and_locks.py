"""Unit tests for the record store and the data-level lock manager."""

import pytest

from repro.errors import DataDeadlockAvoided, SubsystemWouldBlock
from repro.subsystems.lock_manager import DataLockManager, DataLockMode
from repro.subsystems.storage import RecordStore


class TestRecordStore:
    def test_default_value(self):
        store = RecordStore()
        assert store.read("missing") == 0

    def test_custom_default(self):
        store = RecordStore(default=None)
        assert store.read("missing") is None

    def test_write_returns_previous(self):
        store = RecordStore()
        assert store.write("k", 5) == 0
        assert store.write("k", 7) == 5
        assert store.read("k") == 7

    def test_delete_restores_default(self):
        store = RecordStore()
        store.write("k", 1)
        store.delete("k")
        assert store.read("k") == 0
        assert "k" not in store

    def test_snapshot_is_a_copy(self):
        store = RecordStore()
        store.write("k", 1)
        snap = store.snapshot()
        snap["k"] = 99
        assert store.read("k") == 1

    def test_len_and_contains(self):
        store = RecordStore()
        store.write("a", 1)
        store.write("b", 2)
        assert len(store) == 2
        assert "a" in store


class TestDataLockManager:
    def test_shared_locks_coexist(self):
        locks = DataLockManager()
        locks.acquire(1, 1, "k", DataLockMode.SHARED)
        locks.acquire(2, 2, "k", DataLockMode.SHARED)
        assert set(locks.holders("k")) == {1, 2}

    def test_exclusive_blocks_shared(self):
        locks = DataLockManager()
        locks.acquire(1, 1, "k", DataLockMode.EXCLUSIVE)
        with pytest.raises(DataDeadlockAvoided):
            # Requester 2 is younger than holder 1 -> dies.
            locks.acquire(2, 2, "k", DataLockMode.SHARED)

    def test_wait_die_older_requester_waits(self):
        locks = DataLockManager()
        locks.acquire(2, 2, "k", DataLockMode.EXCLUSIVE)
        with pytest.raises(SubsystemWouldBlock) as exc:
            locks.acquire(1, 1, "k", DataLockMode.EXCLUSIVE)
        assert exc.value.holders == frozenset({2})

    def test_reentrant_acquisition(self):
        locks = DataLockManager()
        locks.acquire(1, 1, "k", DataLockMode.SHARED)
        locks.acquire(1, 1, "k", DataLockMode.SHARED)
        assert locks.lock_count == 1

    def test_upgrade_own_lock(self):
        locks = DataLockManager()
        locks.acquire(1, 1, "k", DataLockMode.SHARED)
        locks.acquire(1, 1, "k", DataLockMode.EXCLUSIVE)
        assert locks.holders("k")[1] is DataLockMode.EXCLUSIVE

    def test_upgrade_blocked_by_other_reader(self):
        locks = DataLockManager()
        locks.acquire(1, 1, "k", DataLockMode.SHARED)
        locks.acquire(2, 2, "k", DataLockMode.SHARED)
        with pytest.raises(SubsystemWouldBlock):
            locks.acquire(1, 1, "k", DataLockMode.EXCLUSIVE)

    def test_exclusive_holder_keeps_strength(self):
        locks = DataLockManager()
        locks.acquire(1, 1, "k", DataLockMode.EXCLUSIVE)
        locks.acquire(1, 1, "k", DataLockMode.SHARED)
        assert locks.holders("k")[1] is DataLockMode.EXCLUSIVE

    def test_release_all(self):
        locks = DataLockManager()
        locks.acquire(1, 1, "a", DataLockMode.SHARED)
        locks.acquire(1, 1, "b", DataLockMode.EXCLUSIVE)
        assert locks.held_by(1) == {"a", "b"}
        locks.release_all(1)
        assert locks.held_by(1) == set()
        assert locks.lock_count == 0

    def test_release_unblocks(self):
        locks = DataLockManager()
        locks.acquire(2, 2, "k", DataLockMode.EXCLUSIVE)
        locks.release_all(2)
        locks.acquire(1, 1, "k", DataLockMode.EXCLUSIVE)
        assert set(locks.holders("k")) == {1}
