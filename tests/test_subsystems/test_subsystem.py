"""Integration + property tests for the transactional subsystems.

The paper's bottom layer must provide serializable (CPSR) and
cascade-free (ACA) executions; these tests drive interleaved stepwise
transactions against a subsystem and verify both guarantees, including a
hypothesis property over random interleavings.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    DataDeadlockAvoided,
    SubsystemError,
    SubsystemWouldBlock,
)
from repro.subsystems.programs import (
    Operation,
    TransactionProgram,
    inverse_program,
)
from repro.subsystems.subsystem import SubsystemPool, TransactionalSubsystem


class TestAtomicExecution:
    def test_execute_atomic_commits(self):
        sub = TransactionalSubsystem("s")
        program = TransactionProgram(
            "inc", (Operation.write("k"), Operation.read("k"))
        )
        results = sub.execute_atomic(program)
        assert results == [1]
        assert sub.committed_count == 1

    def test_execute_activity_via_catalog(self):
        sub = TransactionalSubsystem("s")
        sub.register_program(
            "deposit", TransactionProgram("deposit", (Operation.write("b"),))
        )
        sub.execute_activity("deposit")
        sub.execute_activity("deposit")
        assert sub.store.read("b") == 2

    def test_duplicate_catalog_entry_rejected(self):
        sub = TransactionalSubsystem("s")
        program = TransactionProgram("p", (Operation.write("k"),))
        sub.register_program("a", program)
        with pytest.raises(SubsystemError):
            sub.register_program("a", program)

    def test_unknown_activity_rejected(self):
        sub = TransactionalSubsystem("s")
        with pytest.raises(SubsystemError):
            sub.execute_activity("ghost")


class TestInversePrograms:
    def test_inverse_undoes_increment(self):
        sub = TransactionalSubsystem("s")
        program = TransactionProgram("inc", (Operation.write("k"),))
        inverse = inverse_program(program)
        sub.execute_atomic(program)
        sub.execute_atomic(inverse)
        assert sub.store.read("k") == 0

    def test_inverse_drops_reads(self):
        program = TransactionProgram(
            "ro", (Operation.read("a"), Operation.write("b"))
        )
        inverse = inverse_program(program)
        assert inverse.read_set == frozenset()
        assert inverse.write_set == {"b"}

    def test_conflicts_with(self):
        writer = TransactionProgram("w", (Operation.write("k"),))
        reader = TransactionProgram("r", (Operation.read("k"),))
        bystander = TransactionProgram("b", (Operation.read("m"),))
        assert writer.conflicts_with(reader)
        assert not reader.conflicts_with(bystander)
        assert not reader.conflicts_with(reader)


class TestInterleavedGuarantees:
    def test_interleaving_is_serializable(self):
        sub = TransactionalSubsystem("s")
        t1 = sub.begin(timestamp=1)
        t2 = sub.begin(timestamp=2)
        t1.write("a", lambda old: (old or 0) + 1)
        t2.write("b", lambda old: (old or 0) + 1)
        t1.read("c")
        t2.read("d")
        t1.commit()
        t2.commit()
        assert sub.is_serializable()
        assert sub.avoids_cascading_aborts()

    def test_conflicting_access_blocks(self):
        sub = TransactionalSubsystem("s")
        t1 = sub.begin(timestamp=1)
        t2 = sub.begin(timestamp=2)
        t1.write("k", lambda old: 1)
        with pytest.raises(DataDeadlockAvoided):
            t2.read("k")  # younger -> dies

    def test_older_requester_waits(self):
        sub = TransactionalSubsystem("s")
        t2 = sub.begin(timestamp=2)
        t1 = sub.begin(timestamp=1)
        t2.write("k", lambda old: 1)
        with pytest.raises(SubsystemWouldBlock):
            t1.read("k")
        t2.commit()
        assert t1.read("k") == 1

    def test_aborted_writer_leaves_no_trace_for_readers(self):
        sub = TransactionalSubsystem("s")
        t1 = sub.begin(timestamp=1)
        t1.write("k", lambda old: 77)
        t1.abort()
        t2 = sub.begin(timestamp=2)
        assert t2.read("k") == 0
        t2.commit()
        assert sub.avoids_cascading_aborts()


class TestPool:
    def test_get_or_create(self):
        pool = SubsystemPool()
        first = pool.get_or_create("a")
        again = pool.get_or_create("a")
        assert first is again
        assert len(pool) == 1

    def test_duplicate_create_rejected(self):
        pool = SubsystemPool()
        pool.create("a")
        with pytest.raises(SubsystemError):
            pool.create("a")

    def test_unknown_get_rejected(self):
        pool = SubsystemPool()
        with pytest.raises(SubsystemError):
            pool.get("ghost")


@settings(max_examples=40, deadline=None)
@given(
    script=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),   # transaction index
            st.sampled_from(["r", "w", "c"]),        # operation
            st.sampled_from(["x", "y", "z"]),        # key
        ),
        min_size=1,
        max_size=24,
    )
)
def test_property_random_interleavings_are_cpsr_and_aca(script):
    """Any stepwise interleaving the lock manager admits is CPSR + ACA.

    Blocked or died operations abort the transaction (wait-die), which
    is a legal subsystem outcome; the committed projection must always
    be serializable and cascade-free.
    """
    sub = TransactionalSubsystem("prop")
    txns = {i: sub.begin(timestamp=i + 1) for i in range(3)}
    dead: set[int] = set()
    for index, op, key in script:
        txn = txns[index]
        if index in dead or txn.state.value != "active":
            continue
        try:
            if op == "r":
                txn.read(key)
            elif op == "w":
                txn.write(key, lambda old: (old or 0) + 1)
            else:
                txn.commit()
        except (SubsystemWouldBlock, DataDeadlockAvoided):
            txn.abort()
            dead.add(index)
    for index, txn in txns.items():
        if txn.state.value == "active":
            txn.abort()
    assert sub.is_serializable()
    assert sub.avoids_cascading_aborts()
