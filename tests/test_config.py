"""Tests for the consolidated REPRO_* knob registry."""

import pytest

from repro import config as repro_config


class TestResolution:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert repro_config.workers() == 0
        assert repro_config.source("workers") == "default"

    def test_env_wins_over_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert repro_config.workers() == 3
        assert repro_config.source("workers") == "env"

    def test_override_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert repro_config.workers(5) == 5
        assert repro_config.source("workers", 5) == "override"

    def test_floor_clamps_env_and_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_K", "-4")
        assert repro_config.batch_k() == 1
        assert repro_config.batch_k(-2) == 1

    def test_unknown_knob_raises(self):
        with pytest.raises(KeyError):
            repro_config.resolve("no-such-knob")


class TestParallelFanout:
    def test_empty_string_means_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_FANOUT", "")
        assert repro_config.parallel_fanout() is None

    def test_value_clamped_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_FANOUT", "0")
        assert repro_config.parallel_fanout() == 1
        monkeypatch.setenv("REPRO_PARALLEL_FANOUT", "7")
        assert repro_config.parallel_fanout() == 7

    def test_unset_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_FANOUT", raising=False)
        assert repro_config.parallel_fanout() is None


class TestServeKnobs:
    def test_host_is_string(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_HOST", raising=False)
        assert repro_config.serve_host() == "127.0.0.1"
        monkeypatch.setenv("REPRO_SERVE_HOST", "0.0.0.0")
        assert repro_config.serve_host() == "0.0.0.0"

    def test_port_and_backlog(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_PORT", raising=False)
        assert repro_config.serve_port() == 7453
        assert repro_config.serve_port(0) == 0
        monkeypatch.setenv("REPRO_SERVE_BACKLOG", "9")
        assert repro_config.serve_backlog() == 9


class TestDescribe:
    def test_every_knob_described(self):
        rows = repro_config.describe()
        names = {row["knob"] for row in rows}
        assert names == set(repro_config.KNOBS)
        for row in rows:
            assert row["source"] in ("default", "env")
            assert row["description"]
            assert row["env"].startswith("REPRO_")


class TestConsumers:
    """The historical inline readers now route through the registry."""

    def test_manager_config_defaults_from_env(self, monkeypatch):
        from repro.scheduler.manager import ManagerConfig

        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_BATCH_K", "4")
        monkeypatch.setenv("REPRO_AUDIT_EVERY", "8")
        config = ManagerConfig()
        assert config.workers == 2
        assert config.batch_k == 4
        assert config.audit_every == 8

    def test_seed_worker_resolution(self, monkeypatch):
        from repro.sim.runner import _resolve_workers

        monkeypatch.setenv("REPRO_SEED_WORKERS", "4")
        assert _resolve_workers(None, n_jobs=8) == 4
        # Explicit argument beats the environment.
        assert _resolve_workers(2, n_jobs=8) == 2
        # Clamped to the job count; zero expands to the core count.
        assert _resolve_workers(None, n_jobs=2) == 2
        monkeypatch.setenv("REPRO_SEED_WORKERS", "")
        assert _resolve_workers(None, n_jobs=8) == 1

    def test_parallel_manager_reads_fanout(self, monkeypatch):
        from repro.scheduler.manager import ManagerConfig, make_manager
        from repro.sim.runner import make_protocol
        from repro.sim.workload import WorkloadSpec, build_workload

        monkeypatch.setenv("REPRO_PARALLEL_FANOUT", "5")
        workload = build_workload(WorkloadSpec(n_processes=2, seed=0))
        manager = make_manager(
            make_protocol("process-locking", workload),
            subsystems=workload.make_subsystems(),
            config=ManagerConfig(workers=2),
        )
        try:
            assert manager._fanout_threshold == 5
        finally:
            manager.close()
