"""Chaos harness: campaigns, acceptance checks, CLI determinism."""

from __future__ import annotations

from repro import cli
from repro.faults.harness import (
    default_plans,
    default_workloads,
    run_campaign,
    run_chaos,
)
from repro.faults.plan import FaultPlan, ManagerCrash
from repro.sim.workload import WorkloadSpec, build_workload


class TestCampaign:
    def test_full_campaign_passes_every_acceptance_check(self):
        report = run_campaign(seed=7)
        assert len(report.runs) >= 50
        assert report.ok, [
            (r.plan, r.workload, r.protocol, r.failures)
            for r in report.failed
        ]
        counts = report.counts()
        # The campaign must actually exercise every channel.
        assert counts["injected"] > 0
        assert counts["retries"] > 0
        assert counts["recoveries"] > 0

    def test_quick_campaign_shape(self):
        report = run_campaign(seed=7, quick=True)
        plans = {r.plan for r in report.runs}
        workloads = {r.workload for r in report.runs}
        assert plans == {p.name for p in default_plans(quick=True)}
        assert workloads == set(default_workloads(7, quick=True))
        assert report.ok

    def test_paired_campaigns_are_byte_identical(self, uid_floor):
        uid_floor.pin()
        first = run_campaign(seed=3, quick=True)
        uid_floor.repin()
        second = run_campaign(seed=3, quick=True)
        assert [r.schedule_canonical for r in first.runs] == [
            r.schedule_canonical for r in second.runs
        ]
        assert [r.trace_digest for r in first.runs] == [
            r.trace_digest for r in second.runs
        ]

    def test_different_seeds_diverge(self, uid_floor):
        uid_floor.pin()
        first = run_campaign(seed=3, quick=True)
        uid_floor.repin()
        second = run_campaign(seed=4, quick=True)
        assert [r.trace_digest for r in first.runs] != [
            r.trace_digest for r in second.runs
        ]


class TestRecoveredRunAccounting:
    def test_recovered_run_merges_incarnation_counters(self):
        workload = build_workload(WorkloadSpec(n_processes=5, seed=3))
        plan = FaultPlan(
            name="mc", manager_crashes=(ManagerCrash(at_event=20),)
        )
        report = run_chaos(
            workload, "process-locking", plan, seed=11
        )
        assert report.ok, report.failures
        assert report.incarnations == 2
        assert report.metrics.fault_recoveries == 1
        # Merged submission counter reflects the real population, not
        # the double-counted re-adoptions of the second incarnation.
        assert report.metrics.submitted == 5


class TestCli:
    def test_chaos_verb_exits_zero_on_green_campaign(self, capsys):
        assert cli.main(["chaos", "--quick", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "chaos campaign (seed 7)" in out
        assert "runs passed" in out

    def test_chaos_dump_schedules_prints_canonical_plans(self, capsys):
        code = cli.main(
            ["chaos", "--quick", "--seed", "7", "--dump-schedules"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for plan in default_plans(quick=True):
            # canonical() emits compact separators: no space after ':'.
            assert f'"plan":"{plan.name}"' in out
