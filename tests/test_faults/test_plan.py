"""Fault-plan compilation: validation, ordering, determinism."""

from __future__ import annotations

import pytest

from repro.errors import SchedulerError
from repro.faults.plan import (
    ActivityFailures,
    FaultPlan,
    InjectedLatency,
    ManagerCrash,
    RetrySpec,
    SubsystemCrash,
    SubsystemOutage,
    compile_plan,
)


def full_plan() -> FaultPlan:
    return FaultPlan(
        name="everything",
        failures=ActivityFailures(rate_scale=2.0, transient_prob=0.3),
        outages=(
            SubsystemOutage("sub1", at_event=50, duration=10.0),
            SubsystemOutage("sub0", at_event=10, duration=5.0),
        ),
        subsystem_crashes=(SubsystemCrash("sub0", at_event=30),),
        manager_crashes=(ManagerCrash(at_event=10),),
        latency=InjectedLatency(extra=1.0, jitter=0.5),
        retry=RetrySpec(kind="exponential", max_attempts=4),
    )


class TestCompilation:
    def test_injections_sorted_by_event_then_plan_order(self):
        schedule = compile_plan(full_plan(), seed=3)
        indexed = [
            (inj.at_event, inj.kind) for inj in schedule.injections
        ]
        assert indexed == [
            (10, "outage"),          # plan order 1 (declared second)
            (10, "manager-crash"),   # plan order 3
            (30, "subsystem-crash"),
            (50, "outage"),
        ]
        # Within one event index, plan declaration order is the
        # tie-break: the outage is declared before the manager crash.
        at_ten = [i for i in schedule.injections if i.at_event == 10]
        assert at_ten[0].order < at_ten[1].order

    def test_canonical_is_byte_stable(self):
        first = compile_plan(full_plan(), seed=9).canonical()
        second = compile_plan(full_plan(), seed=9).canonical()
        assert first == second

    def test_canonical_distinguishes_seeds_and_plans(self):
        base = compile_plan(full_plan(), seed=1).canonical()
        assert compile_plan(full_plan(), seed=2).canonical() != base
        renamed = FaultPlan(name="other")
        assert compile_plan(renamed, seed=1).canonical() != base

    def test_stream_is_label_and_seed_deterministic(self):
        schedule = compile_plan(full_plan(), seed=5)
        again = compile_plan(full_plan(), seed=5)
        assert (
            schedule.stream("fail:1:0:2:act00").random()
            == again.stream("fail:1:0:2:act00").random()
        )
        assert (
            schedule.stream("fail:1:0:2:act00").random()
            != schedule.stream("fail:1:0:3:act00").random()
        )


class TestValidation:
    def test_negative_event_index_rejected(self):
        plan = FaultPlan(
            name="bad", manager_crashes=(ManagerCrash(at_event=-1),)
        )
        with pytest.raises(SchedulerError):
            compile_plan(plan, seed=0)

    def test_nonpositive_outage_duration_rejected(self):
        plan = FaultPlan(
            name="bad",
            outages=(
                SubsystemOutage("sub0", at_event=5, duration=0.0),
            ),
        )
        with pytest.raises(SchedulerError):
            compile_plan(plan, seed=0)

    def test_failure_layer_subsystem_scoping(self):
        scoped = ActivityFailures(subsystems=("sub0",))
        assert scoped.applies_to("sub0")
        assert not scoped.applies_to("sub1")
        assert ActivityFailures().applies_to("anything")
