"""Correlated outages: validation, staggered windows, determinism."""

from __future__ import annotations

import json

import pytest

from repro.errors import SchedulerError
from repro.faults.harness import run_chaos
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CorrelatedOutage,
    FaultPlan,
    InjectedLatency,
    ManagerCrash,
    RetrySpec,
    SubsystemOutage,
    compile_plan,
)
from repro.sim.workload import WorkloadSpec, build_workload

#: Retriable-heavy workload: outage windows actually get hit.
SPEC = WorkloadSpec(
    n_processes=6,
    pivot_probability=1.0,
    alternative_count=0,
    retriable_tail=2,
    arrival_spacing=1.0,
    seed=5,
)


def run_plan(plan, seed=9):
    workload = build_workload(SPEC)
    injector = FaultInjector(
        workload,
        "process-locking",
        compile_plan(plan, seed),
        seed=seed,
    )
    return injector.run()


class TestValidation:
    def check(self, match, **kwargs):
        plan = FaultPlan(name="bad", **kwargs)
        with pytest.raises(SchedulerError, match=match):
            plan.validate()

    def test_empty_group_rejected(self):
        self.check(
            "names no subsystems",
            correlated_outages=(
                CorrelatedOutage((), at_event=5, duration=1.0),
            ),
        )

    def test_duplicate_member_rejected(self):
        self.check(
            "lists a subsystem twice",
            correlated_outages=(
                CorrelatedOutage(
                    ("a", "a"), at_event=5, duration=1.0
                ),
            ),
        )

    def test_nonpositive_duration_rejected(self):
        self.check(
            "duration must be > 0",
            correlated_outages=(
                CorrelatedOutage(("a",), at_event=5, duration=0.0),
            ),
        )

    def test_negative_stagger_rejected(self):
        self.check(
            "stagger must be >= 0",
            correlated_outages=(
                CorrelatedOutage(
                    ("a",), at_event=5, duration=1.0, stagger=-1.0
                ),
            ),
        )

    def test_overlapping_windows_across_kinds_rejected(self):
        self.check(
            "overlapping outage windows on 'a' at event 5",
            outages=(SubsystemOutage("a", at_event=5, duration=2.0),),
            correlated_outages=(
                CorrelatedOutage(
                    ("a", "b"), at_event=5, duration=1.0
                ),
            ),
        )

    def test_duplicate_plain_outages_rejected(self):
        self.check(
            "overlapping outage windows",
            outages=(
                SubsystemOutage("a", at_event=7, duration=2.0),
                SubsystemOutage("a", at_event=7, duration=3.0),
            ),
        )

    def test_negative_latency_rejected(self):
        self.check(
            "latency extra must be >= 0",
            latency=InjectedLatency(extra=-0.5),
        )
        self.check(
            "latency jitter must be >= 0",
            latency=InjectedLatency(jitter=-0.5),
        )

    def test_negative_event_index_rejected(self):
        self.check(
            "negative event index -1 on ManagerCrash",
            manager_crashes=(ManagerCrash(at_event=-1),),
        )

    def test_injection_past_horizon_rejected(self):
        self.check(
            r"ManagerCrash at event 500 lies past the plan horizon",
            manager_crashes=(ManagerCrash(at_event=500),),
            horizon=100,
        )

    def test_negative_horizon_rejected(self):
        self.check("horizon must be >= 0", horizon=-1)

    def test_horizon_boundary_is_inclusive(self):
        FaultPlan(
            name="edge",
            manager_crashes=(ManagerCrash(at_event=100),),
            horizon=100,
        ).validate()

    def test_compile_runs_validate(self):
        plan = FaultPlan(
            name="bad",
            correlated_outages=(
                CorrelatedOutage((), at_event=5, duration=1.0),
            ),
        )
        with pytest.raises(SchedulerError):
            compile_plan(plan, 0)


class TestCorrelatedInjection:
    def plan(self, stagger=0.0):
        return FaultPlan(
            name="corr",
            correlated_outages=(
                CorrelatedOutage(
                    ("sub0", "sub1"),
                    at_event=10,
                    duration=20.0,
                    stagger=stagger,
                ),
            ),
            retry=RetrySpec(kind="fixed", base_delay=2.0),
        )

    def test_counts_one_group_and_member_outages(self):
        chaos = run_plan(self.plan())
        assert chaos.counters.correlated_outages == 1
        assert chaos.counters.outages_started == 2
        assert chaos.result.records

    def test_stagger_offsets_member_windows(self):
        workload = build_workload(SPEC)
        injector = FaultInjector(
            workload,
            "process-locking",
            compile_plan(self.plan(stagger=3.0), 9),
            seed=9,
        )
        injector.run()
        windows = injector._outages
        (start0, _), = windows["sub0"]
        (start1, _), = windows["sub1"]
        assert start1 - start0 == pytest.approx(3.0)

    def test_correlated_outage_traces_one_event(self):
        from repro.obs import Tracer

        workload = build_workload(SPEC)
        tracer = Tracer()
        injector = FaultInjector(
            workload,
            "process-locking",
            compile_plan(self.plan(stagger=1.0), 9),
            seed=9,
            tracer=tracer,
        )
        injector.run()
        records = [
            record
            for record in tracer.records()
            if record["kind"] == "fault.inject"
            and record["channel"] == "correlated-outage"
        ]
        assert len(records) == 1
        detail = records[0]["detail"]
        assert detail["subsystems"] == ["sub0", "sub1"]
        assert detail["stagger"] == 1.0

    def test_runs_are_deterministic(self, uid_floor):
        uid_floor.pin()
        first = run_plan(self.plan(stagger=2.0))
        uid_floor.repin()
        second = run_plan(self.plan(stagger=2.0))
        from repro.faults.harness import canonical_trace

        assert canonical_trace(
            first.result.trace.events
        ) == canonical_trace(second.result.trace.events)

    def test_canonical_round_trips_group_fields(self):
        schedule = compile_plan(self.plan(stagger=2.5), 4)
        payload = json.loads(schedule.canonical())
        (injection,) = payload["injections"]
        assert injection["kind"] == "correlated-outage"
        assert injection["spec"]["subsystems"] == ["sub0", "sub1"]
        assert injection["spec"]["stagger"] == 2.5
        assert (
            compile_plan(self.plan(stagger=2.5), 4).canonical()
            == schedule.canonical()
        )

    def test_full_invariant_battery_under_correlated_outage(self):
        workload = build_workload(SPEC)
        report = run_chaos(
            workload,
            "process-locking",
            self.plan(stagger=2.0),
            seed=9,
            workload_name="corr",
        )
        assert report.ok, report.failures
