"""Soak campaign and the traced retry-budget-exhausted satellite."""

from __future__ import annotations

from repro.faults.plan import (
    ActivityFailures,
    FaultPlan,
    RetrySpec,
    compile_plan,
)
from repro.faults.injector import FaultInjector
from repro.faults.soak import SoakPlan, SoakReport, run_soak
from repro.obs import Tracer, explain_process
from repro.sim.workload import WorkloadSpec, build_workload

#: Small but real: three rounds cover all three fault families.
SMALL = SoakPlan(seed=7, rounds=3, processes=8, min_events=150)


class TestSoak:
    def test_small_soak_passes_every_round(self):
        report = run_soak(SMALL)
        assert len(report.runs) == SMALL.rounds
        assert all(run.ok for run in report.runs), [
            run.failures for run in report.runs
        ]
        assert report.events_total >= SMALL.min_events
        assert report.ok

    def test_event_floor_gates_ok(self):
        strict = SoakPlan(
            seed=7, rounds=3, processes=8, min_events=10**9
        )
        report = run_soak(strict)
        assert all(run.ok for run in report.runs)
        assert not report.ok

    def test_rounds_carry_fresh_resilience_layers(self):
        report = run_soak(SMALL)
        assert len(report.resilience_stats) == SMALL.rounds
        assert all(
            stats is not None for stats in report.resilience_stats
        )
        # Storm rounds open breakers; the stats prove the layer ran.
        assert any(
            stats.breaker_opens > 0
            for stats in report.resilience_stats
        )

    def test_resilience_can_be_disabled(self):
        import dataclasses

        plan = dataclasses.replace(SMALL, resilience=False)
        report = run_soak(plan)
        assert all(
            stats is None for stats in report.resilience_stats
        )
        assert all(run.ok for run in report.runs)
        assert all(
            run.admissions_deferred == 0 for run in report.runs
        )

    def test_soak_is_deterministic(self, uid_floor):
        def digests(report: SoakReport):
            return [run.trace_digest for run in report.runs]

        uid_floor.pin()
        first = run_soak(SMALL)
        uid_floor.repin()
        second = run_soak(SMALL)
        assert digests(first) == digests(second)
        assert first.counts() == second.counts()

    def test_counts_aggregate_run_fields(self):
        report = run_soak(SMALL)
        counts = report.counts()
        assert counts["rounds"] == SMALL.rounds
        assert counts["events"] == report.events_total
        assert counts["events"] == sum(
            run.events for run in report.runs
        )
        assert counts["admissions_deferred"] == sum(
            run.admissions_deferred for run in report.runs
        )


class TestRetryBudgetExhaustedEvent:
    def chaos(self, tracer=None):
        # Every retriable attempt fails transiently; a budget of 2
        # guarantees exhaustion on every retriable activity.
        spec = WorkloadSpec(
            n_processes=3,
            pivot_probability=1.0,
            alternative_count=0,
            retriable_tail=2,
            seed=5,
        )
        plan = FaultPlan(
            name="exhaust",
            failures=ActivityFailures(transient_prob=1.0),
            retry=RetrySpec(
                kind="fixed", base_delay=1.0, max_attempts=2
            ),
        )
        workload = build_workload(spec)
        injector = FaultInjector(
            workload,
            "process-locking",
            compile_plan(plan, 5),
            seed=5,
            tracer=tracer,
        )
        return injector.run()

    def test_counter_and_event_fire_together(self):
        tracer = Tracer()
        chaos = self.chaos(tracer)
        records = [
            record
            for record in tracer.records()
            if record["kind"] == "retry.budget_exhausted"
        ]
        assert chaos.counters.retry_budget_exhausted > 0
        assert len(records) == chaos.counters.retry_budget_exhausted
        sample = records[0]
        assert sample["attempts"] == 2
        assert sample["activity"]
        assert sample["subsystem"]

    def test_explain_narrates_the_exhaustion(self):
        tracer = Tracer()
        self.chaos(tracer)
        records = tracer.records()
        pid = next(
            record["pid"]
            for record in records
            if record["kind"] == "retry.budget_exhausted"
        )
        text = explain_process(records, pid)
        assert "retry budget exhausted" in text
        assert "treated as success" in text
