"""FaultInjector behaviour: each injection channel, end to end."""

from __future__ import annotations

from repro.faults.harness import canonical_trace
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ActivityFailures,
    FaultPlan,
    InjectedLatency,
    ManagerCrash,
    RetrySpec,
    SubsystemCrash,
    SubsystemOutage,
    compile_plan,
)
from repro.sim.workload import WorkloadSpec, build_workload

#: Pivot always taken, no alternatives: the retriable tail always runs.
RETRIABLE_SPEC = WorkloadSpec(
    n_processes=4,
    pivot_probability=1.0,
    alternative_count=0,
    retriable_tail=2,
    seed=1,
)
PLAIN_SPEC = WorkloadSpec(n_processes=5, seed=3)
GROUNDED_SPEC = WorkloadSpec(n_processes=5, grounded=True, seed=2)


def run_plan(spec, plan, protocol="process-locking", seed=11):
    workload = build_workload(spec)
    injector = FaultInjector(
        workload, protocol, compile_plan(plan, seed), seed=seed
    )
    return injector.run()


class TestFailureInjection:
    def test_scaled_failures_fire_and_run_terminates(self):
        plan = FaultPlan(
            name="hot",
            failures=ActivityFailures(rate_scale=100.0),
        )
        chaos = run_plan(PLAIN_SPEC, plan)
        assert chaos.counters.injected_failures > 0
        # Guaranteed termination: everything still reaches a terminal
        # state despite near-certain failures.
        assert chaos.result.records

    def test_zero_scale_never_fails(self):
        plan = FaultPlan(
            name="cold", failures=ActivityFailures(rate_scale=0.0)
        )
        chaos = run_plan(PLAIN_SPEC, plan)
        assert chaos.counters.injected_failures == 0

    def test_decisions_are_paired_run_deterministic(self, uid_floor):
        plan = FaultPlan(
            name="hot",
            failures=ActivityFailures(
                rate_scale=5.0, transient_prob=0.5
            ),
        )
        uid_floor.pin()
        first = run_plan(RETRIABLE_SPEC, plan)
        uid_floor.repin()
        second = run_plan(RETRIABLE_SPEC, plan)
        assert canonical_trace(
            first.result.trace.events
        ) == canonical_trace(second.result.trace.events)
        assert first.counters == second.counters


class TestRetryBudget:
    def test_certain_transient_failure_bounded_by_budget(self):
        plan = FaultPlan(
            name="storm",
            failures=ActivityFailures(transient_prob=1.0),
            retry=RetrySpec(kind="fixed", max_attempts=3),
        )
        chaos = run_plan(RETRIABLE_SPEC, plan)
        counters = chaos.counters
        assert counters.injected_retries > 0
        # The hook answers "fail transiently" on every attempt, but the
        # budget grants only max_attempts-1 = 2 retries per execution:
        # each exhausted cycle is 3 injected answers, 2 granted retries,
        # then an intrinsic abort.  Without the budget this plan would
        # retry forever.
        assert counters.injected_retries % 3 == 0
        cycles = counters.injected_retries // 3
        assert chaos.stats.retries == 2 * cycles


class TestLatencyInjection:
    def test_latency_stretches_makespan(self, uid_floor):
        quiet = FaultPlan(name="quiet")
        slow = FaultPlan(
            name="slow", latency=InjectedLatency(extra=2.0)
        )
        uid_floor.pin()
        base = run_plan(PLAIN_SPEC, quiet)
        uid_floor.repin()
        delayed = run_plan(PLAIN_SPEC, slow)
        assert delayed.counters.latency_injections > 0
        assert delayed.makespan > base.makespan


class TestOutages:
    def test_outage_forces_retries_and_lifts(self):
        plan = FaultPlan(
            name="down",
            outages=tuple(
                SubsystemOutage(f"sub{i}", at_event=5, duration=12.0)
                for i in range(3)
            ),
            retry=RetrySpec(kind="fixed", base_delay=2.0),
        )
        chaos = run_plan(RETRIABLE_SPEC, plan)
        assert chaos.counters.outages_started == 3
        assert chaos.counters.outage_hits > 0
        # The outage window is finite, so the run still terminates.
        assert chaos.result.records


class TestManagerCrash:
    def test_crash_recovers_and_splices(self):
        plan = FaultPlan(
            name="mc", manager_crashes=(ManagerCrash(at_event=20),)
        )
        chaos = run_plan(PLAIN_SPEC, plan)
        assert chaos.incarnations == 2
        assert chaos.counters.manager_recoveries == 1
        assert chaos.splice_ok
        # Merged accounting: population from records, not the summed
        # per-incarnation submission counters.
        assert chaos.stats.submitted == len(chaos.result.records)
        assert chaos.stats.committed > 0

    def test_crash_dropped_for_protocols_without_recovery(self):
        plan = FaultPlan(
            name="mc", manager_crashes=(ManagerCrash(at_event=20),)
        )
        chaos = run_plan(PLAIN_SPEC, plan, protocol="serial")
        assert chaos.incarnations == 1
        assert chaos.counters.manager_recoveries == 0
        assert chaos.counters.dropped_injections >= 1

    def test_injections_past_the_end_are_dropped(self):
        plan = FaultPlan(
            name="late",
            manager_crashes=(ManagerCrash(at_event=10_000_000),),
        )
        chaos = run_plan(PLAIN_SPEC, plan)
        assert chaos.incarnations == 1
        assert chaos.counters.dropped_injections == 1


class TestSubsystemCrash:
    def test_wal_recovery_rolls_doomed_writes_back(self):
        plan = FaultPlan(
            name="sc",
            subsystem_crashes=(SubsystemCrash("sub0", at_event=15),),
        )
        chaos = run_plan(GROUNDED_SPEC, plan)
        assert chaos.counters.subsystem_crashes == 1
        assert len(chaos.wal_checks) == 1
        check = chaos.wal_checks[0]
        assert check.ok
        assert check.undone >= 1
        assert check.losers_after == 0
        assert check.sentinels_rolled_back

    def test_dropped_without_durable_pool(self):
        plan = FaultPlan(
            name="sc",
            subsystem_crashes=(SubsystemCrash("sub0", at_event=15),),
        )
        chaos = run_plan(PLAIN_SPEC, plan)  # no grounded pool at all
        assert chaos.counters.subsystem_crashes == 0
        assert chaos.counters.dropped_injections == 1
        assert chaos.wal_checks == []
