"""Retry/backoff policies and their Wcc accounting hooks."""

from __future__ import annotations

import pytest

from repro.activities.registry import ActivityRegistry
from repro.core.cost_based import retry_budget_wcc, retry_wcc_charge
from repro.errors import SchedulerError
from repro.faults.plan import RetrySpec
from repro.faults.retry import (
    ExponentialBackoff,
    FixedBackoff,
    JitteredBackoff,
    make_policy,
)


class TestPolicies:
    def test_fixed_backoff_is_flat(self):
        policy = FixedBackoff(base_delay=2.5, max_attempts=3)
        assert [policy.delay_for(n) for n in (1, 2, 3)] == [
            2.5, 2.5, 2.5,
        ]

    def test_exponential_backoff_doubles_and_caps(self):
        policy = ExponentialBackoff(
            base_delay=1.0, factor=2.0, max_delay=4.0, max_attempts=8
        )
        assert [policy.delay_for(n) for n in (1, 2, 3, 4, 5)] == [
            1.0, 2.0, 4.0, 4.0, 4.0,
        ]

    def test_jittered_backoff_is_seed_deterministic(self):
        a = JitteredBackoff(base_delay=1.0, jitter=0.5, seed=11)
        b = JitteredBackoff(base_delay=1.0, jitter=0.5, seed=11)
        c = JitteredBackoff(base_delay=1.0, jitter=0.5, seed=12)
        assert a.delay_for(3) == b.delay_for(3)
        assert a.delay_for(3) != c.delay_for(3)
        assert a.delay_for(3) >= ExponentialBackoff(
            base_delay=1.0
        ).delay_for(3)

    def test_validation(self):
        with pytest.raises(SchedulerError):
            FixedBackoff(base_delay=-1.0)
        with pytest.raises(SchedulerError):
            FixedBackoff(max_attempts=0)


class TestMakePolicy:
    def test_kinds_map_to_classes(self):
        assert isinstance(
            make_policy(RetrySpec(kind="fixed")), FixedBackoff
        )
        assert isinstance(
            make_policy(RetrySpec(kind="exponential")),
            ExponentialBackoff,
        )
        jittered = make_policy(
            RetrySpec(kind="jittered", jitter=0.25), seed=4
        )
        assert isinstance(jittered, JitteredBackoff)
        assert jittered.seed == 4

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchedulerError):
            make_policy(RetrySpec(kind="surprise"))

    def test_policies_are_picklable(self):
        import pickle

        policy = make_policy(
            RetrySpec(kind="jittered", max_attempts=5), seed=2
        )
        assert pickle.loads(pickle.dumps(policy)) == policy


class TestWccAccounting:
    @pytest.fixture
    def registry(self):
        reg = ActivityRegistry()
        reg.define_retriable("ship", "shop", cost=1.5)
        return reg

    def test_retry_charge_is_the_execution_cost(self, registry):
        assert retry_wcc_charge(registry, "ship") == 1.5

    def test_budget_wcc_counts_extra_attempts(self, registry):
        assert retry_budget_wcc(registry, "ship", 1) == 0.0
        assert retry_budget_wcc(registry, "ship", 4) == 4.5

    def test_budget_requires_at_least_one_attempt(self, registry):
        with pytest.raises(ValueError):
            retry_budget_wcc(registry, "ship", 0)
