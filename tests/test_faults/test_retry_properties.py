"""Property-style backoff tests: monotonicity, caps, jitter bounds.

Seeded exhaustive sweeps over a parameter grid (no hypothesis dep):
every (base, factor, cap) combination is checked over a long retry
range, which is what a property test would sample anyway.
"""

from __future__ import annotations

import itertools
import pickle
import random

from repro.faults.retry import (
    ExponentialBackoff,
    FixedBackoff,
    JitteredBackoff,
    make_policy,
)
from repro.faults.plan import RetrySpec

BASES = (0.1, 0.5, 1.0, 3.0)
FACTORS = (1.0, 1.5, 2.0, 4.0)
CAPS = (2.0, 8.0, 32.0, 100.0)
RETRIES = range(1, 40)


class TestExponentialBackoff:
    def test_monotone_nondecreasing_everywhere(self):
        for base, factor, cap in itertools.product(
            BASES, FACTORS, CAPS
        ):
            policy = ExponentialBackoff(
                base_delay=base, factor=factor, max_delay=cap
            )
            delays = [policy.delay_for(n) for n in RETRIES]
            assert delays == sorted(delays), (base, factor, cap)

    def test_capped_everywhere(self):
        for base, factor, cap in itertools.product(
            BASES, FACTORS, CAPS
        ):
            policy = ExponentialBackoff(
                base_delay=base, factor=factor, max_delay=cap
            )
            for n in RETRIES:
                assert policy.delay_for(n) <= cap

    def test_first_retry_pays_the_base_delay(self):
        for base, factor, cap in itertools.product(
            BASES, FACTORS, CAPS
        ):
            policy = ExponentialBackoff(
                base_delay=base, factor=factor, max_delay=cap
            )
            assert policy.delay_for(1) == min(base, cap)

    def test_reaches_the_cap(self):
        policy = ExponentialBackoff(
            base_delay=1.0, factor=2.0, max_delay=32.0
        )
        assert policy.delay_for(10) == 32.0


class TestJitteredBackoff:
    def test_jitter_bounded_above_the_exponential_floor(self):
        for jitter in (0.1, 0.5, 2.0):
            policy = JitteredBackoff(
                base_delay=1.0, jitter=jitter, seed=13
            )
            floor = ExponentialBackoff(base_delay=1.0)
            for n in RETRIES:
                delta = policy.delay_for(n) - floor.delay_for(n)
                assert 0.0 <= delta < jitter

    def test_same_seed_same_delays(self):
        first = JitteredBackoff(seed=42)
        second = JitteredBackoff(seed=42)
        assert [first.delay_for(n) for n in RETRIES] == [
            second.delay_for(n) for n in RETRIES
        ]

    def test_different_seeds_differ(self):
        first = JitteredBackoff(seed=1)
        second = JitteredBackoff(seed=2)
        assert [first.delay_for(n) for n in RETRIES] != [
            second.delay_for(n) for n in RETRIES
        ]

    def test_pickle_round_trip_is_delay_identical(self):
        policy = JitteredBackoff(
            base_delay=0.5, factor=3.0, max_delay=20.0,
            jitter=0.7, seed=99,
        )
        clone = pickle.loads(pickle.dumps(policy))
        assert clone == policy
        assert [clone.delay_for(n) for n in RETRIES] == [
            policy.delay_for(n) for n in RETRIES
        ]

    def test_independent_of_global_rng_state(self):
        """Jitter derives from the policy seed, never shared RNG state.

        The manager's RNG and ``random`` module state must not leak in:
        delays are a pure function of ``(policy, retry_number)``.
        """
        policy = JitteredBackoff(seed=7)
        random.seed(0)
        first = [policy.delay_for(n) for n in RETRIES]
        random.seed(12345)
        random.random()
        second = [policy.delay_for(n) for n in RETRIES]
        assert first == second

    def test_zero_jitter_degenerates_to_exponential(self):
        policy = JitteredBackoff(jitter=0.0, seed=5)
        floor = ExponentialBackoff()
        assert [policy.delay_for(n) for n in RETRIES] == [
            floor.delay_for(n) for n in RETRIES
        ]


class TestMakePolicy:
    def test_round_trips_spec_fields(self):
        spec = RetrySpec(
            kind="jittered", base_delay=0.25, factor=3.0,
            max_delay=12.0, jitter=0.9, max_attempts=6,
        )
        policy = make_policy(spec, seed=21)
        assert isinstance(policy, JitteredBackoff)
        assert policy.max_attempts == 6
        assert policy.seed == 21
        fixed = make_policy(RetrySpec(kind="fixed", base_delay=2.0))
        assert isinstance(fixed, FixedBackoff)
        assert fixed.delay_for(5) == 2.0
