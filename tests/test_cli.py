"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--protocol", "bogus"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "process-locking"
        assert args.processes == 8


class TestCommands:
    def test_exhibits(self, capsys):
        assert main(["exhibits"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out
        assert "Figure 1" in out

    def test_run_with_check(self, capsys):
        code = main(
            ["run", "--processes", "4", "--density", "0.4",
             "--seed", "3", "--check"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "CT   (Theorem 1): True" in out
        assert "P-RC (Theorem 2): True" in out

    def test_run_with_trace(self, capsys):
        assert main(["run", "--processes", "2", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "observed schedule:" in out

    def test_run_grounded(self, capsys):
        assert main(
            ["run", "--processes", "4", "--grounded", "--check"]
        ) == 0

    def test_compare(self, capsys):
        code = main(
            ["compare", "--processes", "4",
             "--protocols", "serial", "process-locking"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "serial" in out
        assert "process-locking" in out

    @pytest.mark.parametrize(
        "name", ["payment", "travel", "hospital", "manufacturing"]
    )
    def test_scenarios(self, name, capsys):
        assert main(["scenario", name]) == 0
        out = capsys.readouterr().out
        assert "CT   (Theorem 1): True" in out

    def test_sweep_threshold(self, capsys):
        code = main(
            ["sweep-threshold", "--processes", "4",
             "--thresholds", "0", "inf"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Wcc* sweep" in out
        assert "inf" in out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenario", "bogus"])


class TestNewCommands:
    def test_conformance_single(self, capsys):
        assert main(["conformance", "process-locking"]) == 0
        out = capsys.readouterr().out
        assert "conformance report: process-locking" in out
        assert "FAIL" not in out

    def test_conformance_all_protocols(self, capsys):
        assert main(["conformance"]) == 0
        out = capsys.readouterr().out
        assert "osl-pure" in out
        assert "[FAIL] early-verification" in out

    def test_run_json(self, capsys):
        import json

        assert main(["run", "--processes", "3", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["protocol"] == "process-locking"

    def test_run_timeline(self, capsys):
        assert main(["run", "--processes", "3", "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out
