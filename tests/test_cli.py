"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--protocol", "bogus"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "process-locking"
        assert args.processes == 8


class TestCommands:
    def test_exhibits(self, capsys):
        assert main(["exhibits"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out
        assert "Figure 1" in out

    def test_run_with_check(self, capsys):
        code = main(
            ["run", "--processes", "4", "--density", "0.4",
             "--seed", "3", "--check"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "CT   (Theorem 1): True" in out
        assert "P-RC (Theorem 2): True" in out

    def test_run_with_trace(self, capsys):
        assert main(["run", "--processes", "2", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "observed schedule:" in out

    def test_run_grounded(self, capsys):
        assert main(
            ["run", "--processes", "4", "--grounded", "--check"]
        ) == 0

    def test_compare(self, capsys):
        code = main(
            ["compare", "--processes", "4",
             "--protocols", "serial", "process-locking"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "serial" in out
        assert "process-locking" in out

    @pytest.mark.parametrize(
        "name", ["payment", "travel", "hospital", "manufacturing"]
    )
    def test_scenarios(self, name, capsys):
        assert main(["scenario", name]) == 0
        out = capsys.readouterr().out
        assert "CT   (Theorem 1): True" in out

    def test_sweep_threshold(self, capsys):
        code = main(
            ["sweep-threshold", "--processes", "4",
             "--thresholds", "0", "inf"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Wcc* sweep" in out
        assert "inf" in out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenario", "bogus"])


class TestNewCommands:
    def test_conformance_single(self, capsys):
        assert main(["conformance", "process-locking"]) == 0
        out = capsys.readouterr().out
        assert "conformance report: process-locking" in out
        assert "FAIL" not in out

    def test_conformance_all_protocols(self, capsys):
        assert main(["conformance"]) == 0
        out = capsys.readouterr().out
        assert "osl-pure" in out
        assert "[FAIL] early-verification" in out

    def test_run_json(self, capsys):
        import json

        assert main(["run", "--processes", "3", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["protocol"] == "process-locking"

    def test_run_timeline(self, capsys):
        assert main(["run", "--processes", "3", "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out


class TestObservabilityCommands:
    def trace_dir(self, tmp_path, seed="7"):
        out = tmp_path / "trace"
        code = main(
            ["trace", "--processes", "8", "--density", "0.6",
             "--seed", seed, "--out", str(out)]
        )
        assert code == 0
        return out

    def test_trace_writes_all_artifacts(self, tmp_path, capsys):
        import json

        out = self.trace_dir(tmp_path)
        printed = capsys.readouterr().out
        assert "traced" in printed
        assert "https://ui.perfetto.dev" in printed
        for name in (
            "events.jsonl", "trace.perfetto.json", "waitfor.dot",
            "series.json",
        ):
            assert (out / name).exists()
        trace = json.loads((out / "trace.perfetto.json").read_text())
        assert trace["traceEvents"]

    def test_explain_lists_then_explains(self, tmp_path, capsys):
        out = self.trace_dir(tmp_path)
        capsys.readouterr()
        assert main(["explain", "--trace", str(out)]) == 0
        listing = capsys.readouterr().out
        assert "deferred processes" in listing
        pid = listing.split()[-1]
        assert main(["explain", pid, "--trace", str(out)]) == 0
        account = capsys.readouterr().out
        assert f"P{pid} — causal account" in account
        assert "final outcome:" in account

    def test_explain_missing_trace_exits_2(self, tmp_path, capsys):
        code = main(
            ["explain", "--trace", str(tmp_path / "nowhere")]
        )
        assert code == 2
        assert "no trace at" in capsys.readouterr().err

    def test_explain_unknown_pid_exits_2(self, tmp_path, capsys):
        out = self.trace_dir(tmp_path)
        capsys.readouterr()
        assert main(
            ["explain", "999999", "--trace", str(out)]
        ) == 2
        assert "no events" in capsys.readouterr().err

    def test_compare_json(self, capsys):
        import json

        code = main(
            ["compare", "--processes", "4", "--json",
             "--protocols", "serial", "process-locking"]
        )
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert {row["protocol"] for row in rows} == {
            "serial", "process-locking"
        }

    def test_run_trace_out(self, tmp_path, capsys):
        out = tmp_path / "run-trace"
        code = main(
            ["run", "--processes", "4", "--seed", "3",
             "--trace-out", str(out)]
        )
        assert code == 0
        assert "trace:" in capsys.readouterr().out
        assert (out / "events.jsonl").exists()

    def test_compare_trace_out_per_protocol(self, tmp_path):
        out = tmp_path / "cmp"
        code = main(
            ["compare", "--processes", "4",
             "--protocols", "serial", "s2pl",
             "--trace-out", str(out)]
        )
        assert code == 0
        for name in ("serial", "s2pl"):
            assert (out / name / "events.jsonl").exists()

    def test_chaos_json_is_machine_readable(self, capsys):
        import json

        code = main(
            ["chaos", "--quick", "--json",
             "--protocols", "process-locking"]
        )
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert code == (0 if payload["ok"] else 1)
        assert payload["counts"]["runs"] == len(payload["runs"])
        run = payload["runs"][0]
        # Raw booleans, not display strings.
        assert isinstance(run["ok"], bool)
        assert all(
            isinstance(value, bool)
            for value in run["checks"].values()
        )

    def test_soak_text_and_exit_code(self, capsys):
        code = main(
            ["soak", "--seed", "7", "--rounds", "2",
             "--processes", "6", "--min-events", "50"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "soak campaign (seed 7)" in out
        assert "2/2 rounds passed" in out

    def test_soak_json_and_failing_floor_exits_1(self, capsys):
        import json

        code = main(
            ["soak", "--seed", "7", "--rounds", "2",
             "--processes", "6", "--min-events", "999999999",
             "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["ok"] is False
        assert payload["events_total"] < payload["min_events"]
        assert len(payload["runs"]) == 2
        assert len(payload["resilience"]) == 2
        assert payload["resilience"][0] is not None

    def test_soak_no_resilience(self, capsys):
        import json

        code = main(
            ["soak", "--seed", "7", "--rounds", "2",
             "--processes", "6", "--min-events", "50",
             "--no-resilience", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["resilience"] == [None, None]


class TestServiceCommands:
    def test_config_table(self, capsys):
        assert main(["config"]) == 0
        out = capsys.readouterr().out
        assert "REPRO_* environment knobs" in out
        for env in (
            "REPRO_WORKERS", "REPRO_BATCH_K", "REPRO_AUDIT_EVERY",
            "REPRO_SEED_WORKERS", "REPRO_PARALLEL_FANOUT",
            "REPRO_SERVE_HOST", "REPRO_SERVE_PORT",
            "REPRO_SERVE_BACKLOG",
        ):
            assert env in out

    def test_config_json_reports_sources(self, capsys, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.delenv("REPRO_BATCH_K", raising=False)
        assert main(["config", "--json"]) == 0
        rows = {
            row["knob"]: row
            for row in json.loads(capsys.readouterr().out)
        }
        assert rows["workers"]["value"] == 2
        assert rows["workers"]["source"] == "env"
        assert rows["batch_k"]["source"] == "default"

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port is None
        assert args.time_scale == 0.0
        assert args.protocol == "process-locking"
        assert args.metrics_port is None

    def test_serve_metrics_port_parses(self):
        args = build_parser().parse_args(
            ["serve", "--metrics-port", "0"]
        )
        assert args.metrics_port == 0

    def test_top_parser_defaults(self):
        args = build_parser().parse_args(["top"])
        assert args.host == "127.0.0.1"
        assert args.port == 7453
        assert args.interval == 1.0
        assert args.iterations == 0
        assert args.no_clear is False

    def test_top_unreachable_service_exits_2(self, capsys):
        # Port 1 on localhost is never listening in the test sandbox.
        assert main(
            ["top", "--port", "1", "--iterations", "1"]
        ) == 2
        assert "cannot reach" in capsys.readouterr().err


class TestRenderTop:
    def _bodies(self):
        from repro.obs.metrics import EventMetrics

        m = EventMetrics()
        m.observe_latency(0.02, "committed")
        m.observe_latency(0.08, "committed")
        m.sample_gauges({"queue.bank": 2.0, "locks.bank": 1.0})
        m.breaker_state.set(2.0, ("bank",))
        stats = {
            "manager": {
                "submitted": 10, "committed": 8,
                "protocol_aborts": 1, "intrinsic_aborts": 1,
                "cancellations": 0, "resubmissions": 1, "retries": 2,
            },
            "service": {"workers": 0, "backlog": 3, "draining": False},
            "engine": {"now": 42.0, "events_processed": 500},
            "bus": {
                "published": 100, "delivered": 50, "dropped": 0,
                "subscribers": 1,
            },
        }
        return stats, {"now": 42.0, "metrics": m.registry.snapshot()}

    def test_frame_shows_throughput_latency_and_shards(self):
        from repro.analysis.top import render_top

        stats, metrics = self._bodies()
        frame = render_top(stats, metrics)
        assert "vt 42.00" in frame
        assert "submitted       10" in frame
        assert "p50" in frame and "(n=2)" in frame
        assert "!bank=open" in frame
        assert "bank: q=2 locks=1" in frame
        assert "published      100" in frame

    def test_rates_come_from_successive_polls(self):
        from repro.analysis.top import TopState, render_top

        stats, metrics = self._bodies()
        state = TopState()
        state.committed = 4.0  # previous poll saw 4 commits
        frame = render_top(stats, metrics, state, elapsed=2.0)
        assert "committed        8 (    2.0/s)" in frame
        assert state.committed == 8.0  # advanced for the next poll


class TestErrorHardening:
    def test_malformed_workers_one_line_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--workers", "banana"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "expected an integer, got 'banana'" in err

    def test_negative_workers_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--workers", "-3"])
        assert excinfo.value.code == 2
        assert "integer >= 0" in capsys.readouterr().err

    def test_zero_batch_k_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--batch-k", "0"])
        assert excinfo.value.code == 2
        assert "integer >= 1" in capsys.readouterr().err

    def test_explain_corrupt_trace_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "events.jsonl"
        bad.write_text("this is { not jsonl\n")
        assert main(["explain", "1", "--trace", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "unreadable trace" in err
        assert "Traceback" not in err
