"""Deeper fault-tolerance integration: repeated crashes, grounded
recovery, and randomly shaped programs."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.activities.commutativity import ConflictMatrix
from repro.activities.registry import ActivityRegistry
from repro.core.protocol import ProcessLockManager
from repro.process.builder import ProgramBuilder
from repro.scheduler.manager import ManagerConfig, ProcessManager
from repro.scheduler.recovery import crash, recover
from repro.sim.runner import make_protocol
from repro.sim.workload import WorkloadSpec, build_workload
from repro.theory.criteria import (
    has_correct_termination,
    is_process_recoverable,
)


class TestRepeatedCrashes:
    def test_double_crash_still_converges(self):
        workload = build_workload(
            WorkloadSpec(
                n_processes=6, conflict_density=0.5,
                failure_probability=0.1, seed=11,
            )
        )
        manager = ProcessManager(
            make_protocol("process-locking", workload),
            config=ManagerConfig(audit=True),
            seed=11,
        )
        for program in workload.programs:
            manager.submit(program)
        manager.engine.run_steps(20)
        first_image = crash(manager)
        recovered = recover(
            first_image,
            make_protocol("process-locking", workload),
            config=ManagerConfig(audit=True),
            seed=11,
        )
        recovered.engine.run_steps(15)
        second_image = crash(recovered)
        final = recover(
            second_image,
            make_protocol("process-locking", workload),
            config=ManagerConfig(audit=True),
            seed=11,
        )
        result = final.run()
        schedule = result.trace.to_schedule(
            workload.conflicts.conflict
        )
        assert schedule.is_complete
        assert has_correct_termination(schedule, stride=3)
        assert is_process_recoverable(schedule)


class TestGroundedRecovery:
    def test_subsystems_survive_pm_crash(self):
        """Subsystems are independent systems: the PM crash loses the
        PM's volatile state only; committed subsystem effects persist
        and the recovered run compensates exactly the right ones."""
        workload = build_workload(
            WorkloadSpec(
                n_processes=6, grounded=True,
                failure_probability=0.1, seed=6,
            )
        )
        pool = workload.make_subsystems()
        manager = ProcessManager(
            make_protocol("process-locking", workload),
            subsystems=pool,
            config=ManagerConfig(audit=True),
            seed=6,
        )
        for program in workload.programs:
            manager.submit(program)
        manager.engine.run_steps(35)
        image = crash(manager)
        recovered = recover(
            image,
            make_protocol("process-locking", workload),
            config=ManagerConfig(audit=True),
            subsystems=pool,  # the very same, still-running systems
            seed=6,
        )
        recovered.run()
        for subsystem in pool:
            assert subsystem.is_serializable()
            assert subsystem.avoids_cascading_aborts()


@st.composite
def random_program(draw):
    """A random guaranteed-termination program over a tiny registry."""
    registry = ActivityRegistry()
    registry.define_compensatable(
        "c1", "s", cost=1.0, compensation_cost=0.5,
        failure_probability=draw(
            st.floats(min_value=0.0, max_value=0.4)
        ),
    )
    registry.define_compensatable(
        "c2", "s", cost=2.0, compensation_cost=0.5,
        failure_probability=draw(
            st.floats(min_value=0.0, max_value=0.4)
        ),
    )
    registry.define_pivot(
        "piv", "s", cost=1.0,
        failure_probability=draw(
            st.floats(min_value=0.0, max_value=0.3)
        ),
    )
    registry.define_retriable("ret", "s", cost=1.0)

    def build(builder: ProgramBuilder, depth: int) -> None:
        for __ in range(draw(st.integers(min_value=1, max_value=3))):
            builder.step(draw(st.sampled_from(["c1", "c2"])))
        if depth < 2 and draw(st.booleans()):
            branch_count = draw(st.integers(min_value=0, max_value=2))

            def fallible_branch(nested: ProgramBuilder) -> None:
                build(nested, depth + 1)

            def assured_branch(nested: ProgramBuilder) -> None:
                nested.step("ret")

            branches = [fallible_branch] * branch_count
            branches.append(assured_branch)
            builder.pivot("piv").alternatives(*branches)

    builder = ProgramBuilder("random", registry)
    build(builder, 0)
    return registry, builder.build()


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data(), seed=st.integers(min_value=0, max_value=999))
def test_property_random_programs_always_terminate(data, seed):
    """Any validated random program runs to commit or clean abort,
    alone and in self-conflicting pairs."""
    registry, program = data.draw(random_program())
    conflicts = ConflictMatrix(registry)
    conflicts.declare_conflict("c1", "c1")
    conflicts.declare_conflict("c2", "piv")
    conflicts.close_perfect()
    protocol = ProcessLockManager(registry, conflicts)
    manager = ProcessManager(
        protocol, config=ManagerConfig(audit=True), seed=seed
    )
    manager.submit(program)
    manager.submit(program)
    result = manager.run()
    schedule = result.trace.to_schedule(conflicts.conflict)
    assert schedule.is_complete
    assert has_correct_termination(schedule)
    assert is_process_recoverable(schedule)
