"""The kitchen-sink properties: every feature enabled at once.

These are the highest-level confidence tests in the suite: grounded
subsystems, cost thresholds, parallel nodes, alternatives, failures,
arrivals, and a mid-run manager crash — simultaneously — must still
yield complete, CT + P-RC schedules with consistent subsystems.  A
second property cross-validates the polynomial reducibility decider
against the exact Definition-4 search on *protocol-generated* prefixes
(the synthetic cross-validation lives in ``tests/test_theory``).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scheduler.manager import ManagerConfig, ProcessManager
from repro.scheduler.recovery import crash, recover
from repro.sim.arrivals import poisson_arrivals
from repro.sim.runner import make_protocol
from repro.sim.workload import WorkloadSpec, build_workload
from repro.theory.criteria import (
    check_all_prefixes_recoverable,
    has_correct_termination,
)
from repro.theory.reduction import exact_is_reducible, poly_is_reducible


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=500),
    crash_steps=st.integers(min_value=5, max_value=80),
    threshold=st.sampled_from([15.0, 40.0]),
)
def test_property_kitchen_sink(seed, crash_steps, threshold):
    workload = build_workload(
        WorkloadSpec(
            n_processes=5,
            n_activity_types=10,
            conflict_density=0.5,
            failure_probability=0.1,
            parallel_probability=0.3,
            alternative_count=2,
            wcc_threshold=threshold,
            grounded=True,
            seed=seed,
        )
    )
    pool = workload.make_subsystems()
    manager = ProcessManager(
        make_protocol("process-locking", workload),
        subsystems=pool,
        config=ManagerConfig(audit=True),
        seed=seed,
    )
    arrivals = poisson_arrivals(0.3, len(workload.programs), seed=seed)
    for index, program in enumerate(workload.programs):
        manager.submit(program, at=arrivals[index])
    manager.engine.run_steps(crash_steps)
    image = crash(manager)
    recovered = recover(
        image,
        make_protocol("process-locking", workload),
        config=ManagerConfig(audit=True),
        subsystems=pool,
        seed=seed,
    )
    result = recovered.run()
    schedule = result.trace.to_schedule(workload.conflicts.conflict)
    assert schedule.is_complete
    assert has_correct_termination(schedule, stride=4)
    assert check_all_prefixes_recoverable(schedule)
    for subsystem in pool:
        assert subsystem.is_serializable()
        assert subsystem.avoids_cascading_aborts()


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=500))
def test_property_deciders_agree_on_protocol_traces(seed):
    """exact == polynomial reducibility on real protocol prefixes."""
    workload = build_workload(
        WorkloadSpec(
            n_processes=3,
            n_activity_types=6,
            conflict_density=0.6,
            failure_probability=0.15,
            min_length=1,
            max_length=3,
            seed=seed,
        )
    )
    from repro.sim.runner import run_workload, schedule_of

    result = run_workload(workload, "process-locking", seed=seed)
    schedule = schedule_of(workload, result)
    limit = min(9, len(schedule.activities))
    for cut in range(1, len(schedule.events) + 1):
        prefix = schedule.prefix(cut)
        if len(prefix.activities) > limit:
            break
        assert exact_is_reducible(prefix) == poly_is_reducible(prefix)
        assert poly_is_reducible(prefix)  # and the protocol is correct
