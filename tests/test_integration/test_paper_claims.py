"""The paper's comparative claims as small, deterministic experiments.

These are miniature versions of the benchmark experiments (E1–E6),
asserted as tests so the claims cannot silently regress.  Each uses a
few repetition seeds to smooth single-run noise.
"""

import math

import pytest

from repro.scheduler.manager import ManagerConfig
from repro.sim.metrics import mean, summarize
from repro.sim.runner import run_and_summarize, run_workload
from repro.sim.workload import WorkloadSpec, build_workload

SEEDS = [1, 2, 3, 4]


def averaged(spec, protocol, field):
    values = []
    for seed in SEEDS:
        workload = build_workload(spec.with_(seed=seed))
        __, metrics = run_and_summarize(workload, protocol, seed=seed)
        values.append(getattr(metrics, field))
    return mean(values)


BASE = WorkloadSpec(
    n_processes=10,
    n_activity_types=12,
    conflict_density=0.35,
    failure_probability=0.05,
    pivot_probability=0.7,
)


class TestE1Concurrency:
    """Ordered sharing admits more concurrency than exclusive locking."""

    def test_process_locking_beats_serial_makespan(self):
        pl = averaged(BASE, "process-locking", "makespan")
        serial = averaged(BASE, "serial", "makespan")
        assert pl < serial

    def test_process_locking_at_least_matches_s2pl(self):
        pl = averaged(BASE, "process-locking", "makespan")
        s2pl = averaged(BASE, "s2pl", "makespan")
        assert pl <= s2pl * 1.10  # within 10% or better

    def test_concurrency_degree_ordering(self):
        pl = averaged(BASE, "process-locking", "mean_concurrency")
        serial = averaged(BASE, "serial", "mean_concurrency")
        assert pl > serial


class TestE2EarlyVerification:
    """Pure OSL's late validation causes violations; PL has none."""

    HOT = BASE.with_(conflict_density=0.6, failure_probability=0.12)

    def test_osl_pure_suffers_unresolvable_violations(self):
        total = sum(
            averaged(self.HOT.with_(seed=s), "osl-pure",
                     "unresolvable_violations")
            for s in SEEDS
        )
        assert total > 0

    def test_process_locking_never_does(self):
        total = sum(
            averaged(self.HOT.with_(seed=s), "process-locking",
                     "unresolvable_violations")
            for s in SEEDS
        )
        assert total == 0


class TestE3ThresholdSpectrum:
    """Wcc* spans the spectrum: lower thresholds -> fewer cascades."""

    EXP = BASE.with_(expensive_fraction=0.3, expensive_cost=40.0,
                     conflict_density=0.5)

    def test_cascade_victims_grow_with_threshold(self):
        low = averaged(self.EXP.with_(wcc_threshold=5.0),
                       "process-locking", "cascade_victims")
        high = averaged(self.EXP.with_(wcc_threshold=math.inf),
                        "process-locking", "cascade_victims")
        assert low < high

    def test_zero_threshold_means_no_cascades(self):
        value = averaged(self.EXP.with_(wcc_threshold=0.0),
                         "process-locking", "cascade_victims")
        assert value == 0


class TestE4CompletingProtection:
    """Cascading aborts never hit completing processes."""

    def test_no_completing_victims_ever(self):
        # The manager would raise ProcessStateError if a completing
        # process were chosen as a cascade victim; a clean run of a
        # high-contention workload is the assertion.
        spec = BASE.with_(conflict_density=0.8,
                          failure_probability=0.15)
        for seed in SEEDS:
            workload = build_workload(spec.with_(seed=seed))
            result = run_workload(
                workload, "process-locking", seed=seed,
                config=ManagerConfig(audit=True),
            )
            assert result.stats.committed >= 1


class TestE5Liveness:
    """Deadlock freedom and starvation freedom."""

    def test_basic_protocol_zero_deadlock_victims(self):
        spec = BASE.with_(conflict_density=0.9, wcc_threshold=math.inf)
        for seed in SEEDS:
            workload = build_workload(spec.with_(seed=seed))
            result = run_workload(workload, "process-locking-basic",
                                  seed=seed)
            assert result.stats.deadlock_victims == 0

    def test_resubmissions_bounded_in_practice(self):
        spec = BASE.with_(conflict_density=0.9)
        for seed in SEEDS:
            workload = build_workload(spec.with_(seed=seed))
            result = run_workload(workload, "process-locking", seed=seed)
            worst = max(
                record.resubmissions
                for record in result.records.values()
            )
            assert worst < 100


class TestE6ExpensiveProtection:
    """Cost thresholds keep expensive work from being compensated."""

    EXP = BASE.with_(expensive_fraction=0.4, expensive_cost=50.0,
                     conflict_density=0.5, failure_probability=0.04)

    def _cascade_compensated_cost(self, threshold):
        values = []
        for seed in SEEDS:
            workload = build_workload(
                self.EXP.with_(seed=seed, wcc_threshold=threshold)
            )
            result = run_workload(workload, "process-locking", seed=seed)
            values.append(result.stats.compensated_cost_protocol)
        return mean(values)

    def test_threshold_reduces_cascade_compensation_cost(self):
        protected = self._cascade_compensated_cost(threshold=50.0)
        unprotected = self._cascade_compensated_cost(
            threshold=math.inf
        )
        assert protected < unprotected
