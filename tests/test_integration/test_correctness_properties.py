"""Property-based end-to-end correctness: Theorems 1 and 2, mechanized.

Hypothesis draws workload shapes (conflict density, failure rates,
parallelism, thresholds, seeds); every schedule the protocol produces
must be prefix-reducible / correctly terminating (Theorem 1) and
process-recoverable (Theorem 2), with liveness (all processes terminate)
and — for the basic protocol — zero deadlock victims.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scheduler.manager import ManagerConfig
from repro.sim.runner import run_workload, schedule_of
from repro.sim.workload import WorkloadSpec, build_workload
from repro.theory.criteria import (
    check_all_prefixes_recoverable,
    has_correct_termination,
    is_prefix_reducible,
)

SPEC_STRATEGY = st.builds(
    WorkloadSpec,
    n_processes=st.integers(min_value=2, max_value=7),
    n_activity_types=st.integers(min_value=6, max_value=12),
    conflict_density=st.floats(min_value=0.0, max_value=0.9),
    failure_probability=st.floats(min_value=0.0, max_value=0.25),
    parallel_probability=st.floats(min_value=0.0, max_value=0.5),
    pivot_probability=st.floats(min_value=0.0, max_value=1.0),
    alternative_count=st.integers(min_value=1, max_value=2),
    wcc_threshold=st.sampled_from([math.inf, 30.0, 5.0, 0.0]),
    arrival_spacing=st.sampled_from([0.0, 1.5]),
    seed=st.integers(min_value=0, max_value=10_000),
)

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@_SETTINGS
@given(spec=SPEC_STRATEGY)
def test_property_process_locking_is_ct_and_prc(spec):
    workload = build_workload(spec)
    result = run_workload(
        workload,
        "process-locking",
        seed=spec.seed,
        config=ManagerConfig(audit=True),
    )
    schedule = schedule_of(workload, result)
    assert schedule.is_complete  # liveness: everything terminated
    assert has_correct_termination(schedule, stride=3)
    assert check_all_prefixes_recoverable(schedule)


@_SETTINGS
@given(spec=SPEC_STRATEGY)
def test_property_basic_protocol_never_needs_cycle_victims(spec):
    workload = build_workload(spec.with_(wcc_threshold=math.inf))
    result = run_workload(
        workload,
        "process-locking-basic",
        seed=spec.seed,
        config=ManagerConfig(audit=True),
    )
    assert result.stats.deadlock_victims == 0
    assert result.stats.unresolvable_violations == 0


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    spec=SPEC_STRATEGY,
    protocol=st.sampled_from(["s2pl", "serial", "aca"]),
)
def test_property_conservative_baselines_are_correct_too(spec, protocol):
    """Serial, S2PL and ACA also satisfy the criteria (they are merely
    slower); only pure OSL is allowed to violate them."""
    workload = build_workload(spec)
    result = run_workload(
        workload, protocol, seed=spec.seed,
        config=ManagerConfig(audit=True),
    )
    if result.stats.unresolvable_violations:
        return  # forced progress already flagged the violation
    schedule = schedule_of(workload, result)
    assert is_prefix_reducible(schedule, stride=4)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=SPEC_STRATEGY)
def test_property_grounded_runs_keep_subsystems_consistent(spec):
    """With real stores attached, every subsystem history is CPSR+ACA
    and compensation returns written counters to committed-only state."""
    workload = build_workload(spec.with_(grounded=True))
    pool = workload.make_subsystems()
    from repro.scheduler.manager import ProcessManager
    from repro.sim.runner import make_protocol

    protocol = make_protocol("process-locking", workload)
    manager = ProcessManager(protocol, subsystems=pool, seed=spec.seed)
    for index, program in enumerate(workload.programs):
        manager.submit(program, at=workload.arrival_time(index))
    manager.run()
    for subsystem in pool:
        assert subsystem.is_serializable()
        assert subsystem.avoids_cascading_aborts()
