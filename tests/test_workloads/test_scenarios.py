"""Tests for the four domain scenarios (paper Section 6 applications)."""

import pytest

from repro.core.protocol import ProcessLockManager
from repro.scheduler.manager import ManagerConfig, ProcessManager
from repro.theory.criteria import (
    has_correct_termination,
    is_process_recoverable,
)
from repro.workloads import (
    LAB_PANEL_COST,
    hospital_scenario,
    manufacturing_scenario,
    payment_scenario,
    travel_scenario,
)

SCENARIOS = [
    ("payment", lambda: payment_scenario(customers=5, items=2)),
    ("travel", lambda: travel_scenario(trips=5)),
    ("hospital", lambda: hospital_scenario(patients=4)),
    ("manufacturing", lambda: manufacturing_scenario(orders=5)),
]


@pytest.mark.parametrize("name,maker", SCENARIOS)
class TestScenarioStructure:
    def test_programs_validate(self, name, maker):
        scenario = maker()
        for program in scenario.programs:
            program.validate()

    def test_conflicts_perfect(self, name, maker):
        scenario = maker()
        assert scenario.conflicts.is_perfect()

    def test_every_activity_grounded(self, name, maker):
        scenario = maker()
        for program in scenario.programs:
            for activity_name in program.activity_names():
                assert activity_name in scenario.data_programs

    def test_subsystem_pool_complete(self, name, maker):
        scenario = maker()
        pool = scenario.make_subsystems()
        for activity_type in scenario.registry:
            assert activity_type.subsystem in pool


@pytest.mark.parametrize("name,maker", SCENARIOS)
class TestScenarioExecution:
    def test_runs_correctly_under_process_locking(self, name, maker):
        scenario = maker()
        protocol = ProcessLockManager(
            scenario.registry, scenario.conflicts
        )
        manager = ProcessManager(
            protocol,
            subsystems=scenario.make_subsystems(),
            config=ManagerConfig(audit=True),
            seed=11,
        )
        for program in scenario.programs:
            manager.submit(program)
        result = manager.run()
        assert result.stats.committed >= 1
        schedule = result.trace.to_schedule(scenario.conflicts.conflict)
        assert has_correct_termination(schedule)
        assert is_process_recoverable(schedule)

    def test_subsystem_histories_cpsr_aca(self, name, maker):
        scenario = maker()
        protocol = ProcessLockManager(
            scenario.registry, scenario.conflicts
        )
        pool = scenario.make_subsystems()
        manager = ProcessManager(
            protocol, subsystems=pool, seed=4
        )
        for program in scenario.programs:
            manager.submit(program)
        manager.run()
        for subsystem in pool:
            assert subsystem.is_serializable()
            assert subsystem.avoids_cascading_aborts()


class TestScenarioSpecifics:
    def test_payment_pivot_is_charge(self):
        scenario = payment_scenario(customers=1)
        charge = scenario.registry.get("charge_card")
        assert charge.point_of_no_return

    def test_travel_parallel_node(self):
        scenario = travel_scenario(trips=1, parallel_booking=True)
        assert scenario.programs[0].root.is_parallel

    def test_travel_sequential_option(self):
        scenario = travel_scenario(trips=1, parallel_booking=False)
        assert not scenario.programs[0].root.is_parallel

    def test_hospital_lab_panel_is_expensive(self):
        scenario = hospital_scenario(patients=1)
        panel = scenario.registry.get("order_lab_panel_w0")
        assert panel.cost == LAB_PANEL_COST
        assert panel.compensatable

    def test_hospital_threshold_plumbs_through(self):
        scenario = hospital_scenario(patients=1, wcc_threshold=7.0)
        assert scenario.programs[0].wcc_threshold == 7.0

    def test_manufacturing_shared_machine_conflicts(self):
        scenario = manufacturing_scenario(orders=2, machines=1)
        # Both orders book the same machine: their bookings conflict.
        assert scenario.conflicts.conflict(
            "book_machine_0", "book_machine_0"
        )

    def test_cross_subsystem_activities_commute(self):
        scenario = payment_scenario(customers=1)
        assert not scenario.conflicts.conflict(
            "check_cart", "ship_standard"
        )
