"""Shared fixtures for the process-locking test suite."""

from __future__ import annotations

import pytest

from repro.activities.commutativity import ConflictMatrix
from repro.activities.registry import ActivityRegistry
from repro.core.protocol import ProcessLockManager
from repro.process.builder import ProgramBuilder
from repro.process.instance import Process
from repro.process.program import ProcessProgram


@pytest.fixture
def registry() -> ActivityRegistry:
    """A small catalogue covering all four activity classes.

    * ``reserve`` / ``wrap`` — compensatable (``wrap`` conflicts nothing)
    * ``charge`` — pivot
    * ``ship`` — retriable (non-compensatable)
    * ``audit`` — retriable *and* compensatable
    """
    reg = ActivityRegistry()
    reg.define_compensatable(
        "reserve", "shop", cost=2.0, compensation_cost=1.0,
        failure_probability=0.1,
    )
    reg.define_compensatable(
        "wrap", "shop", cost=1.0, compensation_cost=0.5
    )
    reg.define_pivot("charge", "bank", cost=1.0, failure_probability=0.05)
    reg.define_retriable("ship", "shop", cost=1.5)
    reg.define_retriable("audit", "bank", cost=0.5, compensation_cost=0.1)
    return reg


@pytest.fixture
def conflicts(registry: ActivityRegistry) -> ConflictMatrix:
    """``reserve`` self-conflicts and conflicts ``wrap``; rest commutes."""
    matrix = ConflictMatrix(registry)
    matrix.declare_conflict("reserve", "reserve")
    matrix.declare_conflict("reserve", "wrap")
    matrix.declare_conflict("charge", "charge")
    matrix.close_perfect()
    return matrix


@pytest.fixture
def order_program(registry: ActivityRegistry) -> ProcessProgram:
    """reserve → wrap → charge (pivot) → [ship] with assured fallback."""
    return (
        ProgramBuilder("order", registry)
        .step("reserve")
        .step("wrap")
        .pivot("charge")
        .alternatives(lambda b: b.step("ship"))
        .build()
    )


@pytest.fixture
def flat_program(registry: ActivityRegistry) -> ProcessProgram:
    """A pivot-free program (behaves like a regular transaction)."""
    return (
        ProgramBuilder("flat", registry)
        .step("reserve")
        .step("wrap")
        .build()
    )


@pytest.fixture
def protocol(registry, conflicts) -> ProcessLockManager:
    return ProcessLockManager(registry, conflicts)


def make_process(
    protocol: ProcessLockManager,
    program: ProcessProgram,
    pid: int,
) -> Process:
    """Create, timestamp, and attach a process (helper, not a fixture)."""
    process = Process(
        pid=pid, program=program, timestamp=protocol.new_timestamp()
    )
    protocol.attach(process)
    return process
