"""Shared fixtures for the process-locking test suite."""

from __future__ import annotations

import itertools

import pytest

import repro.activities.activity as _activity_module
import repro.core.locks as _locks_module
from repro.activities.commutativity import ConflictMatrix
from repro.activities.registry import ActivityRegistry
from repro.core.protocol import ProcessLockManager
from repro.process.builder import ProgramBuilder
from repro.process.instance import Process
from repro.process.program import ProcessProgram


#: Strictly increasing uid/lock-id floors, one per pinned run pair,
#: shared by every :class:`UidFloorPinner` in the session.  Activity
#: uids and lock ids come from module-global counters, and uid *values*
#: leak into scheduling via int-set iteration order (the in-flight gate
#: bookkeeping), so two runs are only byte-comparable when they start
#: from the same floor.  The floors stay monotone so other tests in the
#: same interpreter keep their uid-ordering assumptions.
_UID_FLOORS = itertools.count(10_000_000, 10_000_000)


class UidFloorPinner:
    """Pin the global activity/lock-id counters for paired runs.

    ``pin()`` claims a fresh floor and restarts both counters there;
    ``repin()`` restarts them at the *same* floor, making the next run
    byte-comparable (identical uids, hence identical traces) with the
    previous one.
    """

    def __init__(self) -> None:
        self.floor: int | None = None

    def pin(self) -> int:
        """Claim a fresh floor and restart both counters at it."""
        self.floor = next(_UID_FLOORS)
        self.repin()
        return self.floor

    def repin(self) -> None:
        """Restart both counters at the current floor (paired run)."""
        if self.floor is None:
            raise RuntimeError("call pin() before repin()")
        _activity_module._activity_ids = itertools.count(self.floor)
        _locks_module._lock_ids = itertools.count(self.floor)


@pytest.fixture
def uid_floor() -> UidFloorPinner:
    """Per-test pinner for byte-comparable paired simulation runs."""
    return UidFloorPinner()


@pytest.fixture
def registry() -> ActivityRegistry:
    """A small catalogue covering all four activity classes.

    * ``reserve`` / ``wrap`` — compensatable (``wrap`` conflicts nothing)
    * ``charge`` — pivot
    * ``ship`` — retriable (non-compensatable)
    * ``audit`` — retriable *and* compensatable
    """
    reg = ActivityRegistry()
    reg.define_compensatable(
        "reserve", "shop", cost=2.0, compensation_cost=1.0,
        failure_probability=0.1,
    )
    reg.define_compensatable(
        "wrap", "shop", cost=1.0, compensation_cost=0.5
    )
    reg.define_pivot("charge", "bank", cost=1.0, failure_probability=0.05)
    reg.define_retriable("ship", "shop", cost=1.5)
    reg.define_retriable("audit", "bank", cost=0.5, compensation_cost=0.1)
    return reg


@pytest.fixture
def conflicts(registry: ActivityRegistry) -> ConflictMatrix:
    """``reserve`` self-conflicts and conflicts ``wrap``; rest commutes."""
    matrix = ConflictMatrix(registry)
    matrix.declare_conflict("reserve", "reserve")
    matrix.declare_conflict("reserve", "wrap")
    matrix.declare_conflict("charge", "charge")
    matrix.close_perfect()
    return matrix


@pytest.fixture
def order_program(registry: ActivityRegistry) -> ProcessProgram:
    """reserve → wrap → charge (pivot) → [ship] with assured fallback."""
    return (
        ProgramBuilder("order", registry)
        .step("reserve")
        .step("wrap")
        .pivot("charge")
        .alternatives(lambda b: b.step("ship"))
        .build()
    )


@pytest.fixture
def flat_program(registry: ActivityRegistry) -> ProcessProgram:
    """A pivot-free program (behaves like a regular transaction)."""
    return (
        ProgramBuilder("flat", registry)
        .step("reserve")
        .step("wrap")
        .build()
    )


@pytest.fixture
def protocol(registry, conflicts) -> ProcessLockManager:
    return ProcessLockManager(registry, conflicts)


def make_process(
    protocol: ProcessLockManager,
    program: ProcessProgram,
    pid: int,
) -> Process:
    """Create, timestamp, and attach a process (helper, not a fixture)."""
    process = Process(
        pid=pid, program=program, timestamp=protocol.new_timestamp()
    )
    protocol.attach(process)
    return process
