"""Acceptance: correlated-outage storms under the resilience layer.

The fixed-seed storm below opens breakers while arrivals are still
streaming in, so the admission gate actually sheds processes and later
re-admits them — and the run must still satisfy the full invariant
battery (termination, CT, P-RC, splice, WAL).
"""

from __future__ import annotations

import dataclasses

from repro.faults.harness import run_chaos
from repro.faults.plan import CorrelatedOutage
from repro.faults.storms import (
    outage_storm,
    threshold_boundary_storm,
    threshold_boundary_subsystems,
)
from repro.resilience import (
    BreakerConfig,
    ResilienceConfig,
    ResilienceLayer,
)
from repro.scheduler.manager import ManagerConfig
from repro.sim.workload import WorkloadSpec, build_workload

#: Arrivals stretched out (spacing 2.0 over 20 processes) so the storm
#: has admissions left to shed once its breakers open.
STORM_SPEC = WorkloadSpec(
    n_processes=20,
    pivot_probability=1.0,
    alternative_count=0,
    retriable_tail=3,
    conflict_density=0.4,
    arrival_spacing=2.0,
    wcc_threshold=25.0,
    seed=3,
)

#: Aggressive breakers: two outage hits trip a subsystem open.
RESILIENCE = ResilienceConfig(
    breaker=BreakerConfig(failure_threshold=2, cooldown=15.0)
)


def run_storm(layer: ResilienceLayer):
    workload = build_workload(STORM_SPEC)
    plan = threshold_boundary_storm(
        workload, start_event=10, bursts=4, spacing=20, duration=20.0
    )
    config = ManagerConfig(
        audit=True,
        audit_every=8,
        max_resubmissions=100_000,
        resilience=layer,
    )
    return run_chaos(
        workload,
        "process-locking",
        plan,
        seed=STORM_SPEC.seed,
        workload_name="storm",
        config=config,
        ct_stride=5,
    )


class TestStormAcceptance:
    def test_storm_sheds_readmits_and_keeps_every_invariant(self):
        layer = ResilienceLayer(RESILIENCE)
        report = run_storm(layer)
        # Full battery, each check individually.
        assert report.checks["terminated"]
        assert report.checks["ct"]
        assert report.checks["prc"]
        assert report.checks["splice"]
        assert report.checks["wal"]
        assert report.ok
        # The layer did real work: breakers tripped, admissions were
        # shed while subsystems were dark, and every shed process came
        # back (termination covers them — the schedule is complete).
        stats = layer.stats
        assert stats.breaker_opens > 0
        assert stats.outage_hits > 0
        assert stats.admissions_deferred > 0
        assert stats.admissions_readmitted > 0
        assert stats.degradations >= 1
        assert report.admissions_deferred == stats.admissions_deferred

    def test_storm_is_deterministic(self, uid_floor):
        uid_floor.pin()
        first_layer = ResilienceLayer(RESILIENCE)
        first = run_storm(first_layer)
        uid_floor.repin()
        second_layer = ResilienceLayer(RESILIENCE)
        second = run_storm(second_layer)
        assert first.trace_digest == second.trace_digest
        assert first.schedule_canonical == second.schedule_canonical
        assert dataclasses.asdict(
            first_layer.stats
        ) == dataclasses.asdict(second_layer.stats)


class TestStormConstruction:
    def test_outage_storm_spaces_bursts(self):
        bursts = outage_storm(
            ("a", "b"), start_event=10, bursts=3, spacing=25
        )
        assert [b.at_event for b in bursts] == [10, 35, 60]
        assert all(isinstance(b, CorrelatedOutage) for b in bursts)
        assert all(b.subsystems == ("a", "b") for b in bursts)

    def test_boundary_targets_are_a_subsystem_subset(self):
        workload = build_workload(STORM_SPEC)
        targets = threshold_boundary_subsystems(workload)
        all_subsystems = {
            activity_type.subsystem
            for activity_type in workload.registry
        }
        assert targets
        assert set(targets) <= all_subsystems
        assert targets == threshold_boundary_subsystems(workload)

    def test_infinite_threshold_falls_back_to_every_subsystem(self):
        spec = dataclasses.replace(
            STORM_SPEC, wcc_threshold=float("inf")
        )
        workload = build_workload(spec)
        targets = threshold_boundary_subsystems(workload)
        all_subsystems = {
            activity_type.subsystem
            for activity_type in workload.registry
        }
        assert set(targets) == all_subsystems

    def test_storm_plan_validates_and_scopes_failures(self):
        workload = build_workload(STORM_SPEC)
        plan = threshold_boundary_storm(workload)
        plan.validate()
        targets = threshold_boundary_subsystems(workload)
        assert plan.failures.subsystems == targets
        assert all(
            outage.subsystems == targets
            for outage in plan.correlated_outages
        )
