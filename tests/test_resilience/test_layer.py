"""ResilienceLayer: admission gating, adaptive Wcc*, crash re-binding."""

from __future__ import annotations

from types import SimpleNamespace

from repro.obs import Tracer
from repro.process.builder import ProgramBuilder
from repro.resilience import (
    BreakerConfig,
    BreakerState,
    ResilienceConfig,
    ResilienceLayer,
)

CFG = ResilienceConfig(
    breaker=BreakerConfig(
        failure_threshold=2, cooldown=10.0, half_open_successes=1
    ),
    degraded_wcc_cap=15.0,
    admission_retry_delay=5.0,
    max_admission_defers=2,
)


class FakeEngine:
    def __init__(self) -> None:
        self.now = 0.0
        self.scheduled: list[tuple[float, object]] = []

    def schedule(self, delay, fn):
        self.scheduled.append((delay, fn))


class FakeManager:
    def __init__(self, tracer=None) -> None:
        self.engine = FakeEngine()
        self.protocol = SimpleNamespace(threshold_provider=None)
        self.tracer = tracer
        self.initiated: list[int] = []

    def _initiate(self, pid, program):
        self.initiated.append(pid)


def bound_layer(config=CFG, tracer=None):
    layer = ResilienceLayer(config)
    manager = FakeManager(tracer=tracer)
    layer.bind(manager)
    return layer, manager


def trip(layer, subsystem, times=2):
    for _ in range(times):
        layer.on_activity_outcome(subsystem, failed=True)


def fake_process(threshold):
    return SimpleNamespace(
        program=SimpleNamespace(wcc_threshold=threshold)
    )


class TestBinding:
    def test_bind_installs_the_threshold_provider(self):
        layer, manager = bound_layer()
        assert (
            manager.protocol.threshold_provider
            == layer.effective_threshold
        )


class TestAdmissionGating:
    def program(self):
        from repro.activities.registry import ActivityRegistry

        registry = ActivityRegistry()
        registry.define_compensatable("reserve", "shop", cost=2.0)
        registry.define_pivot("charge", "bank", cost=1.0)
        registry.define_retriable("ship", "shop", cost=1.5)
        return (
            ProgramBuilder("order", registry)
            .step("reserve")
            .pivot("charge")
            .alternatives(lambda b: b.step("ship"))
            .build()
        )

    def test_admits_when_everything_is_closed(self):
        layer, _ = bound_layer()
        assert layer.admission_delay(1, self.program()) is None
        assert layer.stats.admissions_deferred == 0

    def test_defers_when_a_needed_subsystem_is_open(self):
        layer, _ = bound_layer()
        trip(layer, "shop")
        delay = layer.admission_delay(1, self.program())
        assert delay == CFG.admission_retry_delay
        assert layer.stats.admissions_deferred == 1

    def test_unrelated_open_breaker_does_not_block(self):
        layer, _ = bound_layer()
        trip(layer, "warehouse")
        assert layer.admission_delay(1, self.program()) is None

    def test_readmits_after_cooldown(self):
        layer, manager = bound_layer()
        trip(layer, "shop")
        program = self.program()
        assert layer.admission_delay(1, program) is not None
        # Cooldown elapses; the next attempt pokes the breaker to
        # HALF_OPEN, which admits (probe traffic closes breakers).
        manager.engine.now = CFG.breaker.cooldown + 1.0
        assert layer.admission_delay(1, program) is None
        assert layer.stats.admissions_readmitted == 1
        assert (
            layer.health.breaker("shop").state
            is BreakerState.HALF_OPEN
        )

    def test_defer_budget_force_admits(self):
        layer, _ = bound_layer()
        trip(layer, "shop")
        program = self.program()
        # now stays 0, so the breaker never cools down.
        assert layer.admission_delay(1, program) is not None
        assert layer.admission_delay(1, program) is not None
        assert layer.admission_delay(1, program) is None
        assert layer.stats.admissions_forced == 1
        assert layer.stats.admissions_deferred == CFG.max_admission_defers

    def test_admission_events_are_traced(self):
        tracer = Tracer()
        layer, _ = bound_layer(tracer=tracer)
        trip(layer, "shop")
        program = self.program()
        layer.admission_delay(1, program)
        layer.admission_delay(1, program)
        layer.admission_delay(1, program)
        ops = [
            (record["pid"], record["op"], record["deferrals"])
            for record in tracer.records()
            if record["kind"] == "resilience.admission"
        ]
        assert ops == [(1, "defer", 1), (1, "defer", 2), (1, "force-admit", 3)]


class TestAdaptiveThreshold:
    def test_degrades_and_recovers(self):
        layer, manager = bound_layer()
        base = fake_process(30.0)
        assert layer.effective_threshold(base) == 30.0

        trip(layer, "shop")
        assert layer.stats.degradations == 1
        assert layer.effective_threshold(base) == CFG.degraded_wcc_cap
        # Infinite thresholds degrade too — the cap is a min, not a
        # multiplier.
        assert (
            layer.effective_threshold(fake_process(float("inf")))
            == CFG.degraded_wcc_cap
        )
        # A base already tighter than the cap is left alone.
        assert layer.effective_threshold(fake_process(3.0)) == 3.0

        # Cooldown elapses: HALF_OPEN still counts as degraded.
        manager.engine.now = CFG.breaker.cooldown + 1.0
        assert layer.effective_threshold(base) == CFG.degraded_wcc_cap
        # One probe success (half_open_successes=1) closes it.
        layer.on_activity_outcome("shop", failed=False)
        assert layer.effective_threshold(base) == 30.0
        assert layer.stats.recoveries == 1

    def test_transitions_and_degradation_are_traced(self):
        tracer = Tracer()
        layer, manager = bound_layer(tracer=tracer)
        trip(layer, "shop")
        manager.engine.now = CFG.breaker.cooldown + 1.0
        layer.on_activity_outcome("shop", failed=False)
        kinds = [record["kind"] for record in tracer.records()]
        assert kinds.count("resilience.breaker") == 3  # open, half, close
        flips = [
            (record["active"], record["reason"])
            for record in tracer.records()
            if record["kind"] == "resilience.degrade"
        ]
        assert flips == [
            (True, "breaker-open"),
            (False, "all-breakers-closed"),
        ]
        transition = next(
            record
            for record in tracer.records()
            if record["kind"] == "resilience.breaker"
        )
        assert transition["subsystem"] == "shop"
        assert (transition["from_state"], transition["to_state"]) == (
            "closed",
            "open",
        )


class TestCrashRebind:
    def test_pending_admissions_are_rescheduled(self):
        layer, _ = bound_layer()
        trip(layer, "shop")
        program = TestAdmissionGating().program()
        assert layer.admission_delay(7, program) is not None

        # The manager crashes: a fresh incarnation re-binds the layer.
        recovered = FakeManager()
        layer.bind(recovered)
        assert len(recovered.engine.scheduled) == 1
        delay, fn = recovered.engine.scheduled[0]
        assert delay == CFG.admission_retry_delay
        fn()
        assert recovered.initiated == [7]

    def test_rebind_rebases_open_cooldowns(self):
        layer, manager = bound_layer()
        manager.engine.now = 50.0
        trip(layer, "shop")
        assert layer.health.breaker("shop").opened_at == 50.0
        layer.bind(FakeManager())
        assert layer.health.breaker("shop").opened_at == 0.0
