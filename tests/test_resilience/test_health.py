"""Circuit-breaker state machine: trips, cooldowns, probes, rebasing."""

from __future__ import annotations

import pytest

from repro.errors import SchedulerError
from repro.resilience import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    SubsystemHealth,
)

CFG = BreakerConfig(
    failure_threshold=3, cooldown=10.0, half_open_successes=2
)


def make(config=CFG) -> CircuitBreaker:
    return CircuitBreaker(subsystem="sub0", config=config)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"cooldown": 0.0},
            {"cooldown": -1.0},
            {"half_open_successes": 0},
            {"slow_latency": 0.0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(SchedulerError):
            BreakerConfig(**kwargs)


class TestTrip:
    def test_stays_closed_below_threshold(self):
        breaker = make()
        for _ in range(CFG.failure_threshold - 1):
            assert breaker.record_failure(1.0, "failure") == []
        assert breaker.state is BreakerState.CLOSED

    def test_consecutive_failures_trip_open(self):
        breaker = make()
        transitions = []
        for _ in range(CFG.failure_threshold):
            transitions += breaker.record_failure(2.0, "failure")
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_at == 2.0
        assert breaker.opens == 1
        assert transitions == [("closed", "open", "failure-threshold")]

    def test_success_resets_the_streak(self):
        breaker = make()
        breaker.record_failure(1.0, "failure")
        breaker.record_failure(1.0, "failure")
        breaker.record_success(1.5)
        breaker.record_failure(2.0, "failure")
        breaker.record_failure(2.0, "failure")
        assert breaker.state is BreakerState.CLOSED

    def test_failures_while_open_are_absorbed(self):
        breaker = make()
        for _ in range(CFG.failure_threshold):
            breaker.record_failure(0.0, "outage")
        assert breaker.record_failure(1.0, "outage") == []
        assert breaker.opens == 1
        # The cooldown still counts from the original trip.
        assert breaker.opened_at == 0.0


class TestCooldownAndProbes:
    def tripped(self, at: float = 0.0) -> CircuitBreaker:
        breaker = make()
        for _ in range(CFG.failure_threshold):
            breaker.record_failure(at, "failure")
        return breaker

    def test_poke_before_cooldown_is_a_no_op(self):
        breaker = self.tripped()
        assert breaker.poke(CFG.cooldown - 0.1) is None
        assert breaker.state is BreakerState.OPEN

    def test_cooldown_elapsing_half_opens(self):
        breaker = self.tripped()
        assert breaker.poke(CFG.cooldown) == (
            "open",
            "half-open",
            "cooldown-elapsed",
        )
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_successes_close(self):
        breaker = self.tripped()
        first = breaker.record_success(CFG.cooldown + 1.0)
        assert ("open", "half-open", "cooldown-elapsed") in first
        second = breaker.record_success(CFG.cooldown + 2.0)
        assert ("half-open", "closed", "probe-successes") in second
        assert breaker.state is BreakerState.CLOSED

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker = self.tripped()
        breaker.poke(CFG.cooldown)
        transitions = breaker.record_failure(
            CFG.cooldown + 1.0, "failure"
        )
        assert transitions == [
            ("half-open", "open", "probe-failure")
        ]
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_at == CFG.cooldown + 1.0
        assert breaker.opens == 2

    def test_rebase_clock_restarts_open_cooldown(self):
        breaker = self.tripped(at=50.0)
        breaker.rebase_clock()
        assert breaker.opened_at == 0.0
        # The recovered clock starts near zero; the full cooldown
        # elapses again before a probe is allowed.
        assert breaker.poke(CFG.cooldown - 0.1) is None
        assert breaker.poke(CFG.cooldown) is not None

    def test_rebase_leaves_closed_breakers_alone(self):
        breaker = make()
        breaker.record_failure(5.0, "failure")
        breaker.rebase_clock()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.failure_streak == 1


class TestSubsystemHealth:
    def test_breakers_are_lazy_and_cached(self):
        health = SubsystemHealth(CFG)
        assert health.breaker("a") is health.breaker("a")
        assert not health.degraded()

    def test_open_subsystems_sorted_and_degraded(self):
        health = SubsystemHealth(CFG)
        for name in ("b", "a"):
            for _ in range(CFG.failure_threshold):
                health.on_failure(name, 0.0, "failure")
        assert health.open_subsystems(1.0) == ("a", "b")
        assert health.degraded()

    def test_poke_all_reports_half_opens(self):
        health = SubsystemHealth(CFG)
        for _ in range(CFG.failure_threshold):
            health.on_failure("a", 0.0, "failure")
        assert health.poke_all(1.0) == []
        fired = health.poke_all(CFG.cooldown)
        assert fired == [
            ("a", ("open", "half-open", "cooldown-elapsed"))
        ]
        # HALF_OPEN no longer blocks admissions...
        assert health.open_subsystems(CFG.cooldown) == ()
        # ...but still counts as degraded until the probes close it.
        assert health.degraded()

    def test_trajectory_is_deterministic(self):
        def drive(health: SubsystemHealth):
            log = []
            for step, (event, now) in enumerate(
                [
                    ("fail", 0.0),
                    ("fail", 1.0),
                    ("fail", 2.0),
                    ("ok", 13.0),
                    ("ok", 14.0),
                    ("fail", 15.0),
                ]
            ):
                if event == "fail":
                    log += health.on_failure("s", now, "failure")
                else:
                    log += health.on_success("s", now)
            return log, health.snapshot()

        first = drive(SubsystemHealth(CFG))
        second = drive(SubsystemHealth(CFG))
        assert first == second
