"""Tests for the timeline renderer and the JSON export helpers."""

import json
import math

from repro.analysis.export import rows_to_json, save_rows
from repro.analysis.timeline import render_timeline
from repro.core.protocol import ProcessLockManager
from repro.scheduler.manager import ManagerConfig, ProcessManager
from repro.theory.schedule import ProcessSchedule


class TestTimeline:
    def _run_schedule(self, registry, conflicts, order_program):
        protocol = ProcessLockManager(registry, conflicts)
        manager = ProcessManager(
            protocol, config=ManagerConfig(audit=True), seed=3
        )
        manager.submit(order_program)
        manager.submit(order_program)
        result = manager.run()
        return result.trace.to_schedule(conflicts.conflict)

    def test_one_lane_per_incarnation(
        self, registry, conflicts, order_program
    ):
        schedule = self._run_schedule(
            registry, conflicts, order_program
        )
        text = render_timeline(schedule)
        lanes = [
            line for line in text.splitlines() if line.startswith("P")
        ]
        assert len(lanes) == len(schedule.processes)

    def test_glyphs_present(self, registry, conflicts, order_program):
        schedule = self._run_schedule(
            registry, conflicts, order_program
        )
        text = render_timeline(schedule)
        assert "C" in text  # commits
        assert "R" in text  # reserve

    def test_legend_lists_activities(
        self, registry, conflicts, order_program
    ):
        schedule = self._run_schedule(
            registry, conflicts, order_program
        )
        text = render_timeline(schedule)
        assert "legend:" in text
        assert "R=reserve" in text

    def test_legend_optional(self, registry, conflicts, order_program):
        schedule = self._run_schedule(
            registry, conflicts, order_program
        )
        assert "legend:" not in render_timeline(schedule, legend=False)

    def test_truncation(self, registry, conflicts, order_program):
        schedule = self._run_schedule(
            registry, conflicts, order_program
        )
        text = render_timeline(schedule, max_width=3, legend=False)
        assert "…" in text

    def test_empty_schedule(self):
        schedule = ProcessSchedule([], lambda a, b: False)
        assert "empty" in render_timeline(schedule)

    def test_compensations_are_lower_case(
        self, registry, conflicts
    ):
        from repro.process.builder import ProgramBuilder
        from repro.activities.registry import ActivityRegistry
        from repro.activities.commutativity import ConflictMatrix

        reg = ActivityRegistry()
        reg.define_compensatable("zap", "s", cost=1.0,
                                 compensation_cost=0.5)
        reg.define_compensatable("boom", "s", cost=1.0,
                                 compensation_cost=0.5,
                                 failure_probability=0.999)
        con = ConflictMatrix(reg)
        con.close_perfect()
        program = (
            ProgramBuilder("p", reg).step("zap").step("boom").build()
        )
        protocol = ProcessLockManager(reg, con)
        manager = ProcessManager(protocol, seed=1)
        manager.submit(program)
        result = manager.run()
        schedule = result.trace.to_schedule(con.conflict)
        text = render_timeline(schedule, legend=False)
        assert "Z" in text and "z" in text  # zap and zap^-1
        assert "A" in text  # the abort


class TestExport:
    def test_rows_to_json_round_trip(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": float("inf")}]
        parsed = json.loads(rows_to_json(rows))
        assert parsed[0]["a"] == 1
        assert parsed[1]["b"] == "inf"

    def test_dataclasses_supported(self):
        from repro.sim.metrics import RunMetrics

        metrics = RunMetrics(
            protocol="x", committed=1, submitted=2, makespan=3.0,
            throughput=0.5, mean_latency=1.0, mean_concurrency=1.0,
            protocol_aborts=0, intrinsic_aborts=0, subprocess_aborts=0,
            resubmissions=0, compensations=0, compensated_cost=0.0,
            deadlock_victims=0, unresolvable_violations=0, defers=0,
            cascade_victims=0,
        )
        parsed = json.loads(rows_to_json([metrics]))
        assert parsed[0]["protocol"] == "x"

    def test_nan_and_sets(self):
        parsed = json.loads(
            rows_to_json([{"x": math.nan, "y": {1, 2}}])
        )
        assert parsed[0]["x"] == "nan"
        assert sorted(parsed[0]["y"]) == [1, 2]

    def test_save_rows(self, tmp_path):
        target = save_rows(tmp_path / "out.json", [{"k": 1}])
        assert json.loads(target.read_text()) == [{"k": 1}]

    def test_non_serializable_falls_back_to_str(self):
        class Odd:
            def __str__(self):
                return "odd!"

        parsed = json.loads(rows_to_json([{"o": Odd()}]))
        assert parsed[0]["o"] == "odd!"
