"""Tests for table rendering, statistics, and exhibit regeneration."""

import math

import pytest

from repro.analysis.exhibits import (
    PAPER_TABLE2,
    all_exhibits_text,
    build_figure1_demo,
    derive_lock_compatibility,
    figure1_text,
    table1_text,
    table2_text,
)
from repro.analysis.stats import (
    monotone_decreasing,
    monotone_increasing,
    speedup,
    summarize_sample,
)
from repro.analysis.tables import render_dict_table, render_table
from repro.core.cost_based import figure1_trace
from repro.core.locks import LockMode


class TestTables:
    def test_render_basic(self):
        text = render_table(["a", "b"], [[1, 2], [3, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_float_formatting(self):
        text = render_table(["x"], [[1.5], [math.inf], [2.0]])
        assert "1.5" in text
        assert "inf" in text
        assert "2" in text

    def test_dict_table(self):
        rows = [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
        text = render_dict_table(rows)
        assert "3" in text

    def test_dict_table_empty(self):
        assert render_dict_table([], title="none") == "none"

    def test_empty_rows_ok(self):
        text = render_table(["col"], [])
        assert "col" in text


class TestStats:
    def test_summary_mean_and_ci(self):
        summary = summarize_sample([1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.n == 3
        low, high = summary.ci95
        assert low < 2.0 < high

    def test_summary_degenerate(self):
        assert summarize_sample([]).n == 0
        single = summarize_sample([5.0])
        assert single.mean == 5.0
        assert single.ci95_half_width == 0.0

    def test_speedup(self):
        assert speedup(10.0, 5.0) == 2.0
        assert speedup(10.0, 0.0) == math.inf
        assert speedup(0.0, 0.0) == 1.0

    def test_monotone_helpers(self):
        assert monotone_decreasing([3.0, 2.0, 2.0, 1.0])
        assert not monotone_decreasing([1.0, 2.0])
        assert monotone_increasing([1.0, 1.5, 2.0])
        assert monotone_increasing([1.0, 0.95, 2.0], slack=0.1)


class TestExhibits:
    def test_table1_mentions_all_classes(self):
        text = table1_text()
        for token in ("compensatable", "pivot", "retriable",
                      "compensating"):
            assert token in text

    def test_derived_table2_matches_paper(self):
        assert derive_lock_compatibility() == PAPER_TABLE2

    def test_table2_text_renders_modes(self):
        text = table2_text()
        assert text.count("ordered-shared") == 2
        assert text.count("exclusive") == 2

    def test_figure1_demo_crosses_threshold(self):
        registry, names, threshold = build_figure1_demo()
        steps = figure1_trace(registry, names, threshold)
        assert any(step.pseudo_pivot for step in steps)
        assert steps[-1].real_pivot
        assert math.isinf(steps[-1].wcc_after)

    def test_figure1_text(self):
        text = figure1_text()
        assert "pseudo-pivot" in text
        assert "Wcc" in text

    def test_all_exhibits_concatenates(self):
        text = all_exhibits_text()
        assert "Table 1" in text
        assert "Table 2" in text
        assert "Figure 1" in text

    def test_paper_table2_content(self):
        assert PAPER_TABLE2[(LockMode.C, LockMode.C)] is True
        assert PAPER_TABLE2[(LockMode.C, LockMode.P)] is False
        assert PAPER_TABLE2[(LockMode.P, LockMode.C)] is True
        assert PAPER_TABLE2[(LockMode.P, LockMode.P)] is False
