"""Persistence plane: snapshot + journal recovery at the manager level.

These tests exercise the full durability protocol without the service:
submit through a journal, stop the engine mid-flight (the snapshot is
the last durable word), rebuild from disk into a fresh protocol/pool,
run to quiescence, and hold the spliced schedule to the same CT / P-RC
bar as the in-memory recovery tests.
"""

from __future__ import annotations

import pytest

from repro.scheduler.manager import ManagerConfig, make_manager
from repro.sim.runner import make_protocol
from repro.sim.workload import WorkloadSpec, build_workload
from repro.storage import PersistencePlane, Store
from repro.theory.criteria import (
    has_correct_termination,
    is_process_recoverable,
)

SPEC = WorkloadSpec(
    n_processes=6,
    conflict_density=0.4,
    failure_probability=0.08,
    grounded=True,
    seed=5,
)


def _is_terminal(manager):
    return lambda pid: (
        pid not in manager._pending_init
        and pid not in manager._processes
    )


def _build(workload, store, snapshot_every=1, seed=5):
    plane = PersistencePlane(
        store, workload.programs, snapshot_every=snapshot_every
    )
    config = ManagerConfig(audit=True, store=store)
    protocol = make_protocol("process-locking", workload)
    if plane.has_state():
        manager, info = plane.recover(
            protocol,
            config=config,
            subsystems=workload.make_subsystems(),
            seed=seed,
        )
        return plane, manager, info
    manager = make_manager(
        protocol,
        subsystems=workload.make_subsystems(),
        config=config,
        seed=seed,
    )
    return plane, manager, None


def _submit_all(plane, manager, workload):
    for index, program in enumerate(workload.programs):
        pid = manager.submit(program)
        plane.note_submit(pid, index)


@pytest.mark.parametrize("kind", ("log", "sqlite"))
@pytest.mark.parametrize("steps", (0, 10, 25, 60))
def test_stop_at_snapshot_recovers_to_ct(tmp_path, kind, steps):
    workload = build_workload(SPEC)
    store = Store.open(kind, str(tmp_path / "store"))
    plane, manager, _ = _build(workload, store)
    _submit_all(plane, manager, workload)
    manager.engine.run_steps(steps)
    plane.after_drain(manager, _is_terminal(manager), set())
    plane.snapshot(manager)
    store.flush()
    store.close()
    # The process dies here; everything below is the next incarnation.
    store2 = Store.open(kind, str(tmp_path / "store"))
    plane2, recovered, info = _build(workload, store2)
    assert info is not None
    assert info.adopted + info.resubmitted + info.restored == len(
        workload.programs
    )
    result = recovered.run()
    plane2.after_drain(recovered, _is_terminal(recovered), set())
    schedule = result.trace.to_schedule(workload.conflicts.conflict)
    assert schedule.is_complete
    assert has_correct_termination(schedule, stride=4)
    assert is_process_recoverable(schedule)
    store2.close()


def test_journal_only_crash_resubmits_everything(tmp_path):
    """Killed before any snapshot: acknowledged pids re-run from zero."""
    workload = build_workload(SPEC)
    store = Store.open("log", str(tmp_path / "store"))
    plane, manager, _ = _build(workload, store)
    _submit_all(plane, manager, workload)
    store.flush()
    store.close()  # no snapshot was ever cut
    store2 = Store.open("log", str(tmp_path / "store"))
    plane2, recovered, info = _build(workload, store2)
    assert info.adopted == 0
    assert info.resubmitted == len(workload.programs)
    result = recovered.run()
    assert set(result.records) == {
        pid for pid in range(1, len(workload.programs) + 1)
    }
    schedule = result.trace.to_schedule(workload.conflicts.conflict)
    assert schedule.is_complete
    assert has_correct_termination(schedule, stride=4)
    store2.close()


def test_finished_processes_restore_without_rerun(tmp_path):
    workload = build_workload(SPEC)
    store = Store.open("log", str(tmp_path / "store"))
    plane, manager, _ = _build(workload, store)
    _submit_all(plane, manager, workload)
    result = manager.run()
    plane.after_drain(manager, _is_terminal(manager), set())
    plane.final(manager)
    committed = result.stats.committed
    events_before = len(result.trace.events)
    store.close()
    store2 = Store.open("log", str(tmp_path / "store"))
    plane2, recovered, info = _build(workload, store2)
    assert info.restored == len(workload.programs)
    assert info.adopted == 0 and info.resubmitted == 0
    assert recovered.stats.committed == committed
    # Nothing re-runs: the engine has no scheduled work.
    assert not recovered._pending_init and not recovered._processes
    assert len(recovered.trace.events) == events_before
    for pid, record in result.records.items():
        assert recovered.records[pid].committed_at == (
            record.committed_at
        )
    store2.close()


def test_pid_sequence_continues_after_recovery(tmp_path):
    workload = build_workload(SPEC)
    store = Store.open("log", str(tmp_path / "store"))
    plane, manager, _ = _build(workload, store)
    _submit_all(plane, manager, workload)
    manager.run()
    plane.after_drain(manager, _is_terminal(manager), set())
    store.close()
    store2 = Store.open("log", str(tmp_path / "store"))
    plane2, recovered, __ = _build(workload, store2)
    new_pid = recovered.submit(workload.programs[0])
    assert new_pid == len(workload.programs) + 1
    store2.close()


def test_snapshot_cadence_throttles_snapshots(tmp_path):
    workload = build_workload(SPEC)
    store = Store.open("log", str(tmp_path / "store"))
    plane, manager, _ = _build(workload, store, snapshot_every=10_000)
    _submit_all(plane, manager, workload)
    manager.run()
    took = plane.after_drain(manager, _is_terminal(manager), set())
    assert not took  # journal far below the cadence
    assert store.snapshots.load() is None
    store.close()


def test_meta_mismatch_refuses_foreign_store(tmp_path):
    from repro.errors import StorageError

    workload = build_workload(SPEC)
    store = Store.open("log", str(tmp_path / "store"))
    plane, __, ___ = _build(workload, store)
    plane.ensure_meta(protocol="process-locking", seed=5)
    store.close()
    store2 = Store.open("log", str(tmp_path / "store"))
    plane2 = PersistencePlane(store2, workload.programs)
    with pytest.raises(StorageError):
        plane2.ensure_meta(protocol="process-locking", seed=99)
    store2.close()
