"""Store facade: repositories, identity, verify, and compaction."""

from __future__ import annotations

import pytest

from repro.errors import StorageError, WalCorruptionError
from repro.storage import Store


def _open(tmp_path, kind="log"):
    return Store.open(kind, str(tmp_path / "store"))


def test_journal_appends_and_reloads(tmp_path):
    store = _open(tmp_path)
    store.journal.append({"kind": "submit", "pid": 1, "program": 0})
    store.journal.append({"kind": "terminal", "pid": 1})
    assert store.journal.appended == 2
    assert len(store.journal) == 2
    store.close()
    again = _open(tmp_path)
    records = again.journal.records()
    assert [r["kind"] for r in records] == ["submit", "terminal"]
    assert again.journal.appended == 0
    again.close()


def test_snapshot_is_a_single_slot(tmp_path):
    store = _open(tmp_path)
    assert store.snapshots.load() is None
    store.snapshots.save({"version": 1})
    store.snapshots.save({"version": 2})
    assert store.snapshots.load() == {"version": 2}
    store.close()
    again = _open(tmp_path)
    assert again.snapshots.load() == {"version": 2}
    again.close()


def test_meta_ensure_writes_then_verifies(tmp_path):
    store = _open(tmp_path)
    store.meta.ensure({"protocol": "process-locking", "seed": 0})
    store.close()
    again = _open(tmp_path)
    again.meta.ensure({"protocol": "process-locking", "seed": 0})
    with pytest.raises(StorageError, match="seed"):
        again.meta.ensure({"protocol": "process-locking", "seed": 7})
    again.close()


def test_subsystem_repositories_are_namespaced(tmp_path):
    store = _open(tmp_path)
    store.subsystem_wal("bank").append({"lsn": 1})
    store.subsystem_wal("shop").append({"lsn": 9})
    store.subsystem_data("bank").append({"key": "k", "value": 3})
    assert store.subsystem_wal("bank").records() == [{"lsn": 1}]
    assert store.subsystem_wal("shop").records() == [{"lsn": 9}]
    assert sorted(store.subsystem_names()) == ["bank", "shop"]
    store.close()


def test_verify_reports_clean_and_corrupt(tmp_path):
    store = _open(tmp_path)
    store.journal.append({"kind": "submit", "pid": 1})
    store.close()
    clean = _open(tmp_path)
    report = clean.verify()
    assert report["ok"]
    assert report["namespaces"]["journal"]["records"] == 1
    clean.close()
    # Flip one byte inside the journal's only frame.
    path = tmp_path / "store" / "journal.log"
    data = bytearray(path.read_bytes())
    data[12] ^= 0xFF
    path.write_bytes(bytes(data))
    with pytest.raises(WalCorruptionError):
        # heal() at open walks the file and trips on the bad CRC.
        _open(tmp_path)


def test_loads_rejects_undecodable_payloads(tmp_path):
    store = _open(tmp_path)
    store.backend.append("journal", b"\xff\xfenot-json")
    with pytest.raises(WalCorruptionError):
        store.journal.records()
    store.close()


def test_compact_drops_decided_journal_and_won_wal(tmp_path):
    store = _open(tmp_path)
    store.meta.ensure({"world": "w"})
    # Journal: pid 1 decided, pid 2 still pending at the watermark.
    store.journal.append({"kind": "submit", "pid": 1, "program": 0})
    store.journal.append({"kind": "submit", "pid": 2, "program": 1})
    store.journal.append({"kind": "terminal", "pid": 1})
    store.snapshots.save({"journal_lsn": 3, "processes": []})
    store.journal.append({"kind": "submit", "pid": 3, "program": 0})
    # Subsystem WAL: txn 1 committed (droppable), txn 2 a loser.
    wal = store.subsystem_wal("bank")
    wal.append({"lsn": 1, "txn_id": 1, "kind": "write", "key": "k"})
    wal.append({"lsn": 2, "txn_id": 1, "kind": "commit"})
    wal.append({"lsn": 3, "txn_id": 2, "kind": "write", "key": "k"})
    # Subsystem data: three versions of one key.
    data = store.subsystem_data("bank")
    data.append({"key": "k", "value": 1})
    data.append({"key": "k", "value": 2})
    data.append({"key": "dead", "value": 9})
    data.append({"key": "dead", "deleted": True})
    report = store.compact()
    journal = store.journal.records()
    # Kept: pid 2's undecided pre-watermark submit + the tail.
    assert [(r["kind"], r["pid"]) for r in journal] == [
        ("submit", 2),
        ("submit", 3),
    ]
    # The snapshot watermark now covers the kept head.
    assert store.snapshots.load()["journal_lsn"] == 1
    # WAL keeps only the loser's records.
    kept_wal = store.subsystem_wal("bank").records()
    assert [r["txn_id"] for r in kept_wal] == [2]
    # Data is last-write-wins; the deleted key is gone entirely.
    assert store.subsystem_data("bank").records() == [
        {"key": "k", "value": 2}
    ]
    assert report["before"]["journal"] == 4
    assert report["after"]["journal"] == 2
    assert report["dropped"]["journal"] == 2
    store.close()


def test_compact_without_snapshot_keeps_journal(tmp_path):
    store = _open(tmp_path)
    store.journal.append({"kind": "submit", "pid": 1, "program": 0})
    store.compact()
    assert len(store.journal.records()) == 1
    store.close()


def test_stats_shape(tmp_path):
    store = _open(tmp_path)
    store.journal.append({"kind": "submit", "pid": 1})
    stats = store.stats()
    assert stats["kind"] == "log"
    assert stats["appends"] == 1
    assert stats["bytes_written"] > 0
    assert stats["healed"] == {}
    store.close()


def test_open_memory_backend(tmp_path):
    store = Store.open("memory", str(tmp_path))
    store.journal.append({"kind": "submit", "pid": 1})
    assert len(store.journal) == 1
    store.close()
