"""Durable subsystem WAL + record store: reload, recovery, validation."""

from __future__ import annotations

import pytest

from repro.errors import SubsystemError, WalCorruptionError
from repro.storage import Store
from repro.subsystems import (
    DurableRecordStore,
    DurableWriteAheadLog,
    SubsystemPool,
    WalKind,
    WriteAheadLog,
    recover_store,
    validate_wal,
)


def _store(tmp_path, kind="log"):
    return Store.open(kind, str(tmp_path / "store"))


def test_durable_wal_reloads_and_continues_lsns(tmp_path):
    store = _store(tmp_path)
    wal = DurableWriteAheadLog(store.subsystem_wal("bank"))
    wal.log_write(1, "k", 0)
    wal.log_commit(1)
    store.close()
    again = _store(tmp_path)
    reloaded = DurableWriteAheadLog(again.subsystem_wal("bank"))
    assert [r.kind for r in reloaded.records] == [
        WalKind.WRITE,
        WalKind.COMMIT,
    ]
    assert reloaded.log_write(2, "k", 5) == 3  # LSNs continue
    again.close()


def test_durable_record_store_replays_last_write_wins(tmp_path):
    store = _store(tmp_path)
    data = DurableRecordStore(store.subsystem_data("bank"))
    data.write("a", 1)
    data.write("a", 2)
    data.write("b", 7)
    data.delete("b")
    store.close()
    again = _store(tmp_path)
    reloaded = DurableRecordStore(again.subsystem_data("bank"))
    assert reloaded.read("a") == 2
    assert reloaded.read("b") == 0  # deleted -> default
    assert "b" not in reloaded
    again.close()


@pytest.mark.parametrize("kind", ("log", "sqlite"))
def test_attach_store_rolls_back_previous_losers(kind, tmp_path):
    store = _store(tmp_path, kind)
    pool = SubsystemPool(store=store)
    subsystem = pool.create("bank", durable=True)
    txn = subsystem.begin()
    txn.write("balance", lambda _: 100)
    txn.commit()
    loser = subsystem.begin()
    loser.write("balance", lambda _: 999)
    # No commit: the process dies here.
    store.flush()
    store.close()

    again = _store(tmp_path, kind)
    pool2 = SubsystemPool()
    subsystem2 = pool2.create("bank", durable=True)
    undone = pool2.attach_store(again)
    assert undone == 1
    assert subsystem2.store.read("balance") == 100
    # The loser got a logged abort, so a further restart is clean.
    assert not subsystem2.wal.losers()
    again.close()
    third = _store(tmp_path, kind)
    pool3 = SubsystemPool(store=third)
    subsystem3 = pool3.create("bank", durable=True)
    assert subsystem3.store.read("balance") == 100
    third.close()


def test_pool_refuses_second_store(tmp_path):
    pool = SubsystemPool(store=_store(tmp_path))
    other = Store.open("memory", str(tmp_path))
    with pytest.raises(SubsystemError):
        pool.attach_store(other)
    # Same store is a no-op.
    assert pool.attach_store(pool.store) == 0


def test_validate_wal_accepts_clean_logs():
    wal = WriteAheadLog()
    wal.log_write(1, "k", 0)
    wal.log_commit(1)
    validate_wal(wal)


def test_validate_wal_rejects_structural_damage():
    wal = WriteAheadLog()
    wal.log_write(1, "k", 0)
    wal._records.append(
        type(wal._records[0])(
            lsn=1, txn_id=2, kind=WalKind.COMMIT
        )  # duplicate LSN breaks append order
    )
    with pytest.raises(WalCorruptionError):
        validate_wal(wal)


def test_validate_wal_rejects_write_without_key():
    wal = WriteAheadLog()
    wal._records.append(
        type(
            "X", (), {}
        )  # not a WalRecord at all
    )
    with pytest.raises(WalCorruptionError):
        validate_wal(wal)


def test_recover_store_surfaces_typed_corruption(tmp_path):
    store = _store(tmp_path)
    repo = store.subsystem_wal("bank")
    repo.append({"lsn": "not-an-int", "txn_id": 1, "kind": "write"})
    with pytest.raises(WalCorruptionError):
        DurableWriteAheadLog(repo)
    store.close()


def test_recover_store_validates_before_undoing():
    from repro.subsystems import RecordStore

    wal = WriteAheadLog()
    wal.log_write(0, "k", 1)  # txn_id 0 is structurally invalid
    with pytest.raises(WalCorruptionError):
        recover_store(RecordStore(), wal)
