"""Restart recovery through the service: in-thread and kill -9.

The contract under test is the one ``docs/persistence.md`` states:
every submission acknowledged by a durable server survives its death —
after a restart on the same store, each acknowledged pid reaches a
terminal state (commit, abort-with-compensation, or cancel), the pid
sequence never regresses, and the spliced schedule still passes the
``check`` battery (completeness, CT, P-RC).
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.server.service import ProcessLockingService, ServiceConfig
from repro.sim.workload import WorkloadSpec

SPEC = WorkloadSpec(
    n_processes=6,
    conflict_density=0.4,
    failure_probability=0.08,
    grounded=True,
    seed=5,
)


def _service(tmp_path, **overrides) -> ProcessLockingService:
    config = ServiceConfig(
        spec=SPEC,
        seed=5,
        store="log",
        store_path=str(tmp_path / "store"),
        store_fsync="never",
        snapshot_every=overrides.pop("snapshot_every", 32),
        **overrides,
    )
    return ProcessLockingService(config).start()


class TestInThreadRestart:
    def test_clean_stop_then_restart_restores_everything(
        self, tmp_path
    ):
        first = _service(tmp_path)
        outcome = first.execute(
            {"cmd": "submit", "count": 6, "wait": True}
        ).result(timeout=60)
        first.stop()
        second = _service(tmp_path)
        try:
            assert second.recovery is not None
            assert second.recovery.restored == 6
            for row in outcome["outcomes"]:
                status = second.execute(
                    {"cmd": "status", "pid": row["pid"]}
                ).result(timeout=30)
                assert status["state"] == "done"
                assert status["outcome"] == row["outcome"]
            report = second.execute({"cmd": "check"}).result(
                timeout=30
            )
            assert report["complete"]
            assert report["correct_termination"]
            assert report["process_recoverable"]
            fresh = second.execute(
                {"cmd": "submit", "count": 1}
            ).result(timeout=30)
            assert fresh["pids"] == [7]
        finally:
            second.stop()

    def test_abrupt_death_mid_flight_recovers(self, tmp_path):
        """Engine thread killed between ticks: no drain, no close."""
        first = _service(tmp_path, time_scale=30.0, snapshot_every=8)
        pids = []
        for k in range(6):
            body = first.execute(
                {"cmd": "submit", "program": k, "at": float(k)}
            ).result(timeout=30)
            pids += body["pids"]
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            stats = first.execute({"cmd": "stats"}).result(timeout=30)
            if stats["manager"]["committed"] >= 1:
                break
            time.sleep(0.05)
        else:
            pytest.fail("no process committed before the kill")
        # Kill the engine thread without drain/flush/close — the
        # in-thread analog of SIGKILL (unbuffered appends are already
        # in the files; the store object is simply abandoned).
        first._stop.set()
        first._thread.join(timeout=10)
        second = _service(tmp_path, snapshot_every=8)
        try:
            assert second.recovery is not None
            assert second.recovery.recovered_anything
            # Force a drain-to-quiescence pass, then assert terminality.
            second.execute({"cmd": "ping"}).result(timeout=60)
            for pid in pids:
                status = second.execute(
                    {"cmd": "status", "pid": pid}
                ).result(timeout=30)
                assert status["state"] == "done", (
                    f"P{pid} not terminal after restart: {status}"
                )
            report = second.execute({"cmd": "check"}).result(
                timeout=30
            )
            assert report["complete"]
            assert report["correct_termination"]
            assert report["process_recoverable"]
        finally:
            second.stop()

    def test_cancelled_outcome_survives_restart(self, tmp_path):
        first = _service(tmp_path, time_scale=5.0)
        body = first.execute(
            {"cmd": "submit", "count": 1, "at": 50.0}
        ).result(timeout=30)
        (pid,) = body["pids"]
        cancelled = first.execute(
            {"cmd": "cancel", "pid": pid}
        ).result(timeout=30)
        assert cancelled["cancelled"]
        first.stop()
        second = _service(tmp_path)
        try:
            status = second.execute(
                {"cmd": "status", "pid": pid}
            ).result(timeout=30)
            assert status["state"] == "done"
            assert status["outcome"] == "cancelled"
        finally:
            second.stop()


@pytest.mark.slow
class TestKillNine:
    """A real server process, a real SIGKILL, a real restart."""

    def _spawn(self, store_path, time_scale):
        env = dict(os.environ)
        src = os.path.join(os.getcwd(), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        env.pop("REPRO_STORE", None)
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--processes",
                "6",
                "--seed",
                "5",
                "--store",
                "log",
                "--store-path",
                str(store_path),
                "--snapshot-every",
                "16",
                "--time-scale",
                str(time_scale),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        port = None
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            if not line:
                break
            match = re.search(
                r"listening on [\d.]+:(\d+)", line
            )
            if match:
                port = int(match.group(1))
                break
        if port is None:
            process.kill()
            pytest.fail("server never announced its port")
        return process, port

    def test_kill_nine_mid_workload_recovers(self, tmp_path):
        from repro.client import ServiceClient

        store_path = tmp_path / "store"
        server, port = self._spawn(store_path, time_scale=25.0)
        submitted = []
        try:
            with ServiceClient("127.0.0.1", port, timeout=30) as client:
                for k in range(8):
                    body = client.submit(
                        program=k, count=3, at=float(2 * k)
                    )
                    submitted += body["pids"]
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    stats = client.stats()
                    committed = stats["manager"]["committed"]
                    if 2 <= committed < len(submitted):
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail(
                        "workload never reached the kill window"
                    )
        finally:
            # The moment under test: no drain, no flush, no goodbye.
            server.send_signal(signal.SIGKILL)
            server.wait(timeout=30)

        restarted, port = self._spawn(store_path, time_scale=0.0)
        try:
            with ServiceClient("127.0.0.1", port, timeout=60) as client:
                client.ping()  # eager mode: one batch drains fully
                for pid in submitted:
                    status = client.status(pid)
                    assert status["state"] == "done", (
                        f"P{pid} not terminal after kill -9 restart:"
                        f" {status}"
                    )
                report = client.check(stride=4)
                assert report["complete"]
                assert report["correct_termination"]
                assert report["process_recoverable"]
                assert report["violations"] == 0
                fresh = client.submit(count=1, wait=True)
                assert fresh["pids"] == [max(submitted) + 1]
                stats = client.stats()
                assert stats["store"]["kind"] == "log"
                assert stats["store"]["recovered"]["restored"] > 0
                client.drain()
        finally:
            restarted.terminate()
            restarted.wait(timeout=30)
