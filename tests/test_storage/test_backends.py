"""Backend contract: memory, append-only log, and sqlite behave alike."""

from __future__ import annotations

import os

import pytest

from repro.errors import StorageError, WalCorruptionError
from repro.storage import (
    AppendLogBackend,
    MemoryBackend,
    SqliteBackend,
    encode_frame,
    open_backend,
)


def _make(kind: str, tmp_path):
    if kind == "memory":
        return MemoryBackend()
    if kind == "log":
        return AppendLogBackend(str(tmp_path / "store"))
    return SqliteBackend(str(tmp_path / "store.db"))


KINDS = ("memory", "log", "sqlite")


@pytest.mark.parametrize("kind", KINDS)
def test_append_read_roundtrip(kind, tmp_path):
    backend = _make(kind, tmp_path)
    backend.append("journal", b"one")
    backend.append("journal", b"two")
    backend.append("sswal/bank", b"iii")
    assert backend.read_all("journal") == [b"one", b"two"]
    assert backend.read_all("sswal/bank") == [b"iii"]
    assert backend.read_all("absent") == []
    assert set(backend.namespaces()) == {"journal", "sswal/bank"}
    assert backend.appends == 3
    backend.close()


@pytest.mark.parametrize("kind", KINDS)
def test_replace_swaps_whole_namespace(kind, tmp_path):
    backend = _make(kind, tmp_path)
    backend.append("snapshot", b"old")
    backend.replace("snapshot", [b"new"])
    assert backend.read_all("snapshot") == [b"new"]
    backend.close()


@pytest.mark.parametrize("kind", ("log", "sqlite"))
def test_data_survives_reopen(kind, tmp_path):
    backend = _make(kind, tmp_path)
    backend.append("journal", b"durable")
    backend.close()
    again = _make(kind, tmp_path)
    assert again.read_all("journal") == [b"durable"]
    again.append("journal", b"more")
    again.close()
    third = _make(kind, tmp_path)
    assert third.read_all("journal") == [b"durable", b"more"]
    third.close()


@pytest.mark.parametrize("kind", ("log", "sqlite"))
def test_close_is_idempotent(kind, tmp_path):
    backend = _make(kind, tmp_path)
    backend.append("journal", b"x")
    backend.close()
    backend.close()
    backend.flush()


def test_log_heal_truncates_torn_tail(tmp_path):
    backend = AppendLogBackend(str(tmp_path / "store"))
    backend.append("journal", b"keep-me")
    backend.close()
    path = tmp_path / "store" / "journal.log"
    pristine = path.read_bytes()
    path.write_bytes(pristine + encode_frame(b"torn")[:-2])
    again = AppendLogBackend(str(tmp_path / "store"))
    healed = again.heal()
    assert healed == {"journal": len(encode_frame(b"torn")) - 2}
    assert again.read_all("journal") == [b"keep-me"]
    again.close()
    assert path.read_bytes() == pristine


def test_log_corrupt_frame_raises_typed_error(tmp_path):
    backend = AppendLogBackend(str(tmp_path / "store"))
    backend.append("journal", b"payload")
    backend.close()
    path = tmp_path / "store" / "journal.log"
    data = bytearray(path.read_bytes())
    data[-1] ^= 0xFF
    path.write_bytes(bytes(data))
    again = AppendLogBackend(str(tmp_path / "store"))
    with pytest.raises(WalCorruptionError):
        again.read_all("journal")


def test_sqlite_corrupt_payload_raises_typed_error(tmp_path):
    backend = SqliteBackend(str(tmp_path / "store.db"))
    backend.append("journal", b"payload")
    backend.flush()
    backend._conn.execute(
        "UPDATE frames SET payload = ? WHERE ns = 'journal'",
        (b"tampered",),
    )
    backend._conn.commit()
    with pytest.raises(WalCorruptionError):
        backend.read_all("journal")
    backend.close()


def test_log_namespace_maps_to_filesystem_safely(tmp_path):
    backend = AppendLogBackend(str(tmp_path / "store"))
    backend.append("sswal/bank", b"x")
    backend.close()
    assert (tmp_path / "store" / "sswal@bank.log").exists()
    again = AppendLogBackend(str(tmp_path / "store"))
    assert again.read_all("sswal/bank") == [b"x"]
    again.close()


def test_log_rejects_unsafe_namespaces(tmp_path):
    backend = AppendLogBackend(str(tmp_path / "store"))
    with pytest.raises(StorageError):
        backend.append("evil@ns", b"x")
    with pytest.raises(StorageError):
        backend.append(".hidden", b"x")


def test_fsync_policies_count_syncs(tmp_path):
    always = AppendLogBackend(
        str(tmp_path / "always"), fsync="always"
    )
    always.append("journal", b"a")
    always.append("journal", b"b")
    assert always.fsyncs == 2
    always.close()

    batch = AppendLogBackend(
        str(tmp_path / "batch"), fsync="batch", sync_every=3
    )
    for index in range(7):
        batch.append("journal", b"%d" % index)
    assert batch.fsyncs == 2  # at 3 and 6
    batch.flush()
    assert batch.fsyncs == 3  # the straggler
    batch.close()

    never = AppendLogBackend(str(tmp_path / "never"), fsync="never")
    never.append("journal", b"a")
    never.flush()
    assert never.fsyncs == 0
    never.close()


def test_unbuffered_append_is_visible_without_close(tmp_path):
    """kill -9 semantics: bytes reach the file on append, not close."""
    backend = AppendLogBackend(str(tmp_path / "store"), fsync="never")
    backend.append("journal", b"ack-this")
    size = os.path.getsize(tmp_path / "store" / "journal.log")
    assert size == len(encode_frame(b"ack-this"))
    backend.close()


def test_open_backend_dispatch(tmp_path):
    log = open_backend("log", str(tmp_path / "a"))
    assert log.kind == "log"
    log.close()
    lite = open_backend("sqlite", str(tmp_path / "b"))
    assert lite.kind == "sqlite"
    assert lite.path.endswith("repro.db")
    lite.close()
    mem = open_backend("memory", str(tmp_path / "c"))
    assert mem.kind == "memory"
    with pytest.raises(StorageError):
        open_backend("tape", str(tmp_path / "d"))
