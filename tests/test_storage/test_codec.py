"""Frame codec: the byte-level guarantee everything else stands on.

The central property — proven exhaustively and by hypothesis — is that
truncating a log at *any* byte offset yields, after a scan, a strict
frame prefix of the original records: a partial record is never
surfaced, and only a broken CRC on a *complete* frame counts as
corruption.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WalCorruptionError
from repro.storage import encode_frame, scan_frames
from repro.storage.codec import HEADER_SIZE, MAX_FRAME_PAYLOAD


def _log_bytes(payloads: list[bytes]) -> bytes:
    return b"".join(encode_frame(payload) for payload in payloads)


def test_roundtrip():
    payloads = [b"alpha", b"", b"\x00" * 100, b"omega" * 50]
    result = scan_frames(_log_bytes(payloads))
    assert result.payloads == payloads
    assert not result.torn
    assert result.torn_bytes == 0


def test_empty_input():
    result = scan_frames(b"")
    assert result.payloads == []
    assert not result.torn


def test_torn_header_reported_not_raised():
    data = _log_bytes([b"one"]) + b"\x00\x00"
    result = scan_frames(data)
    assert result.payloads == [b"one"]
    assert result.torn
    assert result.torn_bytes == 2
    assert result.good_bytes == len(data) - 2


def test_torn_payload_reported_not_raised():
    frame = encode_frame(b"a-longer-payload")
    result = scan_frames(frame[:-3])
    assert result.payloads == []
    assert result.torn
    assert result.torn_bytes == len(frame) - 3


def test_crc_mismatch_on_complete_frame_raises():
    data = bytearray(_log_bytes([b"precious"]))
    data[-1] ^= 0xFF
    with pytest.raises(WalCorruptionError) as info:
        scan_frames(bytes(data), namespace="journal")
    assert info.value.namespace == "journal"


def test_absurd_length_raises_instead_of_allocating():
    import struct

    header = struct.pack(">II", MAX_FRAME_PAYLOAD + 1, 0)
    with pytest.raises(WalCorruptionError):
        scan_frames(header + b"\x00" * 64)


def test_every_prefix_truncation_is_a_frame_prefix_exhaustive():
    """All cut points of a small log, exhaustively."""
    payloads = [b"a", b"bb", b"ccc" * 10, b""]
    data = _log_bytes(payloads)
    for cut in range(len(data) + 1):
        result = scan_frames(data[:cut])
        assert result.payloads == payloads[: len(result.payloads)]
        assert result.good_bytes + result.torn_bytes == cut
        # A clean cut at a frame boundary reports no tear.
        if result.torn_bytes == 0:
            assert result.good_bytes == cut


@settings(max_examples=200, deadline=None)
@given(
    payloads=st.lists(st.binary(max_size=64), max_size=8),
    data=st.data(),
)
def test_every_prefix_truncation_is_a_frame_prefix(payloads, data):
    """Hypothesis: arbitrary logs, arbitrary cut points."""
    log = _log_bytes(payloads)
    cut = data.draw(st.integers(min_value=0, max_value=len(log)))
    result = scan_frames(log[:cut])
    assert result.payloads == payloads[: len(result.payloads)]
    assert result.good_bytes + result.torn_bytes == cut


@settings(max_examples=100, deadline=None)
@given(
    payloads=st.lists(
        st.binary(min_size=1, max_size=32), min_size=1, max_size=6
    ),
    data=st.data(),
)
def test_healing_then_rescanning_is_stable(payloads, data):
    """Truncating at good_bytes (what heal does) scans cleanly."""
    log = _log_bytes(payloads)
    cut = data.draw(st.integers(min_value=0, max_value=len(log)))
    first = scan_frames(log[:cut])
    healed = log[: first.good_bytes]
    second = scan_frames(healed)
    assert not second.torn
    assert second.payloads == first.payloads
