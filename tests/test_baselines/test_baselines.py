"""Unit and behavioural tests for the baseline protocols."""

import pytest

from repro.baselines.aca import CascadeAvoidingScheduler
from repro.baselines.osl import PureOrderedSharedLocking
from repro.baselines.s2pl import StrictTwoPhaseLocking
from repro.baselines.serial import SerialScheduler
from repro.core.decisions import AbortVictims, Defer, Grant, SelfAbort
from repro.core.locks import LockMode
from repro.errors import ProtocolError
from repro.process.builder import ProgramBuilder
from repro.scheduler.manager import ManagerConfig, ProcessManager
from tests.conftest import make_process


def mint(protocol, process, name, seq=90):
    from repro.activities.activity import Activity

    return Activity(protocol.registry.get(name), process.pid, seq=seq)


class TestSerialScheduler:
    def test_one_owner_at_a_time(self, registry, conflicts, flat_program):
        protocol = SerialScheduler(registry, conflicts)
        first = make_process(protocol, flat_program, pid=1)
        second = make_process(protocol, flat_program, pid=2)
        a = mint(protocol, first, "reserve")
        assert isinstance(
            protocol.request_activity_lock(first, a, LockMode.C), Grant
        )
        b = mint(protocol, second, "ship")
        decision = protocol.request_activity_lock(second, b, LockMode.C)
        assert isinstance(decision, Defer)
        assert decision.wait_for == frozenset({1})

    def test_owner_released_on_detach(
        self, registry, conflicts, flat_program
    ):
        protocol = SerialScheduler(registry, conflicts)
        first = make_process(protocol, flat_program, pid=1)
        second = make_process(protocol, flat_program, pid=2)
        protocol.request_activity_lock(
            first, mint(protocol, first, "reserve"), LockMode.C
        )
        protocol.detach(first)
        decision = protocol.request_activity_lock(
            second, mint(protocol, second, "reserve"), LockMode.C
        )
        assert isinstance(decision, Grant)

    def test_end_to_end_serial_run(self, registry, conflicts,
                                   flat_program):
        protocol = SerialScheduler(registry, conflicts)
        manager = ProcessManager(protocol, config=ManagerConfig(audit=True))
        manager.submit(flat_program)
        manager.submit(flat_program)
        result = manager.run()
        assert result.stats.committed == 2
        # Fully serial: makespan is the sum of both process durations.
        assert result.makespan == pytest.approx(6.0)


class TestS2PL:
    def test_exclusive_against_conflicts(
        self, registry, conflicts, flat_program
    ):
        protocol = StrictTwoPhaseLocking(registry, conflicts)
        older = make_process(protocol, flat_program, pid=1)
        younger = make_process(protocol, flat_program, pid=2)
        protocol.request_activity_lock(
            older, mint(protocol, older, "reserve"), LockMode.C
        )
        decision = protocol.request_activity_lock(
            younger, mint(protocol, younger, "reserve"), LockMode.C
        )
        # wound-wait: the younger requester waits for the older holder.
        assert isinstance(decision, Defer)

    def test_wound_wait_wounds_younger_holder(
        self, registry, conflicts, flat_program
    ):
        protocol = StrictTwoPhaseLocking(registry, conflicts)
        older = make_process(protocol, flat_program, pid=1)
        younger = make_process(protocol, flat_program, pid=2)
        protocol.request_activity_lock(
            younger, mint(protocol, younger, "reserve"), LockMode.C
        )
        decision = protocol.request_activity_lock(
            older, mint(protocol, older, "reserve"), LockMode.C
        )
        assert isinstance(decision, AbortVictims)
        assert decision.victims == frozenset({younger.pid})

    def test_wait_die_variant_dies(
        self, registry, conflicts, flat_program
    ):
        protocol = StrictTwoPhaseLocking(
            registry, conflicts, variant="wait-die"
        )
        older = make_process(protocol, flat_program, pid=1)
        younger = make_process(protocol, flat_program, pid=2)
        protocol.request_activity_lock(
            older, mint(protocol, older, "reserve"), LockMode.C
        )
        decision = protocol.request_activity_lock(
            younger, mint(protocol, younger, "reserve"), LockMode.C
        )
        assert isinstance(decision, SelfAbort)

    def test_unknown_variant_rejected(self, registry, conflicts):
        with pytest.raises(ProtocolError):
            StrictTwoPhaseLocking(registry, conflicts, variant="bogus")

    def test_non_conflicting_grants(self, registry, conflicts,
                                    flat_program):
        protocol = StrictTwoPhaseLocking(registry, conflicts)
        first = make_process(protocol, flat_program, pid=1)
        second = make_process(protocol, flat_program, pid=2)
        protocol.request_activity_lock(
            first, mint(protocol, first, "reserve"), LockMode.C
        )
        decision = protocol.request_activity_lock(
            second, mint(protocol, second, "ship"), LockMode.C
        )
        assert isinstance(decision, Grant)

    def test_commit_always_granted(self, registry, conflicts,
                                   flat_program):
        protocol = StrictTwoPhaseLocking(registry, conflicts)
        process = make_process(protocol, flat_program, pid=1)
        assert isinstance(protocol.try_commit(process), Grant)

    def test_end_to_end(self, registry, conflicts, order_program,
                        flat_program):
        protocol = StrictTwoPhaseLocking(registry, conflicts)
        manager = ProcessManager(
            protocol, config=ManagerConfig(audit=True), seed=8
        )
        manager.submit(order_program)
        manager.submit(flat_program)
        result = manager.run()
        assert result.stats.committed == 2


class TestPureOsl:
    def test_everything_shares(self, registry, conflicts, flat_program):
        protocol = PureOrderedSharedLocking(registry, conflicts)
        older = make_process(protocol, flat_program, pid=1)
        younger = make_process(protocol, flat_program, pid=2)
        for process in (younger, older):  # even against ts order!
            decision = protocol.request_activity_lock(
                process, mint(protocol, process, "reserve"), LockMode.C
            )
            assert isinstance(decision, Grant)

    def test_relinquish_rule_defers_commit(
        self, registry, conflicts, flat_program
    ):
        protocol = PureOrderedSharedLocking(registry, conflicts)
        older = make_process(protocol, flat_program, pid=1)
        younger = make_process(protocol, flat_program, pid=2)
        protocol.request_activity_lock(
            older, mint(protocol, older, "reserve"), LockMode.C
        )
        protocol.request_activity_lock(
            younger, mint(protocol, younger, "reserve"), LockMode.C
        )
        decision = protocol.try_commit(younger)
        assert isinstance(decision, Defer)
        assert isinstance(protocol.try_commit(older), Grant)

    def test_compensation_cascades_later_sharers(
        self, registry, conflicts, flat_program
    ):
        protocol = PureOrderedSharedLocking(registry, conflicts)
        first = make_process(protocol, flat_program, pid=1)
        second = make_process(protocol, flat_program, pid=2)
        reserved = first.launch("reserve")
        protocol.request_activity_lock(first, reserved, LockMode.C)
        first.on_committed(reserved)
        protocol.request_activity_lock(
            second, mint(protocol, second, "reserve"), LockMode.C
        )
        failed = first.launch("wrap")
        plan = first.on_failed(failed)
        comp = first.make_compensation(plan.compensations[0])
        decision = protocol.request_compensation_lock(first, comp)
        assert isinstance(decision, AbortVictims)
        assert decision.victims == frozenset({second.pid})

    def test_unresolvable_violation_counted(
        self, registry, conflicts, flat_program, order_program
    ):
        from repro.process.state import ProcessState

        protocol = PureOrderedSharedLocking(registry, conflicts)
        first = make_process(protocol, flat_program, pid=1)
        second = make_process(protocol, order_program, pid=2)
        reserved = first.launch("reserve")
        protocol.request_activity_lock(first, reserved, LockMode.C)
        first.on_committed(reserved)
        protocol.request_activity_lock(
            second, mint(protocol, second, "reserve"), LockMode.C
        )
        second.state = ProcessState.COMPLETING  # passed its pivot
        failed = first.launch("wrap")
        plan = first.on_failed(failed)
        comp = first.make_compensation(plan.compensations[0])
        decision = protocol.request_compensation_lock(first, comp)
        # The completing sharer cannot be aborted: violation counted,
        # compensation proceeds.
        assert isinstance(decision, Grant)
        assert protocol.stats.unresolvable == 1


class TestAca:
    def test_aca_is_rigorous_s2pl(self, registry, conflicts):
        """ACA degenerates to rigorousness at activity granularity."""
        protocol = CascadeAvoidingScheduler(registry, conflicts)
        assert isinstance(protocol, StrictTwoPhaseLocking)
        assert protocol.variant == "wound-wait"

    def test_never_shares_conflicting_locks(
        self, registry, conflicts, flat_program
    ):
        protocol = CascadeAvoidingScheduler(registry, conflicts)
        older = make_process(protocol, flat_program, pid=1)
        younger = make_process(protocol, flat_program, pid=2)
        protocol.request_activity_lock(
            older, mint(protocol, older, "reserve"), LockMode.C
        )
        decision = protocol.request_activity_lock(
            younger, mint(protocol, younger, "reserve"), LockMode.C
        )
        assert not isinstance(decision, Grant)

    def test_no_cascading_compensations(
        self, registry, conflicts, flat_program
    ):
        """No sharing means a compensation can never have victims."""
        protocol = CascadeAvoidingScheduler(registry, conflicts)
        manager = ProcessManager(
            protocol, config=ManagerConfig(audit=True), seed=3
        )
        for __ in range(3):
            manager.submit(flat_program)
        result = manager.run()
        assert result.stats.committed == 3
