"""Flight-recorder tests: ring bounds, lazy flattening, dump format."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import FlightRecorder, read_jsonl, replay_metrics
from repro.obs.events import (
    ActivityClassified,
    ProcessCommitted,
    ProcessInitiated,
)


def test_capacity_must_be_positive():
    with pytest.raises(ValueError, match="positive"):
        FlightRecorder(0)


def test_ring_keeps_only_the_last_n_events():
    flight = FlightRecorder(capacity=3)
    for i in range(10):
        flight.append(i, float(i), ProcessInitiated(pid=i, timestamp=i))
    assert len(flight) == 3
    assert flight.appended == 10
    records = flight.snapshot()
    assert [r["seq"] for r in records] == [7, 8, 9]
    assert all(r["kind"] == "process.init" for r in records)
    assert flight.dumps == 1


def test_snapshot_is_strict_json_even_with_infinite_wcc():
    flight = FlightRecorder(capacity=4)
    flight.append(0, 1.0, ActivityClassified(
        pid=1, incarnation=0, activity="reserve", mode="regular",
        wcc=math.inf, threshold=math.inf,
        pseudo_pivot=False, real_pivot=False,
    ))
    records = flight.snapshot()
    text = json.dumps(records, allow_nan=False)  # must not raise
    assert "Infinity" in text  # the string stand-in, not the constant

    from repro.obs.export import _restore

    restored = [_restore(r) for r in records]
    assert restored[0]["wcc"] == math.inf


def test_dump_jsonl_round_trips_through_readers(tmp_path):
    flight = FlightRecorder(capacity=8)
    flight.append(0, 0.0, ProcessInitiated(pid=1, timestamp=1))
    flight.append(1, 2.0, ProcessCommitted(pid=1, incarnation=0))
    path = tmp_path / "flight.jsonl"
    written = flight.dump_jsonl(path)
    assert written == 2

    records = read_jsonl(path)
    assert [r["kind"] for r in records] == [
        "process.init", "process.commit",
    ]
    metrics = replay_metrics(records)
    assert metrics.outcomes.value(("committed",)) == 1
    assert metrics.initiated.total() == 1
