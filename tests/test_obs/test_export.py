"""Exporter tests: JSONL round-trip, Perfetto JSON, wait-for DOT."""

import json

from repro.obs import (
    Tracer,
    export_all,
    perfetto_trace,
    read_jsonl,
    wait_for_dot,
    write_jsonl,
)
from repro.obs.export import TS_SCALE
from repro.sim.runner import run_workload
from repro.sim.workload import WorkloadSpec, build_workload

CONTENDED = WorkloadSpec(
    n_processes=10,
    n_activity_types=6,
    conflict_density=0.6,
    failure_probability=0.05,
    arrival_spacing=0.5,
    seed=7,
)


def traced_run(spec=CONTENDED):
    tracer = Tracer()
    run_workload(build_workload(spec), seed=spec.seed, tracer=tracer)
    return tracer


# ----------------------------------------------------------------------
# hand-built records (format contracts)
# ----------------------------------------------------------------------
def test_perfetto_pairs_spans_by_uid():
    records = [
        {"seq": 0, "t": 1.0, "kind": "activity.start", "pid": 1,
         "incarnation": 0, "activity": "reserve", "uid": 11,
         "compensation": False},
        {"seq": 1, "t": 3.5, "kind": "activity.commit", "pid": 1,
         "incarnation": 0, "activity": "reserve", "uid": 11,
         "compensation": False},
    ]
    trace = perfetto_trace(records)
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert len(spans) == 1
    (span,) = spans
    assert span["name"] == "reserve"
    assert span["ts"] == 1.0 * TS_SCALE
    assert span["dur"] == 2.5 * TS_SCALE
    assert span["args"]["outcome"] == "activity.commit"
    # The process got a metadata track naming it P1.
    meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
    assert meta[0]["args"]["name"] == "P1"


def test_perfetto_closes_dangling_spans_at_trace_end():
    records = [
        {"seq": 0, "t": 1.0, "kind": "activity.start", "pid": 1,
         "incarnation": 0, "activity": "ship", "uid": 5,
         "compensation": False},
        {"seq": 1, "t": 9.0, "kind": "process.commit", "pid": 2,
         "incarnation": 0},
    ]
    spans = [
        e for e in perfetto_trace(records)["traceEvents"]
        if e["ph"] == "X"
    ]
    assert spans[0]["args"]["outcome"] == "open"
    assert spans[0]["dur"] == 8.0 * TS_SCALE


def test_wait_for_dot_snapshots_peak_contention():
    def edge(seq, t, op, waiter, blockers):
        return {"seq": seq, "t": t, "kind": "wait.edge", "op": op,
                "waiter": waiter, "blockers": blockers, "request":
                "regular", "activity": "reserve", "reason": "x"}

    records = [
        edge(1, 1.0, "insert", 3, [1]),
        edge(2, 2.0, "insert", 4, [1, 2]),  # peak: 3 edges
        edge(1, 3.0, "delete", 3, [1]),
        edge(2, 4.0, "delete", 4, [1, 2]),
    ]
    dot = wait_for_dot(records)
    assert dot.startswith("digraph waitfor {")
    assert "@ vt 2" in dot
    assert "p3 -> p1" in dot and "p4 -> p2" in dot
    # ``at`` replays up to a cut-off instead of taking the peak.
    late = wait_for_dot(records, at=3.5)
    assert "p3 -> p1" not in late and "p4 -> p1" in late


def test_jsonl_round_trip(tmp_path):
    tracer = Tracer()
    tracer.bind_clock(lambda: 2.0)
    from repro.obs.events import ProcessInitiated

    tracer.emit(ProcessInitiated(pid=1, timestamp=3))
    path = write_jsonl(tracer.records(), tmp_path / "events.jsonl")
    restored = read_jsonl(path)
    # JSON normalizes tuples to lists; compare through one dump cycle.
    assert restored == json.loads(json.dumps(tracer.records()))


# ----------------------------------------------------------------------
# a real traced run end to end
# ----------------------------------------------------------------------
class TestExportAll:
    def test_writes_every_artifact(self, tmp_path):
        tracer = traced_run()
        assert len(tracer) > 0
        paths = export_all(tracer, tmp_path / "out")
        assert sorted(paths) == [
            "events", "perfetto", "series", "waitfor"
        ]
        for path in paths.values():
            assert path.exists() and path.stat().st_size > 0

    def test_perfetto_json_is_strict_and_well_formed(self, tmp_path):
        tracer = traced_run()
        paths = export_all(tracer, tmp_path / "out")
        # Strict parse — no NaN/Infinity tokens may leak into the file.
        trace = json.loads(
            paths["perfetto"].read_text(), parse_constant=_reject
        )
        events = trace["traceEvents"]
        assert events
        assert {e["ph"] for e in events} <= {"M", "X", "i", "C"}
        for event in events:
            if event["ph"] == "X":
                assert event["dur"] >= 0
            if event["ph"] != "M":
                assert event.get("ts", 0) >= 0

    def test_series_json_has_gauges_and_histograms(self, tmp_path):
        tracer = traced_run()
        paths = export_all(tracer, tmp_path / "out")
        series = json.loads(paths["series"].read_text())
        for gauge in ("parked", "inflight", "live", "locks"):
            assert gauge in series["gauges"]
        assert series["histograms"]["defer_reasons"]

    def test_jsonl_matches_tracer_records(self, tmp_path):
        tracer = traced_run()
        paths = export_all(tracer, tmp_path / "out")
        restored = read_jsonl(paths["events"])
        assert len(restored) == len(tracer)
        assert restored == json.loads(json.dumps(tracer.records()))

    def test_no_series_tracer_skips_series_artifact(self, tmp_path):
        tracer = Tracer(collect_series=False)
        run_workload(
            build_workload(CONTENDED), seed=CONTENDED.seed, tracer=tracer
        )
        paths = export_all(tracer, tmp_path / "out")
        assert "series" not in paths


def _reject(token):
    raise AssertionError(f"non-strict JSON constant in export: {token}")
