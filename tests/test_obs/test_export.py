"""Exporter tests: JSONL round-trip, Perfetto JSON, wait-for DOT."""

import json

from repro.obs import (
    Tracer,
    export_all,
    perfetto_trace,
    read_jsonl,
    wait_for_dot,
    write_jsonl,
)
from repro.obs.export import TS_SCALE
from repro.sim.runner import run_workload
from repro.sim.workload import WorkloadSpec, build_workload

CONTENDED = WorkloadSpec(
    n_processes=10,
    n_activity_types=6,
    conflict_density=0.6,
    failure_probability=0.05,
    arrival_spacing=0.5,
    seed=7,
)


def traced_run(spec=CONTENDED):
    tracer = Tracer()
    run_workload(build_workload(spec), seed=spec.seed, tracer=tracer)
    return tracer


# ----------------------------------------------------------------------
# hand-built records (format contracts)
# ----------------------------------------------------------------------
def test_perfetto_pairs_spans_by_uid():
    records = [
        {"seq": 0, "t": 1.0, "kind": "activity.start", "pid": 1,
         "incarnation": 0, "activity": "reserve", "uid": 11,
         "compensation": False},
        {"seq": 1, "t": 3.5, "kind": "activity.commit", "pid": 1,
         "incarnation": 0, "activity": "reserve", "uid": 11,
         "compensation": False},
    ]
    trace = perfetto_trace(records)
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert len(spans) == 1
    (span,) = spans
    assert span["name"] == "reserve"
    assert span["ts"] == 1.0 * TS_SCALE
    assert span["dur"] == 2.5 * TS_SCALE
    assert span["args"]["outcome"] == "activity.commit"
    # The process got a metadata track naming it P1.
    meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
    assert meta[0]["args"]["name"] == "P1"


def test_perfetto_closes_dangling_spans_at_trace_end():
    records = [
        {"seq": 0, "t": 1.0, "kind": "activity.start", "pid": 1,
         "incarnation": 0, "activity": "ship", "uid": 5,
         "compensation": False},
        {"seq": 1, "t": 9.0, "kind": "process.commit", "pid": 2,
         "incarnation": 0},
    ]
    spans = [
        e for e in perfetto_trace(records)["traceEvents"]
        if e["ph"] == "X"
    ]
    assert spans[0]["args"]["outcome"] == "open"
    assert spans[0]["dur"] == 8.0 * TS_SCALE


def test_wait_for_dot_snapshots_peak_contention():
    def edge(seq, t, op, waiter, blockers):
        return {"seq": seq, "t": t, "kind": "wait.edge", "op": op,
                "waiter": waiter, "blockers": blockers, "request":
                "regular", "activity": "reserve", "reason": "x"}

    records = [
        edge(1, 1.0, "insert", 3, [1]),
        edge(2, 2.0, "insert", 4, [1, 2]),  # peak: 3 edges
        edge(1, 3.0, "delete", 3, [1]),
        edge(2, 4.0, "delete", 4, [1, 2]),
    ]
    dot = wait_for_dot(records)
    assert dot.startswith("digraph waitfor {")
    assert "@ vt 2" in dot
    assert "p3 -> p1" in dot and "p4 -> p2" in dot
    # ``at`` replays up to a cut-off instead of taking the peak.
    late = wait_for_dot(records, at=3.5)
    assert "p3 -> p1" not in late and "p4 -> p1" in late


def test_jsonl_round_trip(tmp_path):
    tracer = Tracer()
    tracer.bind_clock(lambda: 2.0)
    from repro.obs.events import ProcessInitiated

    tracer.emit(ProcessInitiated(pid=1, timestamp=3))
    path = write_jsonl(tracer.records(), tmp_path / "events.jsonl")
    restored = read_jsonl(path)
    # JSON normalizes tuples to lists; compare through one dump cycle.
    assert restored == json.loads(json.dumps(tracer.records()))


# ----------------------------------------------------------------------
# a real traced run end to end
# ----------------------------------------------------------------------
class TestExportAll:
    def test_writes_every_artifact(self, tmp_path):
        tracer = traced_run()
        assert len(tracer) > 0
        paths = export_all(tracer, tmp_path / "out")
        assert sorted(paths) == [
            "events", "perfetto", "series", "waitfor"
        ]
        for path in paths.values():
            assert path.exists() and path.stat().st_size > 0

    def test_perfetto_json_is_strict_and_well_formed(self, tmp_path):
        tracer = traced_run()
        paths = export_all(tracer, tmp_path / "out")
        # Strict parse — no NaN/Infinity tokens may leak into the file.
        trace = json.loads(
            paths["perfetto"].read_text(), parse_constant=_reject
        )
        events = trace["traceEvents"]
        assert events
        assert {e["ph"] for e in events} <= {"M", "X", "i", "C"}
        for event in events:
            if event["ph"] == "X":
                assert event["dur"] >= 0
            if event["ph"] != "M":
                assert event.get("ts", 0) >= 0

    def test_series_json_has_gauges_and_histograms(self, tmp_path):
        tracer = traced_run()
        paths = export_all(tracer, tmp_path / "out")
        series = json.loads(paths["series"].read_text())
        for gauge in ("parked", "inflight", "live", "locks"):
            assert gauge in series["gauges"]
        assert series["histograms"]["defer_reasons"]

    def test_jsonl_matches_tracer_records(self, tmp_path):
        tracer = traced_run()
        paths = export_all(tracer, tmp_path / "out")
        restored = read_jsonl(paths["events"])
        assert len(restored) == len(tracer)
        assert restored == json.loads(json.dumps(tracer.records()))

    def test_no_series_tracer_skips_series_artifact(self, tmp_path):
        tracer = Tracer(collect_series=False)
        run_workload(
            build_workload(CONTENDED), seed=CONTENDED.seed, tracer=tracer
        )
        paths = export_all(tracer, tmp_path / "out")
        assert "series" not in paths


def _reject(token):
    raise AssertionError(f"non-strict JSON constant in export: {token}")


# ----------------------------------------------------------------------
# record -> event restoration (every dataclass round-trips)
# ----------------------------------------------------------------------
import math

import pytest

from repro.obs import events_from_records, record_to_event
from repro.obs.events import EVENT_TYPES, Holder
from repro.obs import events as ev

#: One exemplar per event class, exercising the awkward field shapes:
#: Holder tuples, plain int/str tuples, optional fields, non-finite
#: floats, and nested dicts.
EXEMPLARS = [
    ev.ProcessSubmitted(pid=1),
    ev.ProcessInitiated(pid=1, timestamp=3, incarnation=1),
    ev.ProcessCommitted(pid=1, incarnation=1),
    ev.AbortBegun(pid=1, incarnation=0, cause="cascade"),
    ev.ProcessAborted(pid=1, incarnation=0, resubmit=True),
    ev.ProcessCancelled(pid=1, initiated=False),
    ev.ProcessResubmitted(pid=1, incarnation=1, timestamp=3),
    ev.LockGranted(
        pid=1, incarnation=0, request="regular", activity="reserve",
        uid=9, mode="w", position=2,
    ),
    ev.LockDeferred(
        pid=1, incarnation=0, timestamp=3, request="regular",
        activity="reserve", uid=9, mode="w", reason="conflict",
        rule="Comp-Rule",
        blockers=(Holder(pid=2, timestamp=1, modes="w"),),
    ),
    ev.CascadeRequested(
        pid=1, incarnation=0, timestamp=3, request="commit",
        activity=None, uid=None, mode=None,
        victims=(
            Holder(pid=2, timestamp=1),
            Holder(pid=3, timestamp=2, modes="rw"),
        ),
    ),
    ev.SelfAbortDecision(
        pid=1, incarnation=0, timestamp=3, request="regular",
        activity="reserve", reason="older holder", rule="WW",
    ),
    ev.LockConverted(pid=1, type_name="reserve", position=0),
    ev.ActivityClassified(
        pid=1, incarnation=0, activity="reserve", mode="regular",
        wcc=math.inf, threshold=math.inf,
        pseudo_pivot=False, real_pivot=True,
    ),
    ev.ActivityStarted(
        pid=1, incarnation=0, activity="reserve", uid=9,
        compensation=False, worker=2,
    ),
    ev.ActivityRetried(pid=1, activity="ship", uid=9, attempt=2),
    ev.ActivityCommitted(
        pid=1, incarnation=0, activity="reserve", uid=9,
        compensation=True,
    ),
    ev.ActivityFailed(pid=1, incarnation=0, activity="charge", uid=9),
    ev.ActivityCancelled(pid=1, incarnation=0, activity="ship", uid=9),
    ev.WaitEdge(
        op="insert", waiter=1, blockers=(2, 3), seq=7,
        request="regular", activity="reserve", reason="conflict",
        shard="bank", worker=0,
    ),
    ev.DeadlockVictim(pid=1, cycle=(1, 2, 3)),
    ev.UnresolvableForced(pid=1, request="commit", cycle=(1, 2)),
    ev.FaultInjected(
        channel="crash", pid=1, activity="reserve",
        detail={"offset": 4.0},
    ),
    ev.BreakerTransition(
        subsystem="bank", from_state="closed", to_state="open",
        reason="failure-threshold", opens=2,
    ),
    ev.AdmissionGate(
        pid=1, op="defer", subsystems=("bank", "shop"), deferrals=3
    ),
    ev.BackpressureEngaged(
        pid=1, op="defer", subsystems=("bank",), deferrals=1
    ),
    ev.DegradationChanged(
        active=True, cap=25.0, reason="breaker-open",
        open_subsystems=("bank",),
    ),
    ev.RetryBudgetExhausted(
        pid=1, activity="ship", uid=9, attempts=5, subsystem="shop"
    ),
    ev.StoreRecovered(
        backend="log", adopted=2, resubmitted=1, restored=5,
        journal_records=120, healed_namespaces=1, seconds=0.004,
    ),
    ev.StoreSnapshot(processes=3, journal_lsn=120),
    ev.StoreTornTail(namespace="sswal/bank", dropped_bytes=17),
]


def test_exemplars_cover_every_event_type():
    assert {type(e).kind for e in EXEMPLARS} == set(EVENT_TYPES)


@pytest.mark.parametrize(
    "event", EXEMPLARS, ids=lambda e: type(e).kind
)
def test_every_event_round_trips_through_jsonl(event, tmp_path):
    """event -> stamped record -> JSONL -> record -> event, equal."""
    tracer = Tracer()
    tracer.bind_clock(lambda: 1.5)
    tracer.emit(event)
    path = write_jsonl(tracer.records(), tmp_path / "one.jsonl")
    (record,) = read_jsonl(path)
    assert record["t"] == 1.5
    assert record_to_event(record) == event


def test_events_from_records_restores_the_whole_stream(tmp_path):
    tracer = Tracer()
    for event in EXEMPLARS:
        tracer.emit(event)
    path = write_jsonl(tracer.records(), tmp_path / "all.jsonl")
    restored = events_from_records(read_jsonl(path))
    assert restored == EXEMPLARS


def test_record_to_event_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown event kind"):
        record_to_event({"seq": 0, "t": 0.0, "kind": "no.such"})


def test_restored_stream_feeds_replay_and_explain(tmp_path):
    """A restored full-run stream drives the downstream consumers."""
    from repro.obs import explain_process, replay_metrics

    tracer = traced_run()
    path = write_jsonl(tracer.records(), tmp_path / "events.jsonl")
    records = read_jsonl(path)
    events = events_from_records(records)
    assert len(events) == len(records)
    metrics = replay_metrics(records)
    assert metrics.events.total() == len(records)
    pid = next(r["pid"] for r in records if "pid" in r)
    assert explain_process(records, pid)
