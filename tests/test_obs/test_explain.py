"""Causal-account replay tests, plus the Figure-1 trace cross-check."""

import math

import pytest

from repro.core.cost_based import figure1_steps_from_trace, figure1_trace
from repro.obs import Tracer, deferred_pids, explain_process
from repro.sim.runner import run_workload
from repro.sim.workload import WorkloadSpec, build_workload

CONTENDED = WorkloadSpec(
    n_processes=12,
    n_activity_types=6,
    conflict_density=0.6,
    failure_probability=0.05,
    arrival_spacing=0.5,
    seed=7,
)


@pytest.fixture(scope="module")
def records():
    tracer = Tracer()
    run_workload(
        build_workload(CONTENDED), seed=CONTENDED.seed, tracer=tracer
    )
    return tracer.records()


class TestDeferredPids:
    def test_most_deferred_first(self, records):
        pids = deferred_pids(records)
        assert pids, "contended workload produced no deferments"
        counts = {}
        for record in records:
            if record["kind"] == "lock.defer":
                counts[record["pid"]] = counts.get(record["pid"], 0) + 1
        assert set(pids) == set(counts)
        assert [counts[p] for p in pids] == sorted(
            counts.values(), reverse=True
        )


class TestExplain:
    def test_names_blocker_mode_and_rule(self, records):
        # Pick a deferment whose blockers still held locks, so the
        # account must name the holder, its timestamp, and its mode.
        defer = next(
            r
            for r in records
            if r["kind"] == "lock.defer"
            and any(b["modes"] for b in r["blockers"])
        )
        text = explain_process(records, defer["pid"])
        blocker = next(b for b in defer["blockers"] if b["modes"])
        assert f"DEFERRED" in text
        assert f"reason '{defer['reason']}'" in text
        assert f"[{defer['rule']}]" in text
        assert (
            f"P{blocker['pid']} (ts {blocker['timestamp']}) "
            f"holding {blocker['modes']}" in text
        )

    def test_account_is_complete(self, records):
        pid = deferred_pids(records)[0]
        text = explain_process(records, pid)
        assert text.startswith(f"P{pid} — causal account")
        assert "submitted" in text
        assert "initiated with timestamp" in text
        assert "deferments:" in text
        assert "final outcome:" in text
        # Every replayed line carries its virtual-time stamp.
        body = [l for l in text.splitlines() if l.startswith("  vt ")]
        assert len(body) >= 3

    def test_parked_duration_attached(self, records):
        # At least one deferment in a contended run waits a nonzero
        # amount of virtual time and reports it.
        texts = [
            explain_process(records, pid)
            for pid in deferred_pids(records)[:5]
        ]
        assert any("; parked for" in text for text in texts)

    def test_cascade_victims_see_their_killer(self, records):
        cascades = [
            r for r in records if r["kind"] == "lock.cascade"
        ]
        if not cascades:
            pytest.skip("workload produced no cascading aborts")
        victim = cascades[0]["victims"][0]["pid"]
        text = explain_process(records, victim)
        assert "CASCADE-ABORTED by" in text
        assert "lost the timestamp comparison" in text

    def test_unknown_pid_raises(self, records):
        with pytest.raises(ValueError, match="no events"):
            explain_process(records, 999_999)


class TestFigure1FromTrace:
    """The live protocol's classifications replay into the same step
    table the paper's Figure-1 algorithm computes symbolically."""

    SPEC = WorkloadSpec(
        n_processes=6,
        n_activity_types=5,
        conflict_density=0.2,
        failure_probability=0.0,
        wcc_threshold=10.0,
        seed=5,
    )

    def test_matches_symbolic_trace(self):
        tracer = Tracer()
        workload = build_workload(self.SPEC)
        run_workload(workload, seed=self.SPEC.seed, tracer=tracer)
        records = tracer.records()
        resubmitted = {
            r["pid"]
            for r in records
            if r["kind"] == "process.resubmit"
        }
        checked = 0
        for pid in sorted(
            {r["pid"] for r in records if r["kind"] == "wcc.classify"}
        ):
            if pid in resubmitted:
                continue  # a resubmission restarts the Wcc accumulator
            replayed = figure1_steps_from_trace(records, pid)
            symbolic = figure1_trace(
                workload.registry,
                [step.activity for step in replayed],
                self.SPEC.wcc_threshold,
            )
            assert len(replayed) == len(symbolic)
            for live, paper in zip(replayed, symbolic):
                assert live.activity == paper.activity
                assert live.treatment is paper.treatment
                assert live.pseudo_pivot == paper.pseudo_pivot
                assert live.real_pivot == paper.real_pivot
                assert live.threshold == paper.threshold
                # The live path charges ``cost + comp`` as one sum, the
                # symbolic path adds them separately — identical up to
                # association order of float addition.
                assert math.isclose(
                    live.wcc_after, paper.wcc_after, rel_tol=1e-9
                )
            checked += 1
        assert checked > 0
