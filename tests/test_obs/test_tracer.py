"""Unit tests for the tracer, its disabled twin, and the series bank."""

from repro.obs import NULL_TRACER, NullTracer, Tracer
from repro.obs.events import (
    EVENT_TYPES,
    ActivityClassified,
    CascadeRequested,
    FaultInjected,
    Holder,
    LockDeferred,
    ProcessSubmitted,
    event_payload,
    rule_for_reason,
)
from repro.obs.series import SeriesBank


def defer_event(pid=1, reason="other-p-holder", activity="reserve"):
    return LockDeferred(
        pid=pid,
        incarnation=0,
        timestamp=pid,
        request="regular",
        activity=activity,
        uid=7,
        mode="C",
        reason=reason,
        rule=rule_for_reason(reason),
        blockers=(Holder(pid=2, timestamp=0, modes="P"),),
    )


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NullTracer.enabled is False
        assert NULL_TRACER.enabled is False
        # Defensive backstop: unguarded calls must not raise.
        NULL_TRACER.emit(ProcessSubmitted(pid=1))
        NULL_TRACER.bind_clock(lambda: 0.0)
        NULL_TRACER.bind_sampler(lambda: {})

    def test_shared_singleton(self):
        assert isinstance(NULL_TRACER, NullTracer)


class TestStamping:
    def test_seq_monotone_and_clock_applied(self):
        tracer = Tracer()
        clock = iter([1.0, 2.5, 2.5])
        tracer.bind_clock(lambda: next(clock))
        for pid in range(3):
            tracer.emit(ProcessSubmitted(pid=pid))
        assert [s.seq for s in tracer.stamped] == [0, 1, 2]
        assert [s.t for s in tracer.stamped] == [1.0, 2.5, 2.5]
        assert len(tracer) == 3

    def test_offset_shifts_stamps(self):
        tracer = Tracer()
        tracer.bind_clock(lambda: 5.0)
        tracer.emit(ProcessSubmitted(pid=1))
        tracer.offset = 100.0
        tracer.emit(ProcessSubmitted(pid=2))
        assert [s.t for s in tracer.stamped] == [5.0, 105.0]

    def test_records_are_flat_dicts(self):
        tracer = Tracer()
        tracer.emit(defer_event())
        (record,) = tracer.records()
        assert record["kind"] == "lock.defer"
        assert record["seq"] == 0
        assert record["t"] == 0.0
        assert record["reason"] == "other-p-holder"
        assert record["rule"] == "Piv-Rule (literal P-lock deferment)"
        assert record["blockers"][0]["modes"] == "P"

    def test_no_series_mode(self):
        tracer = Tracer(collect_series=False)
        tracer.emit(defer_event())
        assert tracer.series is None
        assert len(tracer) == 1


class TestSeries:
    def test_defer_bumps_histograms(self):
        tracer = Tracer()
        tracer.emit(defer_event(reason="other-p-holder"))
        tracer.emit(defer_event(reason="other-p-holder"))
        tracer.emit(defer_event(reason="piv-rule-defer", activity="wrap"))
        hist = tracer.series.histograms
        assert hist["defer_reasons"] == {
            "other-p-holder": 2,
            "piv-rule-defer": 1,
        }
        assert hist["conflicts_by_type"] == {"reserve": 2, "wrap": 1}

    def test_cascade_counts_victims(self):
        tracer = Tracer()
        tracer.emit(
            CascadeRequested(
                pid=1,
                incarnation=0,
                timestamp=1,
                request="regular",
                activity="reserve",
                uid=3,
                mode="C",
                victims=(
                    Holder(pid=2, timestamp=5),
                    Holder(pid=3, timestamp=6),
                ),
            )
        )
        hist = tracer.series.histograms
        assert hist["conflicts_by_type"] == {"reserve": 2}
        assert hist["cascades_by_type"] == {"reserve": 1}

    def test_classify_records_wcc_gauge(self):
        tracer = Tracer()
        tracer.bind_clock(lambda: 4.0)
        tracer.emit(
            ActivityClassified(
                pid=9,
                incarnation=0,
                activity="reserve",
                mode="C",
                wcc=3.0,
                threshold=20.0,
                pseudo_pivot=False,
                real_pivot=False,
            )
        )
        assert tracer.series.gauges["wcc/P9"].points == [(4.0, 3.0)]

    def test_sampler_polled_on_every_emit(self):
        tracer = Tracer()
        parked = iter([0.0, 2.0, 2.0])
        tracer.bind_sampler(lambda: {"parked": next(parked)})
        for pid in range(3):
            tracer.emit(ProcessSubmitted(pid=pid))
        # Consecutive equal samples deduplicate to one point per change.
        assert tracer.series.gauges["parked"].points == [
            (0.0, 0.0),
            (0.0, 2.0),
        ]


class TestSeriesBank:
    def test_gauge_dedup_and_peak(self):
        bank = SeriesBank()
        bank.gauge("depth", 0.0, 1.0)
        bank.gauge("depth", 1.0, 1.0)
        bank.gauge("depth", 2.0, 4.0)
        series = bank.gauges["depth"]
        assert series.points == [(0.0, 1.0), (2.0, 4.0)]
        assert series.peak == 4.0
        assert series.last == 4.0

    def test_to_dict_is_sorted_and_json_shaped(self):
        bank = SeriesBank()
        bank.gauge("b", 0.0, 1.0)
        bank.gauge("a", 0.0, 2.0)
        bank.bump("h", "y")
        bank.bump("h", "x", 3)
        data = bank.to_dict()
        assert list(data["gauges"]) == ["a", "b"]
        assert data["histograms"]["h"] == {"x": 3, "y": 1}


class TestEventContracts:
    def test_registry_covers_every_kind(self):
        for kind, cls in EVENT_TYPES.items():
            assert cls.kind == kind

    def test_payload_excludes_kind_tag(self):
        # ``kind`` is a class attribute, not a dataclass field, so the
        # stamp layer owns the single copy written per record.
        assert event_payload(ProcessSubmitted(pid=4)) == {"pid": 4}

    def test_rules_map_to_paper_names(self):
        assert rule_for_reason("younger-completing-or-p-holder") == (
            "Comp-Rule"
        )
        assert rule_for_reason("commit-on-hold") == (
            "Commit-Rule (lock on hold)"
        )
        assert (
            rule_for_reason("compensation-blocked-by-completing")
            == "C⁻¹-Rule"
        )
        # Unknown tags fall back to themselves, never raise.
        assert rule_for_reason("never-seen") == "never-seen"

    def test_fault_event_detail_defaults(self):
        event = FaultInjected(channel="outage")
        payload = event_payload(event)
        assert payload == {
            "channel": "outage",
            "pid": None,
            "activity": None,
            "detail": {},
        }
