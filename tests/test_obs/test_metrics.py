"""Metrics-plane tests: registry, exposition, parser, reconciliation.

The heavyweight test here is the stats-reconciliation property: a
:class:`~repro.obs.metrics.MetricsTracer` observing a full simulation
(including mid-run client cancels) must derive exactly the counters
:class:`~repro.scheduler.manager.ManagerStats` accumulates directly —
any drift means an emit site and a stats bump disagree about what
happened.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import (
    EventMetrics,
    MetricsRegistry,
    MetricsTracer,
    Tracer,
    histogram_quantile,
    parse_prometheus,
    read_jsonl,
    replay_metrics,
    write_jsonl,
)
from repro.obs.events import (
    ActivityCommitted,
    ActivityRetried,
    LockDeferred,
    LockGranted,
    ProcessCancelled,
    ProcessCommitted,
)
from repro.scheduler.manager import ManagerConfig, make_manager
from repro.sim.runner import make_protocol
from repro.sim.workload import WorkloadSpec, build_workload

CONTENDED = WorkloadSpec(
    n_processes=16,
    n_activity_types=8,
    conflict_density=0.5,
    failure_probability=0.1,
    arrival_spacing=0.5,
    seed=3,
)


# ----------------------------------------------------------------------
# registry primitives
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_accumulates_per_label_child(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "help.", ("kind",))
        c.inc(("a",))
        c.inc(("a",), amount=2)
        c.inc(("b",))
        assert c.value(("a",)) == 3
        assert c.value(("b",)) == 1
        assert c.total() == 4

    def test_counter_rejects_negative_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "help.")
        with pytest.raises(ValueError, match="only go up"):
            c.inc(amount=-1)

    def test_label_arity_is_enforced(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "help.", ("kind",))
        with pytest.raises(ValueError, match="expected labels"):
            c.inc()

    def test_redeclaration_returns_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help.", ("kind",))
        b = reg.counter("x_total", "other help.", ("kind",))
        assert a is b

    def test_conflicting_redeclaration_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "help.", ("kind",))
        with pytest.raises(ValueError, match="re-declared"):
            reg.gauge("x_total", "help.", ("kind",))
        with pytest.raises(ValueError, match="re-declared"):
            reg.counter("x_total", "help.", ("other",))

    def test_histogram_buckets_must_increase(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increase"):
            reg.histogram("h", "help.", buckets=(1.0, 1.0, 2.0))

    def test_histogram_cumulative_counts(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", "help.", buckets=(1.0, 5.0))
        for v in (0.5, 1.0, 3.0, 100.0):
            h.observe(v)
        assert h.cumulative() == [(1.0, 2), (5.0, 3), (math.inf, 4)]


# ----------------------------------------------------------------------
# exposition + parser (round-trip through our own parser)
# ----------------------------------------------------------------------
class TestExposition:
    def _registry(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_x_total", "Events by kind.", ("kind",))
        c.inc(("a",), amount=3)
        c.inc(('we"ird\\label\n',))
        g = reg.gauge("repro_g", "A gauge.")
        g.set(2.5)
        h = reg.histogram("repro_h", "A histogram.", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(9.0)
        return reg

    def test_render_is_deterministic_and_parses(self):
        reg = self._registry()
        text = reg.render_prometheus()
        assert text == self._registry().render_prometheus()
        parsed = parse_prometheus(text)
        assert parsed["repro_x_total"]["type"] == "counter"
        assert (
            parsed["repro_x_total"]["samples"][
                ("repro_x_total", frozenset({("kind", "a")}))
            ]
            == 3
        )
        assert parsed["repro_g"]["samples"][("repro_g", frozenset())] == 2.5
        hist = parsed["repro_h"]["samples"]
        assert hist[("repro_h_bucket", frozenset({("le", "1")}))] == 1
        assert hist[("repro_h_bucket", frozenset({("le", "+Inf")}))] == 2
        assert hist[("repro_h_sum", frozenset())] == 9.5
        assert hist[("repro_h_count", frozenset())] == 2

    def test_label_escaping_round_trips(self):
        text = self._registry().render_prometheus()
        parsed = parse_prometheus(text)
        keys = {
            labels
            for (name, labels) in parsed["repro_x_total"]["samples"]
            if name == "repro_x_total"
        }
        assert frozenset({("kind", 'we"ird\\label\n')}) in keys

    def test_parser_rejects_untyped_samples(self):
        with pytest.raises(ValueError, match="# TYPE"):
            parse_prometheus("repro_x_total 3\n")

    def test_parser_rejects_bad_histogram_suffix(self):
        text = (
            "# TYPE repro_h histogram\n"
            "repro_h_wat 3\n"
        )
        with pytest.raises(ValueError, match="suffix"):
            parse_prometheus(text)

    def test_snapshot_is_strict_json(self):
        snapshot = self._registry().snapshot()
        json.loads(json.dumps(snapshot, allow_nan=False))
        names = [f["name"] for f in snapshot["families"]]
        assert names == ["repro_x_total", "repro_g", "repro_h"]


class TestHistogramQuantile:
    def test_interpolates_within_bucket(self):
        # 10 observations all in (1, 2]: p50 halfway through it.
        cumulative = [(1.0, 0), (2.0, 10), (math.inf, 10)]
        assert histogram_quantile(cumulative, 0.5) == pytest.approx(1.5)

    def test_lowest_bucket_interpolates_from_zero(self):
        cumulative = [(4.0, 8), (math.inf, 8)]
        assert histogram_quantile(cumulative, 0.5) == pytest.approx(2.0)

    def test_overflow_returns_last_finite_bound(self):
        cumulative = [(1.0, 1), (math.inf, 10)]
        assert histogram_quantile(cumulative, 0.99) == 1.0

    def test_empty_histogram_is_nan(self):
        assert math.isnan(histogram_quantile([], 0.5))
        assert math.isnan(
            histogram_quantile([(1.0, 0), (math.inf, 0)], 0.5)
        )


# ----------------------------------------------------------------------
# the event feeder on hand-built streams
# ----------------------------------------------------------------------
class TestEventMetrics:
    def test_lock_wait_pairs_first_defer_with_grant(self):
        m = EventMetrics()
        defer = LockDeferred(
            pid=1, incarnation=0, timestamp=1, request="regular",
            activity="reserve", uid=9, mode="w", reason="conflict",
            rule="Comp-Rule",
        )
        m.observe(2.0, defer)
        m.observe(4.0, defer)  # re-defer: the first park time stands
        m.observe(7.0, LockGranted(
            pid=1, incarnation=0, request="regular",
            activity="reserve", uid=9, mode="w",
        ))
        cumulative = m.lock_wait.cumulative(("regular",))
        assert cumulative[-1][1] == 1
        # waited 5 vt units -> lands in the (2, 5] bucket.
        assert m.lock_wait.cumulative(("regular",))[3] == (5.0, 1)
        assert m.lock_defers.value(("Comp-Rule",)) == 2

    def test_retries_histogram_counts_attempts_per_uid(self):
        m = EventMetrics()
        for attempt in (1, 2, 3):
            m.observe(0.0, ActivityRetried(
                pid=1, activity="ship", uid=5, attempt=attempt
            ))
        m.observe(1.0, ActivityCommitted(
            pid=1, incarnation=0, activity="ship", uid=5
        ))
        m.observe(1.0, ActivityCommitted(
            pid=1, incarnation=0, activity="wrap", uid=6
        ))
        cumulative = m.retries_per_activity.cumulative()
        assert cumulative[-1][1] == 2  # two completed activities
        assert cumulative[0] == (0.0, 1)  # one with zero retries

    def test_cancel_of_running_process_is_not_an_abort_outcome(self):
        m = EventMetrics()
        m.observe(0.0, ProcessCancelled(pid=4, initiated=True))
        from repro.obs.events import AbortBegun, ProcessAborted

        m.observe(0.0, AbortBegun(pid=4, incarnation=0, cause="cancel"))
        m.observe(1.0, ProcessAborted(
            pid=4, incarnation=0, resubmit=False
        ))
        assert m.outcomes.value(("cancelled",)) == 1
        assert m.outcomes.value(("aborted",)) == 0
        assert m.aborts.value(("cancel",)) == 1

    def test_gauge_samples_route_shard_prefixes(self):
        m = EventMetrics()
        m.sample_gauges({
            "parked": 2.0, "inflight": 3.0, "live": 4.0,
            "locks": 5.0, "locks.bank": 1.0, "queue.bank": 6.0,
        })
        assert m.parked_gauge.value() == 2.0
        assert m.locks_by_shard.value(("bank",)) == 1.0
        assert m.queue_depth.value(("bank",)) == 6.0


# ----------------------------------------------------------------------
# stats reconciliation (the satellite property test)
# ----------------------------------------------------------------------
def _run_with_metrics(seed: int, cancel_pids: tuple[int, ...] = ()):
    spec = CONTENDED.with_(seed=seed)
    workload = build_workload(spec)
    protocol = make_protocol("process-locking", workload)
    tracer = MetricsTracer(sinks=(Tracer(),))
    manager = make_manager(
        protocol,
        subsystems=workload.make_subsystems(),
        config=ManagerConfig(max_resubmissions=100_000),
        seed=seed,
        tracer=tracer,
    )
    pids = [
        manager.submit(program, at=workload.arrival_time(i))
        for i, program in enumerate(workload.programs)
    ]
    for index in cancel_pids:
        pid = pids[index]
        # Mid-run cancels: one before its initiation time, the rest
        # while (probably) running — both shapes must reconcile.
        manager.engine.schedule(
            workload.arrival_time(index) + 1.0,
            lambda pid=pid: manager.cancel(pid),
        )
    result = manager.run()
    return result.stats, tracer


@pytest.mark.parametrize("seed", [0, 3, 11])
def test_event_derived_counters_reconcile_with_manager_stats(seed):
    stats, tracer = _run_with_metrics(
        seed, cancel_pids=(0, 4, 9, 15)
    )
    m = tracer.metrics

    assert m.submitted.total() == stats.submitted
    assert m.outcomes.value(("committed",)) == stats.committed
    assert m.outcomes.value(("cancelled",)) == stats.cancellations
    protocol_aborts = (
        m.aborts.value(("cascade",))
        + m.aborts.value(("deadlock",))
        + m.aborts.value(("self",))
    )
    assert protocol_aborts == stats.protocol_aborts
    assert m.aborts.value(("intrinsic",)) == stats.intrinsic_aborts
    assert m.aborts.value(("subprocess",)) == stats.subprocess_aborts
    assert m.resubmitted.total() == stats.resubmissions
    assert m.retries.total() == stats.retries
    assert m.compensations.total() == stats.compensations
    assert m.deadlock_victims.total() == stats.deadlock_victims
    assert m.admission.value(("defer",)) == stats.admissions_deferred
    assert (
        m.backpressure.value(("defer",))
        == stats.admissions_backpressured
    )
    # Every submitted process reached exactly one terminal outcome.
    assert m.outcomes.total() == stats.submitted
    # The cancels actually exercised both counters.
    assert stats.cancellations > 0


def test_tee_leaves_sink_tracer_records_byte_identical(uid_floor):
    """Wrapping a Tracer in the metrics tee must not perturb it."""
    seed = 5
    uid_floor.pin()
    spec = CONTENDED.with_(seed=seed)
    workload = build_workload(spec)
    protocol = make_protocol("process-locking", workload)
    plain = Tracer()
    manager = make_manager(
        protocol, subsystems=workload.make_subsystems(),
        seed=seed, tracer=plain,
    )
    for i, program in enumerate(workload.programs):
        manager.submit(program, at=workload.arrival_time(i))
    manager.run()

    uid_floor.repin()
    workload = build_workload(spec)
    protocol = make_protocol("process-locking", workload)
    sink = Tracer()
    tee = MetricsTracer(sinks=(sink,))
    manager = make_manager(
        protocol, subsystems=workload.make_subsystems(),
        seed=seed, tracer=tee,
    )
    for i, program in enumerate(workload.programs):
        manager.submit(program, at=workload.arrival_time(i))
    manager.run()

    assert json.dumps(plain.records()) == json.dumps(sink.records())


def test_replay_from_jsonl_matches_live_registry(tmp_path):
    """Counter families replayed from disk equal the live ones.

    Sampler-polled gauges are excluded: exported records carry no gauge
    samples (the tracer's series bank holds those), so a replay leaves
    them at zero by design.
    """
    stats, tracer = _run_with_metrics(7, cancel_pids=(2,))
    sink = tracer.sinks[0]
    path = write_jsonl(sink.records(), tmp_path / "events.jsonl")
    replayed = replay_metrics(read_jsonl(path))

    live = tracer.metrics.registry.snapshot()
    rebuilt = replayed.registry.snapshot()
    gauge_families = {
        f["name"] for f in live["families"] if f["type"] == "gauge"
    }
    live_rest = [
        f for f in live["families"] if f["name"] not in gauge_families
    ]
    rebuilt_rest = [
        f for f in rebuilt["families"]
        if f["name"] not in gauge_families
    ]
    assert live_rest == rebuilt_rest
    assert replayed.outcomes.value(("committed",)) == stats.committed


def test_metrics_tracer_offset_propagates_to_sinks():
    sink = Tracer()
    tee = MetricsTracer(sinks=(sink,))
    tee.offset += 12.5
    assert sink.offset == 12.5
    tee.emit(ProcessCommitted(pid=1, incarnation=0))
    assert sink.records()[0]["t"] == 12.5


def test_incremental_shard_depths_match_recompute():
    """The queue-depth gauges come from counters bumped at the
    ``_inflight``/``_parked`` mutation sites; every mid-run sample must
    agree with a brute-force scan of both stores, and a drained manager
    must be back at zero on every shard."""
    spec = CONTENDED.with_(seed=9)
    workload = build_workload(spec)
    protocol = make_protocol("process-locking", workload)
    tracer = MetricsTracer(sinks=(Tracer(),))
    manager = make_manager(
        protocol,
        subsystems=workload.make_subsystems(),
        config=ManagerConfig(max_resubmissions=100_000),
        seed=spec.seed,
        tracer=tracer,
    )
    checked = 0
    incremental = manager._shard_depths

    def checking():
        nonlocal checked
        depths = incremental()
        brute: dict[str, int] = {}
        for flight in manager._inflight.values():
            shard = flight.activity.activity_type.subsystem
            brute[shard] = brute.get(shard, 0) + 1
        for request in manager._parked.values():
            if request.activity is not None:
                shard = request.activity.activity_type.subsystem
                brute[shard] = brute.get(shard, 0) + 1
        assert depths == brute
        checked += 1
        return depths

    manager._shard_depths = checking
    for i, program in enumerate(workload.programs):
        manager.submit(program, at=workload.arrival_time(i))
    manager.run()

    assert checked > 100
    assert all(
        depth == 0 for depth in manager._shard_depth_counts.values()
    )
