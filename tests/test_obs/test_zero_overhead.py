"""Tracing must never perturb a run.

A traced run and an untraced run at the same seed must produce
byte-identical schedules and identical :class:`RunMetrics` — the tracer
observes the simulation, it never participates in it.  These tests pin
that for plain runs, cost-based runs, and full chaos runs (fault
injector with manager crashes), using the shared ``uid_floor`` pairing
fixture.
"""

from repro.faults.harness import canonical_trace
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ActivityFailures,
    FaultPlan,
    ManagerCrash,
    SubsystemOutage,
    compile_plan,
)
from repro.obs import NULL_TRACER, Tracer
from repro.sim.metrics import summarize, summarize_chaos
from repro.sim.runner import run_workload
from repro.sim.workload import WorkloadSpec, build_workload


def paired_runs(spec, uid_floor, protocol="process-locking"):
    """Run ``spec`` untraced then traced from the same uid floor."""
    uid_floor.pin()
    plain = run_workload(build_workload(spec), protocol, seed=spec.seed)
    uid_floor.repin()
    tracer = Tracer()
    traced = run_workload(
        build_workload(spec), protocol, seed=spec.seed, tracer=tracer
    )
    return plain, traced, tracer


class TestRunIdentity:
    def test_schedule_and_metrics_identical(self, uid_floor):
        for seed in (0, 7):
            spec = WorkloadSpec(
                n_processes=10,
                conflict_density=0.5,
                failure_probability=0.05,
                arrival_spacing=0.5,
                seed=seed,
            )
            plain, traced, tracer = paired_runs(spec, uid_floor)
            assert canonical_trace(plain.trace.events) == canonical_trace(
                traced.trace.events
            )
            assert summarize("pl", plain) == summarize("pl", traced)
            assert len(tracer) > 0

    def test_identity_under_cost_based_pressure(self, uid_floor):
        spec = WorkloadSpec(
            n_processes=8,
            conflict_density=0.5,
            wcc_threshold=8.0,
            parallel_probability=0.3,
            seed=3,
        )
        plain, traced, __ = paired_runs(spec, uid_floor)
        assert canonical_trace(plain.trace.events) == canonical_trace(
            traced.trace.events
        )

    def test_identity_for_baselines(self, uid_floor):
        spec = WorkloadSpec(
            n_processes=6, conflict_density=0.4, seed=11
        )
        for protocol in ("s2pl", "serial"):
            plain, traced, tracer = paired_runs(
                spec, uid_floor, protocol
            )
            assert canonical_trace(
                plain.trace.events
            ) == canonical_trace(traced.trace.events)
            assert len(tracer) > 0

    def test_explicit_null_tracer_is_the_default(self, uid_floor):
        spec = WorkloadSpec(n_processes=5, seed=2)
        uid_floor.pin()
        default = run_workload(build_workload(spec), seed=2)
        uid_floor.repin()
        explicit = run_workload(
            build_workload(spec), seed=2, tracer=NULL_TRACER
        )
        assert canonical_trace(default.trace.events) == canonical_trace(
            explicit.trace.events
        )


CHAOS_PLAN = FaultPlan(
    name="obs-chaos",
    failures=ActivityFailures(rate_scale=5.0),
    outages=(
        SubsystemOutage(subsystem="sub0", at_event=15, duration=3.0),
    ),
    manager_crashes=(ManagerCrash(at_event=25),),
)
CHAOS_SPEC = WorkloadSpec(n_processes=6, grounded=True, seed=2)


def run_chaos_pair(uid_floor, seed=11):
    uid_floor.pin()
    plain = FaultInjector(
        build_workload(CHAOS_SPEC),
        "process-locking",
        compile_plan(CHAOS_PLAN, seed),
        seed=seed,
    ).run()
    uid_floor.repin()
    tracer = Tracer()
    traced = FaultInjector(
        build_workload(CHAOS_SPEC),
        "process-locking",
        compile_plan(CHAOS_PLAN, seed),
        seed=seed,
        tracer=tracer,
    ).run()
    return plain, traced, tracer


class TestChaosIdentity:
    def test_chaos_run_identical_under_tracing(self, uid_floor):
        plain, traced, tracer = run_chaos_pair(uid_floor)
        assert canonical_trace(
            plain.result.trace.events
        ) == canonical_trace(traced.result.trace.events)
        assert summarize_chaos("pl", plain) == summarize_chaos(
            "pl", traced
        )
        assert plain.incarnations == traced.incarnations

    def test_stamps_stay_monotone_across_manager_crash(self, uid_floor):
        __, traced, tracer = run_chaos_pair(uid_floor)
        assert traced.incarnations > 1, "plan must crash the manager"
        records = tracer.records()
        times = [r["t"] for r in records]
        assert times == sorted(times)
        channels = {
            r["channel"] for r in records if r["kind"] == "fault.inject"
        }
        assert {"manager-crash", "manager-recover"} <= channels
        assert tracer.offset > 0.0
