"""Unit and identity tests for the phase profiler.

:class:`PhaseProfiler` must (a) attribute every bracketed nanosecond to
exactly one phase — exclusive stack discipline, shares summing to 1.0 —
and (b) observe without participating: an instrumented run's schedule
is byte-identical to a plain run (the profiler wraps instance
attributes only and adds no protocol behavior).
"""

import math

import pytest

from repro.errors import ReproError, SchedulerError
from repro.faults.harness import canonical_trace
from repro.obs import PhaseProfiler, Tracer, run_profiled_workload
from repro.obs.profiling import PHASES, _TracerProxy
from repro.sim.runner import run_workload
from repro.sim.workload import WorkloadSpec, build_workload


def small_spec(seed=5):
    return WorkloadSpec(
        n_processes=10,
        conflict_density=0.5,
        failure_probability=0.05,
        arrival_spacing=0.5,
        seed=seed,
    )


class TestStackDiscipline:
    def test_exclusive_attribution_and_shares(self):
        profiler = PhaseProfiler()
        profiler.begin()
        profiler.enter("grant")
        profiler.enter("wake")  # nested: grant's clock pauses
        profiler.exit()
        profiler.exit()
        profiler.end()
        report = profiler.report()
        assert set(report["phases"]) == set(PHASES)
        total_share = sum(
            phase["share"] for phase in report["phases"].values()
        )
        assert math.isclose(total_share, 1.0, abs_tol=1e-9)
        assert report["phases"]["grant"]["calls"] == 1
        assert report["phases"]["wake"]["calls"] == 1
        assert math.isclose(
            report["total_s"], profiler.total_seconds, abs_tol=0.0
        )

    def test_enter_outside_bracket_is_inert(self):
        profiler = PhaseProfiler()
        profiler.enter("grant")  # submission-time hook firing early
        profiler.exit()
        assert profiler.calls["grant"] == 0
        profiler.begin()
        profiler.end()

    def test_begin_twice_raises(self):
        profiler = PhaseProfiler()
        profiler.begin()
        with pytest.raises(ReproError):
            profiler.begin()

    def test_end_without_begin_raises(self):
        with pytest.raises(ReproError):
            PhaseProfiler().end()

    def test_wrap_attributes_calls(self):
        profiler = PhaseProfiler()
        wrapped = profiler.wrap("deadlock", lambda x: x + 1)
        profiler.begin()
        assert wrapped(1) == 2
        profiler.end()
        assert profiler.calls["deadlock"] == 1
        assert profiler.seconds["deadlock"] >= 0


class TestTracerProxy:
    def test_meters_emit_and_delegates(self):
        profiler = PhaseProfiler()
        tracer = Tracer()
        proxy = _TracerProxy(tracer, profiler)
        assert proxy.enabled is True
        profiler.begin()
        from repro.obs.events import ProcessSubmitted

        proxy.emit(ProcessSubmitted(pid=1))
        profiler.end()
        assert profiler.calls["trace_emit"] == 1
        assert len(tracer) == 1
        # Non-emit attributes pass straight through to the tracer.
        assert proxy.stamped is tracer.stamped


class TestProfiledRuns:
    def test_schedule_byte_identical_to_plain_run(self, uid_floor):
        spec = small_spec()
        uid_floor.pin()
        plain = run_workload(
            build_workload(spec), "process-locking", seed=spec.seed
        )
        uid_floor.repin()
        profiled, profiler = run_profiled_workload(
            build_workload(spec), "process-locking", seed=spec.seed
        )
        assert canonical_trace(plain.trace.events) == canonical_trace(
            profiled.trace.events
        )
        report = profiler.report()
        total_share = sum(
            phase["share"] for phase in report["phases"].values()
        )
        assert math.isclose(total_share, 1.0, abs_tol=1e-9)
        assert report["phases"]["grant"]["calls"] > 0

    def test_traced_profiled_run_identical_and_metered(
        self, uid_floor
    ):
        spec = small_spec(seed=9)
        uid_floor.pin()
        baseline_tracer = Tracer()
        plain = run_workload(
            build_workload(spec),
            "process-locking",
            seed=spec.seed,
            tracer=baseline_tracer,
        )
        uid_floor.repin()
        tracer = Tracer()
        profiled, profiler = run_profiled_workload(
            build_workload(spec),
            "process-locking",
            seed=spec.seed,
            tracer=tracer,
        )
        assert canonical_trace(plain.trace.events) == canonical_trace(
            profiled.trace.events
        )
        assert profiler.calls["trace_emit"] > 0
        assert len(tracer) == len(baseline_tracer)

    def test_arrival_length_mismatch_raises(self):
        spec = small_spec()
        with pytest.raises(SchedulerError):
            run_profiled_workload(
                build_workload(spec),
                "process-locking",
                seed=spec.seed,
                arrivals=[0.0],
            )
