"""Crash-recovery edge cases: awkward states at the crash instant.

The basic recovery tests crash at arbitrary step counts; these target
the states most likely to break splicing and the theory guarantees:

* a crash while a process is **mid-compensation** (ABORTING with its
  abort-process execution under way),
* a crash while a commit request is **parked** behind ordered sharing
  (the process is COMPLETING and must still commit after recovery),
* **back-to-back crashes** — the second manager incarnation crashes
  again before reaching quiescence,
* a **resume race**: a process recovered RUNNING is cascade-aborted by
  an earlier same-time resume callback before its own resume fires.

Every case asserts the spliced end-to-end schedule is complete, CT, and
P-RC.
"""

from __future__ import annotations

from repro.process.state import ProcessState
from repro.scheduler.manager import ManagerConfig, ProcessManager
from repro.scheduler.recovery import crash, recover
from repro.sim.arrivals import poisson_arrivals
from repro.sim.runner import make_protocol
from repro.sim.workload import WorkloadSpec, build_workload
from repro.theory.criteria import (
    has_correct_termination,
    is_process_recoverable,
)


def fresh_manager(workload, seed):
    manager = ProcessManager(
        make_protocol("process-locking", workload),
        config=ManagerConfig(audit=True),
        seed=seed,
    )
    for program in workload.programs:
        manager.submit(program)
    return manager


def run_until(manager, predicate, budget=600):
    """Step one event at a time until ``predicate(manager)`` holds.

    Returns the number of events fired, or ``None`` if the simulation
    drained or the budget ran out first.
    """
    for fired in range(1, budget + 1):
        if manager.engine.run_steps(1) == 0:
            return None
        if predicate(manager):
            return fired
    return None


def recover_fresh(workload, image, seed):
    protocol = make_protocol("process-locking", workload)
    return recover(
        image, protocol, config=ManagerConfig(audit=True), seed=seed
    )


def assert_spliced_and_correct(workload, image, result):
    prior = len(image.trace_events)
    assert result.trace.events[:prior] == image.trace_events
    schedule = result.trace.to_schedule(workload.conflicts.conflict)
    assert schedule.is_complete
    assert has_correct_termination(schedule, stride=2)
    assert is_process_recoverable(schedule)


class TestCrashMidCompensation:
    #: Seed 0 reaches an ABORTING process (compensation under way)
    #: within ~25 events under this spec (verified; deterministic).
    SPEC = WorkloadSpec(
        n_processes=6,
        conflict_density=0.5,
        failure_probability=0.25,
        seed=0,
    )

    def test_crash_while_aborting_still_terminates_correctly(self):
        workload = build_workload(self.SPEC)
        manager = fresh_manager(workload, seed=0)
        steps = run_until(
            manager,
            lambda m: any(
                p.state is ProcessState.ABORTING
                for p in m._processes.values()
            ),
        )
        assert steps is not None, "never observed an ABORTING process"
        aborting = {
            pid
            for pid, process in manager._processes.items()
            if process.state is ProcessState.ABORTING
        }
        image = crash(manager)
        recovered = recover_fresh(workload, image, seed=0)
        result = recovered.run()
        assert_spliced_and_correct(workload, image, result)
        # The interrupted abort-process executions must have finished:
        # an intrinsically aborting process never commits in that
        # incarnation — its record shows the intrinsic abort, or only a
        # resubmitted successor incarnation committed later.
        for pid in aborting:
            record = result.records[pid]
            assert (
                record.intrinsically_aborted_at is not None
                or record.resubmissions > 0
                or record.cascade_aborts > 0
            )


class TestCrashWithParkedCommit:
    #: Seed 8 parks a COMMIT request behind ordered sharing within
    #: ~150 events under this spec (verified; deterministic).
    SPEC = WorkloadSpec(
        n_processes=8,
        conflict_density=0.7,
        failure_probability=0.05,
        seed=8,
    )

    def test_parked_commit_survives_crash_and_commits(self):
        workload = build_workload(self.SPEC)
        manager = fresh_manager(workload, seed=8)
        steps = run_until(
            manager, lambda m: bool(m._parked_commit_pids)
        )
        assert steps is not None, "never observed a parked commit"
        parked = set(manager._parked_commit_pids)
        image = crash(manager)
        recovered = recover_fresh(workload, image, seed=8)
        result = recovered.run()
        assert_spliced_and_correct(workload, image, result)
        # Forward recovery: a process whose commit was parked was
        # COMPLETING, and completing processes must commit.
        for pid in parked:
            assert result.records[pid].committed_at is not None, (
                f"P{pid} had a parked commit but never committed"
            )


class TestBackToBackCrashes:
    SPEC = WorkloadSpec(
        n_processes=6,
        conflict_density=0.4,
        failure_probability=0.08,
        seed=5,
    )

    def test_double_crash_splices_twice(self):
        workload = build_workload(self.SPEC)
        manager = fresh_manager(workload, seed=5)
        manager.engine.run_steps(25)
        first = crash(manager)
        second_manager = recover_fresh(workload, first, seed=6)
        # Crash again almost immediately — the second incarnation has
        # only re-adopted its processes and done a little work.
        second_manager.engine.run_steps(10)
        second = crash(second_manager)
        assert second.trace_events[: len(first.trace_events)] == (
            first.trace_events
        )
        third_manager = recover_fresh(workload, second, seed=7)
        result = third_manager.run()
        assert_spliced_and_correct(workload, second, result)
        # And the full three-incarnation splice holds end to end.
        assert result.trace.events[: len(first.trace_events)] == (
            first.trace_events
        )

    def test_immediate_recrash_before_any_step(self):
        workload = build_workload(self.SPEC)
        manager = fresh_manager(workload, seed=5)
        manager.engine.run_steps(30)
        first = crash(manager)
        second_manager = recover_fresh(workload, first, seed=5)
        # Crash before the recovered manager fires a single event: the
        # journal round-trips through a second capture unchanged.
        second = crash(second_manager)
        assert {s.pid for s in second.snapshots} == {
            s.pid for s in first.snapshots
        }
        third_manager = recover_fresh(workload, second, seed=5)
        result = third_manager.run()
        assert_spliced_and_correct(workload, second, result)


class TestRecoveryResumeRace:
    """Adoption-time cascades must not overlap the recovery resume.

    Adopted processes resume via same-time callbacks; an earlier
    callback's lock request can cascade-abort a process that was
    recovered RUNNING before its own callback fires.  The stale
    recovery resume must stand down — before the guard in
    ``adopt_recovered`` it started a second compensation run and the
    manager raised ``SchedulerError: overlapping compensation runs``.
    Seed 16 + 9 pre-crash events reach the race deterministically.
    """

    SPEC = WorkloadSpec(
        n_processes=5,
        n_activity_types=10,
        conflict_density=0.5,
        failure_probability=0.1,
        parallel_probability=0.3,
        alternative_count=2,
        wcc_threshold=15.0,
        grounded=True,
        seed=16,
    )

    def test_cascade_during_adoption_does_not_overlap(self):
        workload = build_workload(self.SPEC)
        pool = workload.make_subsystems()
        manager = ProcessManager(
            make_protocol("process-locking", workload),
            subsystems=pool,
            config=ManagerConfig(audit=True),
            seed=16,
        )
        arrivals = poisson_arrivals(0.3, len(workload.programs), seed=16)
        for index, program in enumerate(workload.programs):
            manager.submit(program, at=arrivals[index])
        manager.engine.run_steps(9)
        running_at_crash = {
            pid
            for pid, process in manager._processes.items()
            if process.state is ProcessState.RUNNING
        }
        image = crash(manager)
        recovered = recover(
            image,
            make_protocol("process-locking", workload),
            config=ManagerConfig(audit=True),
            subsystems=pool,
            seed=16,
        )
        starts: list[tuple[float, int, str]] = []
        inner = recovered._start_compensation_run

        def spy(process, plan, label, on_done):
            starts.append((recovered.engine.now, process.pid, label))
            inner(process, plan, label, on_done)

        recovered._start_compensation_run = spy
        result = recovered.run()
        assert_spliced_and_correct(workload, image, result)
        # The race itself must occur: a process recovered RUNNING is
        # cascade-aborted in the adoption batch (recovered vt 0.0) ...
        raced = {
            pid
            for now, pid, label in starts
            if now == 0.0
            and pid in running_at_crash
            and label == "protocol-abort:cascade"
        }
        assert raced, "no adoption-time cascade hit a RUNNING process"
        # ... and its recovery resume stood down instead of starting an
        # overlapping "protocol-abort:recovery" compensation run.
        assert not [
            entry
            for entry in starts
            if entry[1] in raced and entry[2] == "protocol-abort:recovery"
        ]
