"""Unit tests for the manager's bookkeeping records."""

from repro.process.instance import Process
from repro.scheduler.events import (
    CompensationRun,
    InflightActivity,
    ParkedRequest,
    ProcessRecord,
    RequestKind,
)


class TestProcessRecord:
    def test_latency_requires_commit(self):
        record = ProcessRecord(pid=1, submitted_at=10.0)
        assert record.latency is None
        record.committed_at = 25.0
        assert record.latency == 15.0

    def test_fresh_record_counters(self):
        record = ProcessRecord(pid=1, submitted_at=0.0)
        assert record.resubmissions == 0
        assert record.compensations == 0
        assert record.compensated_names == []
        assert record.compensated_causes == []


class TestParkedRequest:
    def test_str_includes_kind_and_waiters(self, flat_program):
        process = Process(pid=4, program=flat_program, timestamp=1)
        activity = process.launch("reserve")
        request = ParkedRequest(
            kind=RequestKind.REGULAR,
            process=process,
            activity=activity,
            wait_for=frozenset({7, 3}),
            reason="test",
        )
        text = str(request)
        assert "regular:reserve" in text
        assert "P4" in text
        assert "[3, 7]" in text

    def test_commit_request_str(self, flat_program):
        process = Process(pid=4, program=flat_program, timestamp=1)
        request = ParkedRequest(
            kind=RequestKind.COMMIT,
            process=process,
            wait_for=frozenset({1}),
            reason="commit-on-hold",
        )
        assert "commit" in str(request)


class TestInflightActivity:
    def test_defaults(self, flat_program):
        process = Process(pid=1, program=flat_program, timestamp=1)
        activity = process.launch("reserve")
        flight = InflightActivity(
            process=process,
            activity=activity,
            kind=RequestKind.REGULAR,
            started_at=0.0,
        )
        assert not flight.started
        assert not flight.cancelled
        assert flight.gate == set()


class TestCompensationRun:
    def test_carries_queue_and_callback(self, flat_program):
        process = Process(pid=1, program=flat_program, timestamp=1)
        activity = process.launch("reserve")
        process.on_committed(activity)
        fired = []
        run = CompensationRun(
            process=process,
            queue=list(process.ledger),
            on_done=lambda: fired.append(True),
            label="test",
        )
        assert len(run.queue) == 1
        run.on_done()
        assert fired == [True]
