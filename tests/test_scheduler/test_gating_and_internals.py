"""Focused tests for the manager's execution-gating machinery and
other internals (parked-request retries, busy-area accounting)."""

import pytest

from repro.core.protocol import ProcessLockManager
from repro.process.builder import ProgramBuilder
from repro.scheduler.manager import ManagerConfig, ProcessManager
from repro.theory.criteria import is_prefix_reducible


def simple_env(registry, conflicts, n=2, gate=True, seed=0):
    program = ProgramBuilder("g", registry).step("reserve").build()
    protocol = ProcessLockManager(registry, conflicts)
    manager = ProcessManager(
        protocol,
        config=ManagerConfig(
            audit=True, gate_conflicting_executions=gate
        ),
        seed=seed,
    )
    for __ in range(n):
        manager.submit(program)
    return manager


class TestExecutionGating:
    def test_conflicting_executions_serialize(self, registry, conflicts):
        manager = simple_env(registry, conflicts, n=3)
        result = manager.run()
        # Three conflicting activities of duration 2.0 run back to back.
        assert result.makespan == pytest.approx(6.0)
        assert result.mean_concurrency == pytest.approx(1.0)

    def test_gating_disabled_overlaps(self, registry, conflicts):
        manager = simple_env(registry, conflicts, n=3, gate=False)
        result = manager.run()
        # Ungated: all three run concurrently (and commit in lock
        # order only by accident of equal durations).
        assert result.makespan == pytest.approx(2.0)

    def test_gating_is_conflict_scoped(self, registry, conflicts):
        prog_a = ProgramBuilder("a", registry).step("reserve").build()
        prog_b = ProgramBuilder("b", registry).step("ship").build()
        protocol = ProcessLockManager(registry, conflicts)
        manager = ProcessManager(
            protocol, config=ManagerConfig(audit=True)
        )
        manager.submit(prog_a)
        manager.submit(prog_b)
        result = manager.run()
        # reserve (2.0) and ship (1.5) commute: fully parallel.
        assert result.makespan == pytest.approx(2.0)

    def test_gating_chain_order(self, registry, conflicts):
        manager = simple_env(registry, conflicts, n=3)
        result = manager.run()
        commits = [
            e.process[0]
            for e in result.trace.events
            if e.kind.value == "commit"
        ]
        assert commits == [1, 2, 3]

    def test_cancelled_blocker_releases_dependents(
        self, registry, conflicts
    ):
        """A victim's in-flight activity is cancelled; activities gated
        behind it must start rather than wait forever."""
        piv_prog = (
            ProgramBuilder("p", registry)
            .step("reserve")
            .pivot("charge")
            .alternatives(lambda b: b.step("ship"))
            .build()
        )
        flat = ProgramBuilder("f", registry).step("reserve").build()
        protocol = ProcessLockManager(registry, conflicts)
        manager = ProcessManager(
            protocol, config=ManagerConfig(audit=True), seed=1
        )
        manager.submit(piv_prog)
        manager.submit(flat)
        manager.submit(flat)
        result = manager.run()  # would hang on a gating leak
        assert result.stats.committed == 3

    def test_correctness_holds_under_gating(
        self, registry, conflicts, order_program
    ):
        protocol = ProcessLockManager(registry, conflicts)
        manager = ProcessManager(
            protocol, config=ManagerConfig(audit=True), seed=5
        )
        for __ in range(4):
            manager.submit(order_program)
        result = manager.run()
        schedule = result.trace.to_schedule(conflicts.conflict)
        assert is_prefix_reducible(schedule, stride=2)


class TestBusyAccounting:
    def test_busy_area_matches_by_hand(self, registry, conflicts):
        # Two commuting activities of durations 2.0 and 1.5 starting at
        # t=0: busy area = 1.5*2 + 0.5*1 = 3.5.
        prog_a = ProgramBuilder("a", registry).step("reserve").build()
        prog_b = ProgramBuilder("b", registry).step("ship").build()
        protocol = ProcessLockManager(registry, conflicts)
        manager = ProcessManager(protocol)
        manager.submit(prog_a)
        manager.submit(prog_b)
        result = manager.run()
        assert result.stats.busy_area == pytest.approx(3.5)

    def test_gated_time_is_not_busy(self, registry, conflicts):
        manager = simple_env(registry, conflicts, n=2)
        result = manager.run()
        # Total busy time is the sum of the two executions, no overlap.
        assert result.stats.busy_area == pytest.approx(4.0)


class TestParkedRetries:
    def test_waiters_wake_in_timestamp_order(self, registry, conflicts):
        """Three processes race for a pivot-guarded resource; the parked
        requests resolve oldest-first."""
        program = (
            ProgramBuilder("p", registry)
            .pivot("charge")
            .alternatives(lambda b: b.step("ship"))
            .build()
        )
        protocol = ProcessLockManager(registry, conflicts)
        manager = ProcessManager(
            protocol, config=ManagerConfig(audit=True)
        )
        for __ in range(3):
            manager.submit(program)
        result = manager.run()
        commits = [
            e.process[0]
            for e in result.trace.events
            if e.kind.value == "commit"
        ]
        assert commits == [1, 2, 3]
        assert result.stats.committed == 3
