"""Integration tests for the process manager (small scripted scenarios)."""

import math

import pytest

from repro.core.protocol import ProcessLockManager
from repro.errors import StarvationError
from repro.process.builder import ProgramBuilder
from repro.scheduler.manager import ManagerConfig, ProcessManager
from repro.theory.criteria import (
    has_correct_termination,
    is_process_recoverable,
)


def run(protocol, programs, seed=0, config=None, subsystems=None):
    manager = ProcessManager(
        protocol,
        subsystems=subsystems,
        config=config or ManagerConfig(audit=True),
        seed=seed,
    )
    for program in programs:
        manager.submit(program)
    return manager, manager.run()


class TestSingleProcess:
    def test_linear_commit(self, protocol, flat_program):
        __, result = run(protocol, [flat_program])
        assert result.stats.committed == 1
        assert result.makespan == pytest.approx(3.0)  # 2.0 + 1.0

    def test_pivot_path_commit(self, protocol, order_program):
        __, result = run(protocol, [order_program], seed=3)
        assert result.stats.committed == 1
        events = [str(e) for e in result.trace.events]
        assert events == [
            "reserve(P1)", "wrap(P1)", "charge(P1)", "ship(P1)", "C(P1)",
        ]

    def test_intrinsic_failure_compensates(self, registry, conflicts):
        # wrap always fails -> reserve must be compensated, process
        # aborts and is NOT resubmitted.
        registry2 = registry
        program = (
            ProgramBuilder("doomed", registry2)
            .step("reserve")
            .step("wrap")
            .build()
        )
        protocol = ProcessLockManager(registry2, conflicts)
        # Make wrap fail deterministically by seeding: wrap has p=0 in
        # the fixture, so craft a failing registry instead.
        from repro.activities.registry import ActivityRegistry
        from repro.activities.commutativity import ConflictMatrix

        reg = ActivityRegistry()
        reg.define_compensatable("reserve", "s", cost=2.0,
                                 compensation_cost=1.0)
        reg.define_compensatable("wrap", "s", cost=1.0,
                                 compensation_cost=0.5,
                                 failure_probability=0.999)
        con = ConflictMatrix(reg)
        con.close_perfect()
        program = (
            ProgramBuilder("doomed", reg)
            .step("reserve").step("wrap").build()
        )
        protocol = ProcessLockManager(reg, con)
        __, result = run(protocol, [program], seed=1)
        assert result.stats.intrinsic_aborts == 1
        assert result.stats.committed == 0
        assert result.stats.resubmissions == 0
        names = [e.name for e in result.trace.events if e.is_activity]
        assert names == ["reserve", "reserve^-1"]

    def test_alternative_taken_after_subprocess_failure(self):
        from repro.activities.registry import ActivityRegistry
        from repro.activities.commutativity import ConflictMatrix

        reg = ActivityRegistry()
        reg.define_pivot("pivot", "s", cost=1.0)
        reg.define_compensatable("flaky", "s", cost=1.0,
                                 compensation_cost=0.5,
                                 failure_probability=0.999)
        reg.define_retriable("safe", "s", cost=1.0)
        con = ConflictMatrix(reg)
        con.close_perfect()
        program = (
            ProgramBuilder("alt", reg)
            .pivot("pivot")
            .alternatives(
                lambda b: b.step("flaky"),
                lambda b: b.step("safe"),
            )
            .build()
        )
        protocol = ProcessLockManager(reg, con)
        __, result = run(protocol, [program], seed=2)
        assert result.stats.committed == 1
        assert result.stats.subprocess_aborts == 1
        names = [e.name for e in result.trace.events if e.is_activity]
        assert names == ["pivot", "safe"]

    def test_retriable_transient_retries(self, protocol, order_program):
        config = ManagerConfig(audit=True, transient_retry_prob=0.5)
        __, result = run(protocol, [order_program], seed=5,
                         config=config)
        assert result.stats.committed == 1
        # seed 5 yields at least one transient retry of 'ship'
        assert result.stats.retries >= 0


class TestTwoProcessInterleaving:
    def test_commuting_processes_run_fully_parallel(
        self, registry, conflicts
    ):
        prog_a = ProgramBuilder("a", registry).step("reserve").build()
        prog_b = ProgramBuilder("b", registry).step("ship").build()
        protocol = ProcessLockManager(registry, conflicts)
        __, result = run(protocol, [prog_a, prog_b])
        assert result.stats.committed == 2
        assert result.makespan == pytest.approx(2.0)  # max, not sum

    def test_conflicting_executions_are_gated(
        self, registry, conflicts
    ):
        program = ProgramBuilder("g", registry).step("reserve").build()
        protocol = ProcessLockManager(registry, conflicts)
        __, result = run(protocol, [program, program])
        assert result.stats.committed == 2
        # Ordered sharing admits both locks, but the conflicting
        # executions serialize: makespan is the sum of durations.
        assert result.makespan == pytest.approx(4.0)

    def test_commit_order_follows_sharing_order(
        self, registry, conflicts
    ):
        program = ProgramBuilder("g", registry).step("reserve").build()
        protocol = ProcessLockManager(registry, conflicts)
        __, result = run(protocol, [program, program])
        commits = [
            e.process[0]
            for e in result.trace.events
            if e.kind.value == "commit"
        ]
        assert commits == [1, 2]

    def test_pivot_conversion_cascades_younger_sharer(
        self, registry, conflicts, order_program, flat_program
    ):
        protocol = ProcessLockManager(registry, conflicts)
        __, result = run(protocol, [order_program, flat_program], seed=9)
        # P2 shared behind P1's reserve lock; P1's pivot conversion
        # aborts it; P2 is resubmitted and commits eventually.
        assert result.stats.committed == 2
        assert result.stats.resubmissions >= 1
        assert result.records[2].cascade_aborts >= 1

    def test_every_trace_is_ct_and_prc(
        self, registry, conflicts, order_program, flat_program
    ):
        protocol = ProcessLockManager(registry, conflicts)
        __, result = run(
            protocol, [order_program, flat_program, order_program],
            seed=4,
        )
        schedule = result.trace.to_schedule(conflicts.conflict)
        assert has_correct_termination(schedule)
        assert is_process_recoverable(schedule)


class TestLivenessGuards:
    def test_starvation_bound_enforced(self, registry, conflicts):
        program = ProgramBuilder("s", registry).step("reserve").build()
        protocol = ProcessLockManager(registry, conflicts)
        manager = ProcessManager(
            protocol,
            config=ManagerConfig(max_resubmissions=0, audit=True),
        )
        # Two fully conflicting processes: the younger is cascaded once
        # (pivotless programs: via C-1 after an abort is not reachable
        # here, so force it with three conflicting processes and a
        # pivot program).
        prog_piv = (
            ProgramBuilder("p", registry)
            .step("reserve")
            .pivot("charge")
            .alternatives(lambda b: b.step("ship"))
            .build()
        )
        manager.submit(prog_piv)
        manager.submit(program)
        with pytest.raises(StarvationError):
            manager.run()

    def test_quiescence_check(self, protocol, flat_program):
        manager = ProcessManager(protocol)
        manager.submit(flat_program)
        # Sabotage: park a fake request so a process stays live.
        result = manager.run()
        assert result.stats.committed == 1


class TestArrivals:
    def test_staggered_arrivals(self, registry, conflicts):
        program = ProgramBuilder("g", registry).step("reserve").build()
        protocol = ProcessLockManager(registry, conflicts)
        manager = ProcessManager(protocol, config=ManagerConfig(audit=True))
        manager.submit(program, at=0.0)
        manager.submit(program, at=10.0)
        result = manager.run()
        assert result.stats.committed == 2
        assert result.records[2].submitted_at == 10.0
        assert result.records[2].latency == pytest.approx(2.0)

    def test_mean_concurrency_reflects_parallelism(
        self, registry, conflicts
    ):
        prog_a = ProgramBuilder("a", registry).step("reserve").build()
        prog_b = ProgramBuilder("b", registry).step("ship").build()
        protocol = ProcessLockManager(registry, conflicts)
        __, result = run(protocol, [prog_a, prog_b])
        assert result.mean_concurrency > 1.0
