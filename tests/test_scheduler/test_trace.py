"""Unit tests for the trace recorder."""

from repro.process.instance import Process
from repro.scheduler.trace import TraceRecorder
from repro.theory.schedule import EventKind


def test_trace_records_positions_and_kinds(flat_program):
    process = Process(pid=1, program=flat_program, timestamp=1)
    recorder = TraceRecorder()
    activity = process.launch("reserve")
    process.on_committed(activity)
    recorder.record_activity(process, activity)
    recorder.record_commit(process)
    assert len(recorder) == 2
    assert recorder.events[0].position == 0
    assert recorder.events[0].kind is EventKind.ACTIVITY
    assert recorder.events[1].kind is EventKind.COMMIT


def test_trace_captures_termination_properties(order_program):
    process = Process(pid=1, program=order_program, timestamp=1)
    recorder = TraceRecorder()
    for name in ("reserve", "wrap", "charge"):
        activity = process.launch(name)
        process.on_committed(activity)
        recorder.record_activity(process, activity)
    events = recorder.events
    assert events[0].compensatable and not events[0].point_of_no_return
    assert events[2].point_of_no_return and not events[2].compensatable


def test_trace_compensation_links(flat_program):
    process = Process(pid=1, program=flat_program, timestamp=1)
    recorder = TraceRecorder()
    activity = process.launch("reserve")
    process.on_committed(activity)
    recorder.record_activity(process, activity)
    failed = process.launch("wrap")
    plan = process.on_failed(failed)
    entry = plan.compensations[0]
    comp = process.make_compensation(entry)
    process.on_compensated(entry, comp)
    recorder.record_activity(process, comp)
    recorder.record_abort(process)
    assert recorder.events[1].compensates == activity.uid
    assert recorder.events[2].kind is EventKind.ABORT


def test_trace_distinguishes_incarnations(flat_program):
    first = Process(pid=3, program=flat_program, timestamp=9)
    recorder = TraceRecorder()
    activity = first.launch("reserve")
    first.on_committed(activity)
    recorder.record_activity(first, activity)
    plan = first.plan_protocol_abort()
    for entry in plan.compensations:
        comp = first.make_compensation(entry)
        first.on_compensated(entry, comp)
        recorder.record_activity(first, comp)
    first.finish_abort()
    recorder.record_abort(first)
    second = first.resubmit()
    activity2 = second.launch("reserve")
    second.on_committed(activity2)
    recorder.record_activity(second, activity2)
    keys = {event.process for event in recorder.events}
    assert keys == {(3, 0), (3, 1)}


def test_to_schedule_round_trip(flat_program):
    process = Process(pid=1, program=flat_program, timestamp=1)
    recorder = TraceRecorder()
    activity = process.launch("reserve")
    process.on_committed(activity)
    recorder.record_activity(process, activity)
    recorder.record_commit(process)
    schedule = recorder.to_schedule(lambda a, b: True)
    assert schedule.is_complete
    assert len(schedule.activities) == 1
