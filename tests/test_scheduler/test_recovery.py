"""Tests for process-manager crash recovery (fault tolerance).

The headline property: crash the manager after an arbitrary number of
events, recover into a fresh manager, run to quiescence — the combined
pre+post-crash schedule must still satisfy CT and P-RC, completing
processes must commit (forward recovery), and aborting processes must
finish aborting.
"""

import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.core.protocol import ProcessLockManager
from repro.errors import SchedulerError
from repro.process.state import ProcessState
from repro.scheduler.manager import ManagerConfig, ProcessManager
from repro.scheduler.recovery import (
    crash,
    recover,
    restore_process,
)
from repro.sim.runner import make_protocol
from repro.sim.workload import WorkloadSpec, build_workload
from repro.theory.criteria import (
    has_correct_termination,
    is_process_recoverable,
)


def fresh_manager(workload, seed):
    protocol = make_protocol("process-locking", workload)
    manager = ProcessManager(
        protocol, config=ManagerConfig(audit=True), seed=seed
    )
    for program in workload.programs:
        manager.submit(program)
    return manager


def crash_and_recover(workload, seed, steps):
    manager = fresh_manager(workload, seed)
    manager.engine.run_steps(steps)
    image = crash(manager)
    protocol = make_protocol("process-locking", workload)
    recovered = recover(
        image, protocol, config=ManagerConfig(audit=True), seed=seed
    )
    result = recovered.run()
    return image, recovered, result


class TestSnapshotRestore:
    def test_round_trip_mid_program(self, order_program):
        from repro.scheduler.recovery import _snapshot_process

        from repro.process.instance import Process

        process = Process(pid=1, program=order_program, timestamp=5)
        reserved = process.launch("reserve")
        process.on_committed(reserved)
        snapshot = _snapshot_process(
            process, tuple(process.ready_activities())
        )
        clone = restore_process(snapshot)
        assert clone.pid == 1
        assert clone.timestamp == 5
        assert clone.state is ProcessState.RUNNING
        assert clone.ready_activities() == ["wrap"]
        assert [e.activity.name for e in clone.ledger] == ["reserve"]
        assert clone.ledger[0].activity.uid == reserved.uid

    def test_round_trip_completing(self, order_program):
        from repro.scheduler.recovery import _snapshot_process
        from repro.process.instance import Process

        process = Process(pid=2, program=order_program, timestamp=7)
        for name in ("reserve", "wrap", "charge"):
            activity = process.launch(name)
            process.on_committed(activity)
        snapshot = _snapshot_process(
            process, tuple(process.ready_activities())
        )
        clone = restore_process(snapshot)
        assert clone.state is ProcessState.COMPLETING
        assert clone.committed_points_of_no_return == 1
        assert clone.ready_activities() == ["ship"]


class TestBasicRecovery:
    WORKLOAD = WorkloadSpec(
        n_processes=6,
        conflict_density=0.4,
        failure_probability=0.08,
        seed=5,
    )

    def test_recover_at_midpoint_reaches_quiescence(self):
        workload = build_workload(self.WORKLOAD)
        __, recovered, result = crash_and_recover(
            workload, seed=5, steps=25
        )
        schedule = result.trace.to_schedule(
            workload.conflicts.conflict
        )
        assert schedule.is_complete

    def test_combined_schedule_is_correct(self):
        workload = build_workload(self.WORKLOAD)
        __, __, result = crash_and_recover(workload, seed=5, steps=25)
        schedule = result.trace.to_schedule(
            workload.conflicts.conflict
        )
        assert has_correct_termination(schedule, stride=2)
        assert is_process_recoverable(schedule)

    def test_completing_processes_commit_after_recovery(self):
        workload = build_workload(self.WORKLOAD)
        image, __, result = crash_and_recover(
            workload, seed=5, steps=40
        )
        completing_pids = {
            snap.pid
            for snap in image.snapshots
            if snap.state == ProcessState.COMPLETING.value
        }
        for pid in completing_pids:
            assert result.records[pid].committed_at is not None, (
                f"completing P{pid} failed to commit after recovery"
            )

    def test_trace_continues_prior_events(self):
        workload = build_workload(self.WORKLOAD)
        image, __, result = crash_and_recover(
            workload, seed=5, steps=25
        )
        prior = len(image.trace_events)
        assert result.trace.events[:prior] == image.trace_events
        assert len(result.trace.events) > prior

    def test_crash_at_zero_events_is_a_clean_restart(self):
        workload = build_workload(self.WORKLOAD)
        manager = fresh_manager(workload, seed=5)
        manager.engine.run_steps(len(workload.programs))  # initiations
        image = crash(manager)
        protocol = make_protocol("process-locking", workload)
        recovered = recover(image, protocol)
        result = recovered.run()
        assert result.stats.committed >= 1

    def test_recovery_requires_fresh_protocol(self):
        workload = build_workload(self.WORKLOAD)
        manager = fresh_manager(workload, seed=5)
        manager.engine.run_steps(20)
        image = crash(manager)
        with pytest.raises(SchedulerError):
            recover(image, manager.protocol)  # lock table not empty

    def test_new_submissions_after_recovery_get_younger_timestamps(
        self,
    ):
        workload = build_workload(self.WORKLOAD)
        manager = fresh_manager(workload, seed=5)
        manager.engine.run_steps(30)
        image = crash(manager)
        protocol = make_protocol("process-locking", workload)
        recovered = recover(image, protocol)
        old_max = max(snap.timestamp for snap in image.snapshots)
        assert protocol.new_timestamp() > old_max


class TestLockRebuild:
    def test_sharing_order_preserved(self, registry, conflicts):
        from repro.process.builder import ProgramBuilder

        program = (
            ProgramBuilder("p", registry).step("reserve").step("wrap")
            .build()
        )
        protocol = ProcessLockManager(registry, conflicts)
        manager = ProcessManager(
            protocol, config=ManagerConfig(audit=True)
        )
        manager.submit(program)
        manager.submit(program)
        # Run until both hold their 'reserve' locks (shared in order).
        manager.engine.run_steps(4)
        image = crash(manager)
        protocol2 = ProcessLockManager(registry, conflicts)
        recovered = recover(image, protocol2)
        recovered.engine.run_steps(1)
        younger = recovered._processes.get(2)
        older = recovered._processes.get(1)
        if younger is not None and older is not None:
            blockers = protocol2.table.commit_blockers(younger)
            assert blockers <= {1}
        result = recovered.run()
        commits = [
            e.process[0]
            for e in result.trace.events
            if e.kind.value == "commit"
        ]
        assert commits == sorted(commits)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=200),
    steps=st.integers(min_value=1, max_value=120),
    density=st.sampled_from([0.2, 0.5, 0.8]),
)
# Regression: the crash caught P2's *parked* pivot request after its Wcc
# charge had landed; replaying the C→P conversion from the wcc-threshold
# heuristic hid P2's on-hold C locks from the Piv-Rule scan, granting
# the pivot while on hold behind P1 — an unresolvable completing ↔
# aborting wait cycle.  ProcessSnapshot.pivot_treated now journals the
# granted conversion explicitly.
@example(seed=73, steps=17, density=0.5)
def test_property_crash_anywhere_recovers_correctly(
    seed, steps, density
):
    """Crash after any number of events: recovery always converges to a
    complete, CT + P-RC schedule."""
    workload = build_workload(
        WorkloadSpec(
            n_processes=5,
            conflict_density=density,
            failure_probability=0.1,
            seed=seed,
        )
    )
    manager = fresh_manager(workload, seed=seed)
    manager.engine.run_steps(steps)
    image = crash(manager)
    protocol = make_protocol("process-locking", workload)
    recovered = recover(
        image, protocol, config=ManagerConfig(audit=True), seed=seed
    )
    result = recovered.run()
    schedule = result.trace.to_schedule(workload.conflicts.conflict)
    assert schedule.is_complete
    assert has_correct_termination(schedule, stride=4)
    assert is_process_recoverable(schedule)
