"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.errors import SchedulerError
from repro.scheduler.engine import SimulationEngine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(2.0, lambda: fired.append("late"))
        engine.schedule(1.0, lambda: fired.append("early"))
        engine.run()
        assert fired == ["early", "late"]
        assert engine.now == 2.0

    def test_ties_fire_in_schedule_order(self):
        engine = SimulationEngine()
        fired = []
        for tag in ("a", "b", "c"):
            engine.schedule(1.0, lambda t=tag: fired.append(t))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_nested_scheduling(self):
        engine = SimulationEngine()
        fired = []

        def outer():
            fired.append(("outer", engine.now))
            engine.schedule(3.0, inner)

        def inner():
            fired.append(("inner", engine.now))

        engine.schedule(1.0, outer)
        engine.run()
        assert fired == [("outer", 1.0), ("inner", 4.0)]

    def test_zero_delay_runs_after_current_callback(self):
        engine = SimulationEngine()
        fired = []

        def first():
            engine.schedule(0.0, lambda: fired.append("second"))
            fired.append("first")

        engine.schedule(0.0, first)
        engine.run()
        assert fired == ["first", "second"]

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(SchedulerError):
            engine.schedule(-1.0, lambda: None)

    def test_cancellation(self):
        engine = SimulationEngine()
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append("x"))
        engine.cancel(handle)
        engine.run()
        assert fired == []
        assert engine.pending == 0

    def test_event_budget_enforced(self):
        engine = SimulationEngine()

        def loop():
            engine.schedule(1.0, loop)

        engine.schedule(1.0, loop)
        with pytest.raises(SchedulerError):
            engine.run(max_events=100)

    def test_events_processed_counter(self):
        engine = SimulationEngine()
        for __ in range(5):
            engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.events_processed == 5
