"""Unit tests for the activity registry."""

import math

import pytest

from repro.activities.activity import INFINITE_COST
from repro.activities.registry import ActivityRegistry
from repro.errors import ActivityModelError, UnknownActivityError


@pytest.fixture
def reg() -> ActivityRegistry:
    registry = ActivityRegistry()
    registry.define_compensatable(
        "book", "travel", cost=3.0, compensation_cost=1.0,
        failure_probability=0.2,
    )
    registry.define_pivot("pay", "bank", cost=1.0)
    registry.define_retriable("mail", "notify", cost=0.5)
    return registry


class TestDefinition:
    def test_compensatable_registers_both_types(self, reg):
        assert "book" in reg
        assert "book^-1" in reg
        assert reg.get("book^-1").is_compensation

    def test_compensation_link(self, reg):
        comp = reg.compensation_of("book")
        assert comp.name == "book^-1"
        assert comp.retriable
        assert comp.subsystem == "travel"

    def test_compensation_cost_round_trip(self, reg):
        assert reg.compensation_cost("book") == 1.0
        assert reg.get("book").compensation_cost == 1.0

    def test_pivot_compensation_cost_is_infinite(self, reg):
        assert reg.compensation_cost("pay") == INFINITE_COST

    def test_duplicate_name_rejected(self, reg):
        with pytest.raises(ActivityModelError):
            reg.define_pivot("book", "travel", cost=1.0)

    def test_custom_compensation_name(self):
        registry = ActivityRegistry()
        registry.define_compensatable(
            "add", "calc", cost=1.0, compensation_cost=1.0,
            compensation_name="subtract",
        )
        assert registry.compensation_of("add").name == "subtract"

    def test_infinite_compensation_cost_rejected(self):
        registry = ActivityRegistry()
        with pytest.raises(ActivityModelError):
            registry.define_compensatable(
                "a", "s", cost=1.0, compensation_cost=math.inf
            )

    def test_retriable_with_compensation_is_orthogonal(self):
        registry = ActivityRegistry()
        activity = registry.define_retriable(
            "log", "sys", cost=1.0, compensation_cost=0.5
        )
        assert activity.retriable
        assert activity.compensatable

    def test_retriable_zero_failure_probability_forced(self, reg):
        assert reg.get("mail").failure_probability == 0.0


class TestLookup:
    def test_unknown_name_raises(self, reg):
        with pytest.raises(UnknownActivityError):
            reg.get("nope")

    def test_compensation_of_pivot_raises(self, reg):
        with pytest.raises(ActivityModelError):
            reg.compensation_of("pay")

    def test_len_counts_compensations(self, reg):
        # book, book^-1, pay, mail
        assert len(reg) == 4

    def test_regular_types_excludes_compensations(self, reg):
        names = {t.name for t in reg.regular_types()}
        assert names == {"book", "pay", "mail"}

    def test_subsystems(self, reg):
        assert reg.subsystems() == {"travel", "bank", "notify"}

    def test_iteration_order_is_definition_order(self, reg):
        assert reg.names[0] == "book"
        assert reg.names[1] == "book^-1"


class TestValidate:
    def test_clean_registry_validates(self, reg):
        reg.validate()

    def test_same_subsystem_enforced_for_compensation(self):
        registry = ActivityRegistry()
        registry.define_compensatable(
            "a", "s1", cost=1.0, compensation_cost=0.5
        )
        # Forge an inconsistent entry to show validate() catches it.
        broken = registry.get("a^-1")
        object.__setattr__(broken, "subsystem", "s2")
        with pytest.raises(ActivityModelError):
            registry.validate()
