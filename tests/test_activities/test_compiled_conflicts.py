"""Property tests: the compiled bitset plane agrees with the dict matrix.

The hot path reads the conflict relation exclusively through
:class:`CompiledConflicts` (dense type ids + per-type bitmasks); the
dict/frozenset :class:`ConflictMatrix` stays the dev-time oracle.  These
tests churn randomized registries and relations and assert the two
representations never disagree — including after ``close_perfect``
closures, post-freeze ``declare_conflict`` mutation, and late type
registration (both of which must invalidate the cached plane while
keeping the already-assigned dense ids stable).
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.activities.commutativity import (
    CompiledConflicts,
    ConflictMatrix,
    iter_bits,
)
from repro.activities.registry import ActivityRegistry
from repro.errors import CommutativityError

#: Base (regular) activity names; each registration adds the ``^-1``
#: compensation partner too, so the registry holds up to 12 types.
BASE_NAMES = [f"b{i}" for i in range(6)]


def make_registry(n_base: int) -> ActivityRegistry:
    registry = ActivityRegistry()
    for name in BASE_NAMES[:n_base]:
        registry.define_compensatable(
            name, "shop", cost=1.0, compensation_cost=0.5
        )
    return registry


def all_names(registry: ActivityRegistry) -> list[str]:
    return [activity_type.name for activity_type in registry]


def assert_plane_agrees(
    plane: CompiledConflicts, matrix: ConflictMatrix
) -> None:
    names = all_names(matrix.registry)
    # Dense ids cover the registry in definition order.
    assert plane.names == names
    assert plane.index == {name: i for i, name in enumerate(names)}
    for first in names:
        assert plane.conflicting_types(
            first
        ) == matrix.conflicting_types(first)
        assert plane.mask_of[first] == plane.masks[plane.id_of(first)]
        for second in names:
            assert plane.conflict(first, second) == matrix.conflict(
                first, second
            )
            assert plane.commute(first, second) == matrix.commute(
                first, second
            )
    # Bitmask symmetry mirrors the symmetric relation.
    for i, mask in enumerate(plane.masks):
        for j in iter_bits(mask):
            assert plane.masks[j] >> i & 1


@st.composite
def relation(draw):
    n_base = draw(st.integers(min_value=1, max_value=len(BASE_NAMES)))
    registry = make_registry(n_base)
    names = all_names(registry)
    pairs = draw(
        st.lists(
            st.tuples(st.sampled_from(names), st.sampled_from(names)),
            max_size=12,
        )
    )
    matrix = ConflictMatrix(registry)
    for first, second in pairs:
        matrix.declare_conflict(first, second)
    return registry, matrix


class TestCompiledAgreement:
    @settings(max_examples=80, deadline=None)
    @given(rel=relation(), close=st.booleans())
    def test_plane_matches_dict_matrix(self, rel, close):
        _, matrix = rel
        if close:
            matrix.close_perfect()
        assert_plane_agrees(matrix.compiled(), matrix)

    @settings(max_examples=60, deadline=None)
    @given(rel=relation())
    def test_close_perfect_closure_lands_in_the_plane(self, rel):
        _, matrix = rel
        before = matrix.compiled()
        matrix.close_perfect()
        after = matrix.compiled()
        assert matrix.is_perfect()
        assert_plane_agrees(after, matrix)
        if matrix.version != before.version:
            # Closure added pairs: the cached plane was replaced.
            assert after is not before
        # Perfect closure: a regular-pair conflict implies the whole
        # {a, a^-1} x {b, b^-1} family conflicts, in bitmask form.
        registry = matrix.registry
        for first in all_names(registry):
            comp_first = registry.get(first).compensated_by
            for second in all_names(registry):
                if not after.conflict(first, second):
                    continue
                comp_second = registry.get(second).compensated_by
                if comp_first is not None:
                    assert after.conflict(comp_first, second)
                if comp_second is not None:
                    assert after.conflict(first, comp_second)

    @settings(max_examples=60, deadline=None)
    @given(
        rel=relation(),
        extra=st.tuples(
            st.sampled_from(BASE_NAMES), st.sampled_from(BASE_NAMES)
        ),
    )
    def test_post_freeze_declaration_invalidates(self, rel, extra):
        registry, matrix = rel
        first, second = extra
        assume(first in registry and second in registry)
        assume(not matrix.conflict(first, second))
        frozen = matrix.compiled()
        assert not frozen.conflict(first, second)
        matrix.declare_conflict(first, second)
        recompiled = matrix.compiled()
        assert recompiled is not frozen
        assert recompiled.version == matrix.version
        assert recompiled.conflict(first, second)
        # The frozen plane is an immutable snapshot of the old state.
        assert not frozen.conflict(first, second)
        assert_plane_agrees(recompiled, matrix)

    @settings(max_examples=40, deadline=None)
    @given(rel=relation())
    def test_late_registration_recompiles_with_stable_ids(self, rel):
        registry, matrix = rel
        frozen = matrix.compiled()
        registry.define_compensatable(
            "late", "shop", cost=1.0, compensation_cost=0.5
        )
        recompiled = matrix.compiled()
        assert recompiled is not frozen
        assert len(recompiled.names) == len(registry)
        # Already-assigned dense ids never move (append-only registry).
        assert recompiled.names[: len(frozen.names)] == frozen.names
        matrix.declare_conflict("late", frozen.names[0])
        assert_plane_agrees(matrix.compiled(), matrix)


class TestPlaneValidation:
    def test_unknown_type_raises(self):
        matrix = ConflictMatrix(make_registry(2))
        plane = matrix.compiled()
        with pytest.raises(CommutativityError):
            plane.id_of("nope")
        with pytest.raises(CommutativityError):
            plane.conflict("b0", "nope")
        with pytest.raises(CommutativityError):
            plane.conflicting_types("nope")

    def test_unchanged_relation_reuses_the_plane(self):
        matrix = ConflictMatrix(make_registry(3))
        matrix.declare_conflict("b0", "b1")
        assert matrix.compiled() is matrix.compiled()
