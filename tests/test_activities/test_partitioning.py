"""Tests for partitioned activity-type families."""

import pytest

from repro.activities.commutativity import ConflictMatrix
from repro.activities.partitioning import (
    base_of,
    coarse_equivalent,
    declare_family_cross_conflicts,
    declare_family_self_conflicts,
    define_partitioned_compensatable,
    partition_of,
)
from repro.activities.registry import ActivityRegistry
from repro.errors import ActivityModelError


@pytest.fixture
def family_env():
    registry = ActivityRegistry()
    family = define_partitioned_compensatable(
        registry, "reserve", ["sku0", "sku1", "sku2"], "shop",
        cost=2.0, compensation_cost=1.0,
    )
    matrix = ConflictMatrix(registry)
    return registry, matrix, family


class TestDefinition:
    def test_one_type_per_partition(self, family_env):
        registry, __, family = family_env
        assert family.member_names == (
            "reserve@sku0", "reserve@sku1", "reserve@sku2",
        )
        for name in family.member_names:
            assert name in registry
            assert registry.get(name).compensatable

    def test_member_lookup(self, family_env):
        __, __, family = family_env
        assert family.member("sku1") == "reserve@sku1"
        with pytest.raises(ActivityModelError):
            family.member("nope")

    def test_empty_partitions_rejected(self):
        registry = ActivityRegistry()
        with pytest.raises(ActivityModelError):
            define_partitioned_compensatable(
                registry, "x", [], "s", cost=1.0
            )

    def test_name_helpers(self):
        assert base_of("reserve@sku1") == "reserve"
        assert partition_of("reserve@sku1") == "sku1"
        assert base_of("plain") == "plain"
        assert partition_of("plain") is None


class TestConflictShapes:
    def test_self_conflicts_stay_within_partition(self, family_env):
        __, matrix, family = family_env
        declare_family_self_conflicts(matrix, family)
        matrix.close_perfect()
        assert matrix.conflict("reserve@sku0", "reserve@sku0")
        assert not matrix.conflict("reserve@sku0", "reserve@sku1")

    def test_coarse_equivalent_conflicts_everywhere(self, family_env):
        registry, matrix, family = family_env
        coarse_equivalent(registry, matrix, family)
        matrix.close_perfect()
        assert matrix.conflict("reserve@sku0", "reserve@sku1")

    def test_aligned_cross_family(self):
        registry = ActivityRegistry()
        reserve = define_partitioned_compensatable(
            registry, "reserve", ["a", "b"], "shop", cost=1.0,
            compensation_cost=0.5,
        )
        release = define_partitioned_compensatable(
            registry, "release", ["a", "b"], "shop", cost=1.0,
            compensation_cost=0.5,
        )
        matrix = ConflictMatrix(registry)
        declare_family_cross_conflicts(matrix, reserve, release)
        matrix.close_perfect()
        assert matrix.conflict("reserve@a", "release@a")
        assert not matrix.conflict("reserve@a", "release@b")

    def test_unaligned_cross_family(self):
        registry = ActivityRegistry()
        reserve = define_partitioned_compensatable(
            registry, "reserve", ["a", "b"], "shop", cost=1.0,
            compensation_cost=0.5,
        )
        audit = define_partitioned_compensatable(
            registry, "audit", ["a", "b"], "shop", cost=1.0,
            compensation_cost=0.5,
        )
        matrix = ConflictMatrix(registry)
        declare_family_cross_conflicts(
            matrix, reserve, audit, aligned=False
        )
        matrix.close_perfect()
        assert matrix.conflict("reserve@a", "audit@b")


class TestEndToEnd:
    def test_partitioned_runs_more_concurrently(self):
        """Two processes hitting different partitions interleave freely;
        the coarse matrix serializes their conflicting executions."""
        from repro.core.protocol import ProcessLockManager
        from repro.process.builder import ProgramBuilder
        from repro.scheduler.manager import ManagerConfig, ProcessManager

        def run(aligned: bool) -> float:
            registry = ActivityRegistry()
            family = define_partitioned_compensatable(
                registry, "reserve", ["s0", "s1"], "shop",
                cost=4.0, compensation_cost=1.0,
            )
            matrix = ConflictMatrix(registry)
            if aligned:
                declare_family_self_conflicts(matrix, family)
            else:
                coarse_equivalent(registry, matrix, family)
            matrix.close_perfect()
            protocol = ProcessLockManager(registry, matrix)
            manager = ProcessManager(
                protocol, config=ManagerConfig(audit=True)
            )
            for partition in ("s0", "s1"):
                program = (
                    ProgramBuilder(f"p-{partition}", registry)
                    .step(family.member(partition))
                    .build()
                )
                manager.submit(program)
            return manager.run().makespan

        assert run(aligned=True) == pytest.approx(4.0)   # parallel
        assert run(aligned=False) == pytest.approx(8.0)  # serialized
