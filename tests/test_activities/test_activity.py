"""Unit tests for the activity model (Table 1 constraints)."""

import math

import pytest

from repro.activities.activity import (
    INFINITE_COST,
    Activity,
    ActivityType,
    TerminationClass,
)
from repro.errors import ActivityModelError


def make(name="a", subsystem="s", **kwargs) -> ActivityType:
    return ActivityType(name=name, subsystem=subsystem, **kwargs)


class TestTable1Constraints:
    def test_regular_activity_needs_positive_cost(self):
        with pytest.raises(ActivityModelError):
            make(cost=0.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ActivityModelError):
            make(cost=-1.0)

    def test_infinite_cost_rejected(self):
        with pytest.raises(ActivityModelError):
            make(cost=math.inf)

    def test_nan_cost_rejected(self):
        with pytest.raises(ActivityModelError):
            make(cost=math.nan)

    def test_failure_probability_below_one(self):
        with pytest.raises(ActivityModelError):
            make(cost=1.0, failure_probability=1.0)

    def test_failure_probability_non_negative(self):
        with pytest.raises(ActivityModelError):
            make(cost=1.0, failure_probability=-0.1)

    def test_retriable_must_have_zero_failure_probability(self):
        with pytest.raises(ActivityModelError):
            make(cost=1.0, retriable=True, failure_probability=0.2)

    def test_retriable_with_zero_probability_ok(self):
        activity = make(cost=1.0, retriable=True)
        assert activity.retriable
        assert activity.failure_probability == 0.0

    def test_compensating_activity_may_cost_zero(self):
        activity = make(
            cost=0.0, retriable=True, is_compensation=True
        )
        assert activity.cost == 0.0

    def test_compensating_activity_must_be_retriable(self):
        with pytest.raises(ActivityModelError):
            make(cost=0.5, is_compensation=True, retriable=False)

    def test_compensating_activity_not_compensatable(self):
        with pytest.raises(ActivityModelError):
            make(
                cost=0.5,
                is_compensation=True,
                retriable=True,
                compensated_by="other",
            )

    def test_empty_name_rejected(self):
        with pytest.raises(ActivityModelError):
            ActivityType(name="", subsystem="s", cost=1.0)

    def test_empty_subsystem_rejected(self):
        with pytest.raises(ActivityModelError):
            ActivityType(name="a", subsystem="", cost=1.0)


class TestTerminationClassification:
    def test_compensatable(self):
        activity = make(cost=1.0, compensated_by="a^-1")
        assert activity.termination_class is TerminationClass.COMPENSATABLE
        assert activity.compensatable
        assert not activity.is_pivot
        assert not activity.point_of_no_return

    def test_pivot(self):
        activity = make(cost=1.0)
        assert activity.termination_class is TerminationClass.PIVOT
        assert activity.is_pivot
        assert activity.point_of_no_return
        assert activity.compensation_cost == INFINITE_COST

    def test_retriable_non_compensatable_is_point_of_no_return(self):
        activity = make(cost=1.0, retriable=True)
        assert activity.termination_class is TerminationClass.RETRIABLE
        assert not activity.is_pivot
        assert activity.point_of_no_return

    def test_retriable_and_compensatable_is_orthogonal(self):
        activity = make(cost=1.0, retriable=True, compensated_by="a^-1")
        assert activity.compensatable
        assert activity.retriable
        assert not activity.point_of_no_return
        assert (
            activity.termination_class is TerminationClass.COMPENSATABLE
        )

    def test_compensating(self):
        activity = make(cost=0.0, retriable=True, is_compensation=True)
        assert activity.termination_class is TerminationClass.COMPENSATING
        assert not activity.point_of_no_return


class TestActivityInvocations:
    def test_uids_are_unique(self):
        activity_type = make(cost=1.0)
        first = Activity(activity_type, process_id=1, seq=0)
        second = Activity(activity_type, process_id=1, seq=1)
        assert first.uid != second.uid

    def test_compensation_flag(self):
        activity_type = make(cost=1.0)
        regular = Activity(activity_type, process_id=1, seq=0)
        comp = Activity(
            activity_type, process_id=1, seq=1, compensates=regular.uid
        )
        assert not regular.is_compensation
        assert comp.is_compensation

    def test_name_mirrors_type(self):
        activity_type = make(name="book", cost=1.0)
        invocation = Activity(activity_type, process_id=2, seq=0)
        assert invocation.name == "book"
