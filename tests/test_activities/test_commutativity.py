"""Unit and property tests for the conflict relation ``CON``."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.activities.commutativity import (
    ConflictMatrix,
    derive_from_read_write_sets,
)
from repro.activities.registry import ActivityRegistry
from repro.errors import CommutativityError


@pytest.fixture
def reg() -> ActivityRegistry:
    registry = ActivityRegistry()
    registry.define_compensatable("a", "s1", cost=1.0,
                                  compensation_cost=0.5)
    registry.define_compensatable("b", "s1", cost=1.0,
                                  compensation_cost=0.5)
    registry.define_pivot("p", "s1", cost=1.0)
    registry.define_compensatable("other", "s2", cost=1.0,
                                  compensation_cost=0.5)
    return registry


class TestDeclaration:
    def test_symmetry(self, reg):
        matrix = ConflictMatrix(reg)
        matrix.declare_conflict("a", "b")
        assert matrix.conflict("a", "b")
        assert matrix.conflict("b", "a")

    def test_self_conflict(self, reg):
        matrix = ConflictMatrix(reg)
        matrix.declare_conflict("a", "a")
        assert matrix.conflict("a", "a")
        assert not matrix.conflict("b", "b")

    def test_cross_subsystem_conflict_rejected(self, reg):
        matrix = ConflictMatrix(reg)
        with pytest.raises(CommutativityError):
            matrix.declare_conflict("a", "other")

    def test_unknown_type_rejected(self, reg):
        matrix = ConflictMatrix(reg)
        with pytest.raises(CommutativityError):
            matrix.conflict("a", "ghost")

    def test_commute_is_complement(self, reg):
        matrix = ConflictMatrix(reg)
        matrix.declare_conflict("a", "b")
        assert not matrix.commute("a", "b")
        assert matrix.commute("a", "p")


class TestPerfectClosure:
    def test_close_propagates_to_compensations(self, reg):
        matrix = ConflictMatrix(reg)
        matrix.declare_conflict("a", "b")
        matrix.close_perfect()
        assert matrix.conflict("a^-1", "b")
        assert matrix.conflict("a", "b^-1")
        assert matrix.conflict("a^-1", "b^-1")

    def test_close_handles_self_conflicts(self, reg):
        matrix = ConflictMatrix(reg)
        matrix.declare_conflict("a", "a")
        matrix.close_perfect()
        assert matrix.conflict("a", "a^-1")
        assert matrix.conflict("a^-1", "a^-1")

    def test_close_with_pivot_partner(self, reg):
        # Pivots have no compensation; closure must not invent one.
        matrix = ConflictMatrix(reg)
        matrix.declare_conflict("a", "p")
        matrix.close_perfect()
        assert matrix.conflict("a^-1", "p")
        assert matrix.is_perfect()

    def test_is_perfect_detects_gaps(self, reg):
        matrix = ConflictMatrix(reg)
        matrix.declare_conflict("a", "b")
        assert not matrix.is_perfect()
        matrix.close_perfect()
        assert matrix.is_perfect()

    def test_close_is_idempotent(self, reg):
        matrix = ConflictMatrix(reg)
        matrix.declare_conflict("a", "b")
        matrix.close_perfect()
        before = matrix.pairs()
        matrix.close_perfect()
        assert matrix.pairs() == before

    def test_conflicting_types(self, reg):
        matrix = ConflictMatrix(reg)
        matrix.declare_conflict("a", "b")
        matrix.declare_conflict("a", "a")
        matrix.close_perfect()
        types = matrix.conflicting_types("a")
        assert {"a", "b", "a^-1", "b^-1"} <= types

    def test_density_counts_regular_pairs(self, reg):
        matrix = ConflictMatrix(reg)
        assert matrix.density() == 0.0
        matrix.declare_conflict("a", "b")
        assert 0.0 < matrix.density() < 1.0


class TestDerivation:
    def test_write_write_conflict(self, reg):
        access = {
            "a": (frozenset(), frozenset({"k"})),
            "b": (frozenset(), frozenset({"k"})),
            "p": (frozenset(), frozenset({"m"})),
            "other": (frozenset(), frozenset({"k"})),
        }
        matrix = derive_from_read_write_sets(reg, access)
        assert matrix.conflict("a", "b")
        assert not matrix.conflict("a", "p")
        # same key, different subsystem: keys are namespaced by caller,
        # but even identical strings never conflict across subsystems.
        assert not matrix.conflict("a", "other")

    def test_read_read_commutes(self, reg):
        access = {
            "a": (frozenset({"k"}), frozenset()),
            "b": (frozenset({"k"}), frozenset()),
            "p": (frozenset(), frozenset()),
            "other": (frozenset(), frozenset()),
        }
        matrix = derive_from_read_write_sets(reg, access)
        assert not matrix.conflict("a", "b")

    def test_read_write_conflict(self, reg):
        access = {
            "a": (frozenset({"k"}), frozenset()),
            "b": (frozenset(), frozenset({"k"})),
            "p": (frozenset(), frozenset()),
            "other": (frozenset(), frozenset()),
        }
        matrix = derive_from_read_write_sets(reg, access)
        assert matrix.conflict("a", "b")

    def test_derived_matrix_is_perfect(self, reg):
        access = {
            "a": (frozenset({"x"}), frozenset({"k"})),
            "b": (frozenset({"k"}), frozenset({"x"})),
            "p": (frozenset(), frozenset({"k"})),
            "other": (frozenset(), frozenset()),
        }
        matrix = derive_from_read_write_sets(reg, access)
        assert matrix.is_perfect()

    def test_self_conflict_from_writes(self, reg):
        access = {
            "a": (frozenset(), frozenset({"k"})),
            "b": (frozenset(), frozenset()),
            "p": (frozenset(), frozenset()),
            "other": (frozenset(), frozenset()),
        }
        matrix = derive_from_read_write_sets(reg, access)
        assert matrix.conflict("a", "a")


@settings(max_examples=60, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "p"]),
            st.sampled_from(["a", "b", "p"]),
        ),
        max_size=6,
    )
)
def test_property_closure_always_perfect(pairs):
    """close_perfect() yields a perfect relation for any declaration."""
    registry = ActivityRegistry()
    registry.define_compensatable("a", "s", cost=1.0,
                                  compensation_cost=0.5)
    registry.define_compensatable("b", "s", cost=1.0,
                                  compensation_cost=0.5)
    registry.define_pivot("p", "s", cost=1.0)
    matrix = ConflictMatrix(registry)
    for first, second in pairs:
        matrix.declare_conflict(first, second)
    matrix.close_perfect()
    assert matrix.is_perfect()
