"""Public-API hygiene: exports resolve, and public items are documented."""

import importlib
import inspect

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.activities",
    "repro.analysis",
    "repro.baselines",
    "repro.core",
    "repro.faults",
    "repro.obs",
    "repro.process",
    "repro.resilience",
    "repro.scheduler",
    "repro.sim",
    "repro.subsystems",
    "repro.theory",
    "repro.workloads",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    module = importlib.import_module(package_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), (
            f"{package_name}.__all__ lists {name!r} but the attribute "
            "is missing"
        )


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_classes_and_functions_documented(package_name):
    module = importlib.import_module(package_name)
    undocumented = []
    for name in getattr(module, "__all__", []):
        item = getattr(module, name, None)
        if inspect.isclass(item) or inspect.isfunction(item):
            if not inspect.getdoc(item):
                undocumented.append(f"{package_name}.{name}")
    assert not undocumented, (
        "public items without docstrings: "
        + ", ".join(undocumented)
    )


def test_version_is_exported():
    assert repro.__version__


def test_modules_have_docstrings():
    for package_name in PACKAGES:
        module = importlib.import_module(package_name)
        assert module.__doc__, f"{package_name} lacks a module docstring"


def test_protocol_registry_covers_bundled_protocols():
    from repro.sim.runner import PROTOCOL_FACTORIES

    assert {
        "process-locking",
        "process-locking-basic",
        "s2pl",
        "osl-pure",
        "serial",
        "aca",
    } <= set(PROTOCOL_FACTORIES)


def test_error_hierarchy():
    from repro import errors

    roots = [
        errors.ActivityModelError,
        errors.CommutativityError,
        errors.ProcessProgramError,
        errors.ProcessStateError,
        errors.SchedulerError,
        errors.ProtocolError,
        errors.SubsystemError,
        errors.ScheduleError,
    ]
    for exc in roots:
        assert issubclass(exc, errors.ReproError)
    assert issubclass(errors.StarvationError, errors.SchedulerError)
    assert issubclass(
        errors.DataDeadlockAvoided, errors.TransactionAborted
    )
    assert issubclass(errors.UnknownActivityError,
                      errors.ActivityModelError)


def test_subsystem_would_block_carries_holders():
    from repro.errors import SubsystemWouldBlock

    exc = SubsystemWouldBlock(frozenset({3, 1}))
    assert exc.holders == frozenset({1, 3})
    assert "1" in str(exc) and "3" in str(exc)
