"""Tests for the thread-per-shard parallel execution mode."""
