"""Health-driven backpressure under the parallel manager.

The shard-queue cap lives on the resilience layer
(:class:`ResilienceConfig.shard_queue_cap`); the parallel manager
answers the depth queries from its per-shard in-flight buckets instead
of a full scan.  Contract: an engaged cap defers admissions (never
kills them — the defer budget force-admits stragglers), and a ``None``
cap leaves the schedule byte-identical.
"""

from __future__ import annotations

from repro.resilience import ResilienceConfig, ResilienceLayer
from repro.scheduler.manager import ManagerConfig
from repro.sim.runner import run_workload
from repro.sim.workload import build_workload

from .conftest import canonical_trace


def _run(workload, seed, workers, layer):
    return run_workload(
        workload,
        "process-locking",
        seed=seed,
        config=ManagerConfig(
            workers=workers, batch_k=2, resilience=layer
        ),
    )


def test_tight_cap_engages_and_still_terminates(small_spec):
    """A cap of 1 throttles nearly every admission on a contended
    workload, yet the run drains and processes terminate."""
    spec = small_spec(seed=4, arrival_spacing=0.1)
    layer = ResilienceLayer(
        ResilienceConfig(shard_queue_cap=1, backpressure_retry_delay=2.0)
    )
    result = _run(build_workload(spec), 4, workers=2, layer=layer)
    assert result.stats.admissions_backpressured > 0
    assert layer.stats.backpressure_deferred > 0
    assert result.stats.committed > 0
    assert len(result.records) == spec.n_processes


def test_defer_budget_force_admits(small_spec):
    """An unreachable cap (0) cannot live-lock admissions: the defer
    budget force-admits every process eventually."""
    spec = small_spec(seed=4, n_processes=6)
    layer = ResilienceLayer(
        ResilienceConfig(
            shard_queue_cap=0,
            backpressure_retry_delay=1.0,
            max_backpressure_defers=3,
        )
    )
    result = _run(build_workload(spec), 4, workers=2, layer=layer)
    assert layer.stats.backpressure_forced > 0
    assert len(result.records) == spec.n_processes


def test_disabled_cap_is_byte_identical(small_spec, uid_floor):
    """shard_queue_cap=None must not perturb the schedule, even with
    the rest of the layer attached."""
    spec = small_spec(seed=6)
    uid_floor.pin()
    bare = _run(build_workload(spec), 6, workers=2, layer=None)
    uid_floor.repin()
    capped_off = _run(
        build_workload(spec),
        6,
        workers=2,
        layer=ResilienceLayer(ResilienceConfig(shard_queue_cap=None)),
    )
    assert canonical_trace(capped_off) == canonical_trace(bare)
    assert capped_off.stats.admissions_backpressured == 0


def test_backpressured_parallel_matches_backpressured_sequential(
    small_spec, uid_floor
):
    """Backpressure and parallel execution compose deterministically:
    the same cap produces the same schedule at workers=0 and workers=2."""
    spec = small_spec(seed=8, arrival_spacing=0.15)

    def layer():
        return ResilienceLayer(
            ResilienceConfig(
                shard_queue_cap=2, backpressure_retry_delay=2.0
            )
        )

    uid_floor.pin()
    sequential = _run(build_workload(spec), 8, workers=0, layer=layer())
    uid_floor.repin()
    parallel = _run(build_workload(spec), 8, workers=2, layer=layer())
    assert canonical_trace(parallel) == canonical_trace(sequential)
    assert (
        parallel.stats.admissions_backpressured
        == sequential.stats.admissions_backpressured
    )
