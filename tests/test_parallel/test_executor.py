"""Unit tests for :class:`repro.parallel.ShardExecutor`."""

from __future__ import annotations

import threading
import time

import pytest

from repro.parallel import ShardExecutor


@pytest.fixture
def pool():
    executor = ShardExecutor(3)
    yield executor
    executor.close()


def test_results_come_back_in_job_order(pool):
    """Completion order may scramble; result order must not."""
    release = threading.Event()

    def slow():
        release.wait(timeout=5.0)
        return "slow"

    def fast():
        release.set()
        return "fast"

    # The slow job goes first and blocks until the fast one (on another
    # worker) has already finished.
    assert pool.map_groups([(0, slow), (1, fast)]) == ["slow", "fast"]


def test_same_worker_executes_in_submission_order(pool):
    seen: list[int] = []
    jobs = [
        (1, lambda index=index: seen.append(index)) for index in range(50)
    ]
    pool.map_groups(jobs)
    assert seen == list(range(50))


def test_jobs_route_to_distinct_worker_threads(pool):
    names = pool.map_groups(
        [
            (worker, lambda: threading.current_thread().name)
            for worker in range(3)
        ]
    )
    assert names == [
        "shard-worker-0", "shard-worker-1", "shard-worker-2"
    ]


def test_worker_ids_wrap_modulo_pool_size(pool):
    names = pool.map_groups(
        [(7, lambda: threading.current_thread().name)]
    )
    assert names == [f"shard-worker-{7 % 3}"]


def test_exception_reraises_on_coordinator(pool):
    def boom():
        raise ValueError("shard fault")

    with pytest.raises(ValueError, match="shard fault"):
        pool.map_groups([(0, lambda: 1), (1, boom)])


def test_zero_workers_runs_inline():
    executor = ShardExecutor(0)
    assert executor.workers == 0
    threads = executor.map_groups(
        [(0, lambda: threading.current_thread())] * 2
    )
    assert all(t is threading.main_thread() for t in threads)
    executor.close()


def test_negative_worker_count_clamps_to_inline():
    executor = ShardExecutor(-4)
    assert executor.workers == 0
    assert executor.map_groups([(0, lambda: "ok")]) == ["ok"]


def test_close_is_idempotent_and_falls_back_inline(pool):
    pool.close()
    pool.close()
    # A closed pool stays usable: jobs run inline on the caller.
    thread = pool.run_on(2, lambda: threading.current_thread())
    assert thread is threading.main_thread()
    # Worker threads actually exited.
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if not any(t.is_alive() for t in pool._threads):
            break
        time.sleep(0.01)
    assert not any(t.is_alive() for t in pool._threads)


def test_run_on_returns_single_result(pool):
    assert pool.run_on(1, lambda: 40 + 2) == 42
