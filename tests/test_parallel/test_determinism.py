"""Byte-identity properties of the parallel execution mode.

The tentpole contract: at the same seed, every (workers, batch-k)
variant of the thread-per-shard manager emits a schedule byte-identical
to the sequential manager's.  These tests sweep small contended
workloads across seeds, worker counts, and batch depths — the perf
benchmark (``benchmarks/test_perf_scaling.py``) asserts the same
property on its large sweep points.
"""

from __future__ import annotations

import pytest

from repro.core.lock_table import LockTable
from repro.parallel import ParallelProcessManager
from repro.scheduler.manager import (
    ManagerConfig,
    ProcessManager,
    make_manager,
)
from repro.sim.runner import make_protocol, run_workload
from repro.sim.workload import build_workload

from .conftest import canonical_trace

SEEDS = (0, 3, 11)
WORKER_COUNTS = (1, 2, 4)
BATCH_KS = (1, 2, 4)


def _run(workload, seed, workers, batch_k, **extra):
    return run_workload(
        workload,
        "process-locking",
        seed=seed,
        config=ManagerConfig(workers=workers, batch_k=batch_k, **extra),
    )


class TestParallelMatchesSequential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_worker_and_batch_grid(self, seed, small_spec, uid_floor):
        """Sequential vs the full workers × batch-k grid, per seed."""
        spec = small_spec(seed=seed)
        uid_floor.pin()
        reference = canonical_trace(
            _run(build_workload(spec), seed, workers=0, batch_k=1)
        )
        for workers in WORKER_COUNTS:
            for batch_k in BATCH_KS:
                uid_floor.repin()
                result = _run(
                    build_workload(spec), seed, workers, batch_k
                )
                assert canonical_trace(result) == reference, (
                    f"schedule diverged at seed={seed} "
                    f"workers={workers} batch_k={batch_k}"
                )

    def test_batch_equals_one_by_one_acquisition(
        self, small_spec, uid_floor
    ):
        """batch_k > 1 acquires exactly what per-lock requests would.

        Same worker count on both sides, so the only varying axis is
        the batch prefix replay vs per-activity requests.
        """
        spec = small_spec(seed=5)
        uid_floor.pin()
        one_by_one = _run(build_workload(spec), 5, workers=2, batch_k=1)
        uid_floor.repin()
        batched = _run(build_workload(spec), 5, workers=2, batch_k=4)
        assert canonical_trace(batched) == canonical_trace(one_by_one)
        assert batched.stats.committed == one_by_one.stats.committed
        assert batched.makespan == one_by_one.makespan

    def test_fanout_dispatch_is_byte_identical(
        self, small_spec, uid_floor, monkeypatch
    ):
        """With worker fan-out forced on, probes run on shard workers;
        the coordinator still applies grants in program order."""
        spec = small_spec(seed=2)
        uid_floor.pin()
        reference = canonical_trace(
            _run(build_workload(spec), 2, workers=0, batch_k=1)
        )
        monkeypatch.setenv("REPRO_PARALLEL_FANOUT", "1")
        uid_floor.repin()
        fanned = _run(build_workload(spec), 2, workers=4, batch_k=4)
        assert canonical_trace(fanned) == reference

    def test_cost_based_pressure_grid(self, small_spec, uid_floor):
        """Wcc-capped programs exercise the misprediction fallback: the
        static prefix prediction must stop at the threshold exactly
        where sequential classification does."""
        spec = small_spec(seed=9).with_(
            wcc_threshold=8.0, parallel_probability=0.3
        )
        uid_floor.pin()
        reference = canonical_trace(
            _run(build_workload(spec), 9, workers=0, batch_k=1)
        )
        for batch_k in BATCH_KS:
            uid_floor.repin()
            result = _run(build_workload(spec), 9, workers=4, batch_k=batch_k)
            assert canonical_trace(result) == reference


class TestMakeManagerDispatch:
    def test_zero_workers_builds_the_sequential_manager(self, small_spec):
        workload = build_workload(small_spec())
        protocol = make_protocol("process-locking", workload)
        manager = make_manager(
            protocol,
            subsystems=workload.make_subsystems(),
            config=ManagerConfig(workers=0),
        )
        assert type(manager) is ProcessManager

    def test_positive_workers_builds_the_parallel_manager(
        self, small_spec
    ):
        workload = build_workload(small_spec())
        protocol = make_protocol("process-locking", workload)
        manager = make_manager(
            protocol,
            subsystems=workload.make_subsystems(),
            config=ManagerConfig(workers=2),
        )
        assert isinstance(manager, ParallelProcessManager)
        manager.close()

    def test_unsharded_table_falls_back_to_sequential(self, small_spec):
        """A protocol over a plain (monolithic) lock table cannot host
        shard workers; the factory silently degrades."""
        workload = build_workload(small_spec())
        protocol = make_protocol("process-locking", workload)
        protocol.table = LockTable(workload.conflicts)
        manager = make_manager(
            protocol,
            subsystems=workload.make_subsystems(),
            config=ManagerConfig(workers=4),
        )
        assert type(manager) is ProcessManager

    def test_repro_workers_env_sets_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_BATCH_K", "4")
        config = ManagerConfig()
        assert config.workers == 2
        assert config.batch_k == 4
        # Explicit arguments always beat the env default — the
        # benchmarks rely on workers=0 staying sequential under a
        # REPRO_WORKERS matrix entry.
        assert ManagerConfig(workers=0, batch_k=1).workers == 0
        assert ManagerConfig(workers=0, batch_k=1).batch_k == 1

    def test_worker_count_caps_at_shard_count(self, small_spec):
        workload = build_workload(small_spec())  # 4 subsystems
        protocol = make_protocol("process-locking", workload)
        manager = make_manager(
            protocol,
            subsystems=workload.make_subsystems(),
            config=ManagerConfig(workers=64),
        )
        try:
            assert manager._executor.workers == 4
            assignment = manager._assignment
            assert set(assignment.values()) <= set(range(4))
        finally:
            manager.close()
