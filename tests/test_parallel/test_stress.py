"""Thread-safety of the shared counters and the audit cursor.

Shard workers touch two pieces of coordinator state concurrently:
:class:`ManagerStats` counters (via ``add``/``note_inflight``) and the
round-robin audit cursor (``_next_audit_shard``).  These stress tests
hammer both from real threads and assert nothing is lost or duplicated
— a bare ``+=`` would drop updates under the preemptive interpreter
switch interval.
"""

from __future__ import annotations

import dataclasses
import sys
import threading
from collections import Counter

import pytest

from repro.scheduler.manager import ManagerConfig, ManagerStats, make_manager
from repro.sim.runner import make_protocol
from repro.sim.workload import build_workload

THREADS = 8
BUMPS = 5_000


@pytest.fixture(autouse=True)
def tight_switch_interval():
    """Force frequent preemption so torn read-modify-writes would show."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    yield
    sys.setswitchinterval(previous)


def _hammer(n_threads, target):
    threads = [
        threading.Thread(target=target, args=(index,))
        for index in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestManagerStatsConcurrency:
    def test_concurrent_adds_lose_nothing(self):
        stats = ManagerStats()

        def bump(_index):
            for _ in range(BUMPS):
                stats.add("resubmissions")
                stats.add("compensated_cost", 0.5)

        _hammer(THREADS, bump)
        assert stats.resubmissions == THREADS * BUMPS
        assert stats.compensated_cost == pytest.approx(
            THREADS * BUMPS * 0.5
        )

    def test_concurrent_inflight_accounting_balances(self):
        stats = ManagerStats()

        def churn(index):
            for step in range(BUMPS):
                now = float(index * BUMPS + step)
                stats.note_inflight(now, +1)
                stats.note_inflight(now, -1)

        _hammer(THREADS, churn)
        assert stats._inflight == 0

    def test_mutex_is_invisible_to_dataclass_machinery(self):
        """The lock must not leak into fields()/eq/repr — stats objects
        from different runs stay comparable."""
        names = {field.name for field in dataclasses.fields(ManagerStats)}
        assert "_mutex" not in names
        assert ManagerStats() == ManagerStats()


class TestAuditCursorConcurrency:
    def test_round_robin_survives_concurrent_advances(self, small_spec):
        workload = build_workload(small_spec())
        protocol = make_protocol("process-locking", workload)
        manager = make_manager(
            protocol,
            subsystems=workload.make_subsystems(),
            config=ManagerConfig(workers=2),
        )
        try:
            names = protocol.table.shard_names()
            picks: list[list[str]] = [[] for _ in range(THREADS)]

            def advance(index):
                mine = picks[index]
                for _ in range(BUMPS):
                    mine.append(manager._next_audit_shard(names))

            _hammer(THREADS, advance)
            counts = Counter(
                name for bucket in picks for name in bucket
            )
            total = THREADS * BUMPS
            assert sum(counts.values()) == total
            # Every advance consumed exactly one cursor slot, so the
            # distribution across shards is perfectly even (the cursor
            # is a shared counter mod len(names)).
            assert set(counts) == set(names)
            floor, ceiling = divmod(total, len(names))
            for name in names:
                assert counts[name] in (floor, floor + 1), counts
            assert (
                sum(1 for n in names if counts[n] == floor + 1) == ceiling
                or ceiling == 0
            )
        finally:
            manager.close()
