"""Worker-aware observability: Perfetto shard-worker tracks and the
``repro explain`` ``[worker N]`` annotation."""

from __future__ import annotations

import pytest

from repro.obs import Tracer, perfetto_trace
from repro.obs.explain import explain_process
from repro.obs.export import _WORKER_TRACK_PID
from repro.scheduler.manager import ManagerConfig
from repro.sim.runner import run_workload
from repro.sim.workload import build_workload


@pytest.fixture
def traced(small_spec):
    def run(workers: int):
        tracer = Tracer()
        run_workload(
            build_workload(small_spec(seed=7)),
            "process-locking",
            seed=7,
            config=ManagerConfig(workers=workers, batch_k=2),
            tracer=tracer,
        )
        return tracer.records()

    return run


class TestPerfettoWorkerTracks:
    def test_parallel_run_grows_worker_thread_tracks(self, traced):
        trace = perfetto_trace(traced(workers=2))
        events = trace["traceEvents"]
        # Still a valid Perfetto stream.
        assert {e["ph"] for e in events} <= {"M", "X", "i", "C"}
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert "shard workers" in names
        workers_named = {
            name for name in names if name.startswith("worker-")
        }
        assert workers_named  # at least one worker track materialized
        # Mirrored spans live on the synthetic worker pid, one tid per
        # worker, and every mirrored span names a real activity span.
        mirrored = [
            e
            for e in events
            if e["ph"] == "X" and e["pid"] == _WORKER_TRACK_PID
        ]
        assert mirrored
        assert {f"worker-{e['tid']}" for e in mirrored} <= workers_named
        for span in mirrored:
            assert span["args"]["worker"] == span["tid"]

    def test_sequential_run_has_no_worker_tracks(self, traced):
        trace = perfetto_trace(traced(workers=0))
        events = trace["traceEvents"]
        assert not any(
            e.get("pid") == _WORKER_TRACK_PID for e in events
        )
        starts = [
            r for r in traced(workers=0) if r["kind"] == "activity.start"
        ]
        assert starts
        assert all(r.get("worker") is None for r in starts)

    def test_parallel_start_events_carry_worker_ids(self, traced):
        starts = [
            r for r in traced(workers=2) if r["kind"] == "activity.start"
        ]
        assert starts
        workers = {r.get("worker") for r in starts}
        assert None not in workers
        assert workers <= {0, 1}


class TestExplainWorkerTag:
    def test_parked_lines_name_the_owning_worker(self, traced):
        records = traced(workers=2)
        parked_waiters = [
            r["waiter"]
            for r in records
            if r["kind"] == "wait.edge"
            and r["op"] == "insert"
            and r.get("worker") is not None
        ]
        assert parked_waiters, "workload produced no contended parks"
        text = explain_process(records, parked_waiters[0])
        assert "[worker " in text

    def test_sequential_explain_never_tags_workers(self, traced):
        records = traced(workers=0)
        waiters = {
            r["waiter"] for r in records if r["kind"] == "wait.edge"
        }
        assert waiters, "workload produced no contended parks"
        for waiter in waiters:
            assert "[worker " not in explain_process(records, waiter)
