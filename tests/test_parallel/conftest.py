"""Shared helpers for the parallel-mode tests."""

from __future__ import annotations

import json

import pytest

from repro.sim.workload import WorkloadSpec


@pytest.fixture
def small_spec():
    """A contended multi-subsystem workload small enough for grids."""

    def build(seed: int = 7, **overrides) -> WorkloadSpec:
        params = dict(
            n_processes=18,
            n_activity_types=16,
            n_subsystems=4,
            conflict_density=0.5,
            arrival_spacing=0.4,
            failure_probability=0.05,
            seed=seed,
        )
        params.update(overrides)
        return WorkloadSpec(**params)

    return build


def canonical_trace(result) -> str:
    """Byte-stable schedule serialization (uids renumbered by first
    appearance, since the uid counter is interpreter-global)."""
    renumber: dict[int, int] = {}

    def canon(uid):
        if uid is None or uid == 0:
            return uid
        return renumber.setdefault(uid, len(renumber) + 1)

    return json.dumps(
        [
            (
                event.position,
                str(event.process),
                event.kind.value,
                event.name,
                canon(event.uid),
                canon(event.compensates),
            )
            for event in result.trace.events
        ],
        separators=(",", ":"),
    )
