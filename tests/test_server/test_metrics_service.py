"""Service metrics plane over the wire: METRICS and DUMP verbs.

Covers the verb round-trips, agreement between the event-derived
registry and the manager's own stats on a *live* service, the wall
submit-to-terminal histogram, and post-drain availability (both verbs
stay usable after DRAIN for post-mortems).
"""

from __future__ import annotations

import pytest

from repro.client import ServiceClient
from repro.obs import replay_metrics
from repro.server.net import start_server_thread
from repro.server.service import ServiceConfig
from repro.sim.workload import WorkloadSpec


@pytest.fixture()
def server():
    handle = start_server_thread(
        ServiceConfig(
            spec=WorkloadSpec(
                n_processes=6, conflict_density=0.5, seed=5
            ),
            seed=5,
            flight_capacity=100_000,
        )
    )
    yield handle
    handle.stop()


def connect(handle) -> ServiceClient:
    return ServiceClient(handle.host, handle.port, timeout=30)


def _family(snapshot: dict, name: str) -> dict:
    for family in snapshot["metrics"]["families"]:
        if family["name"] == name:
            return family
    raise AssertionError(f"family {name} missing")


def _counter(snapshot: dict, name: str, **labels) -> float:
    total = 0.0
    for sample in _family(snapshot, name)["samples"]:
        if all(sample["labels"].get(k) == v for k, v in labels.items()):
            total += sample["value"]
    return total


class TestMetricsVerb:
    def test_registry_tracks_live_work(self, server):
        with connect(server) as client:
            pids = client.submit(count=4, wait=True)["pids"]
            client.cancel(pids[0])  # already terminal -> no-op
            body = client.metrics()
            assert body["now"] > 0
            outcomes = _counter(
                body, "repro_process_outcomes_total"
            )
            assert outcomes == 4
            assert (
                _counter(body, "repro_process_submitted_total") == 4
            )
            # Service-level gauges are part of the same registry.
            _family(body, "repro_service_backlog")
            _family(body, "repro_bus_frames")

    def test_metrics_agree_with_stats_on_live_service(self, server):
        with connect(server) as client:
            client.submit(count=6, wait=True)
            stats = client.stats()["manager"]
            body = client.metrics()
            assert (
                _counter(
                    body,
                    "repro_process_outcomes_total",
                    outcome="committed",
                )
                == stats["committed"]
            )
            assert (
                _counter(body, "repro_process_submitted_total")
                == stats["submitted"]
            )
            assert (
                _counter(body, "repro_activity_retries_total")
                == stats["retries"]
            )
            assert (
                _counter(body, "repro_compensations_total")
                == stats["compensations"]
            )

    def test_submit_to_commit_histogram_observes_every_pid(
        self, server
    ):
        with connect(server) as client:
            client.submit(count=5, wait=True)
            family = _family(
                client.metrics(), "repro_submit_to_commit_seconds"
            )
            total = sum(s["count"] for s in family["samples"])
            assert total == 5
            outcomes = {
                s["labels"]["outcome"] for s in family["samples"]
            }
            assert "committed" in outcomes

    def test_shard_queue_gauges_cover_every_shard(self, server):
        with connect(server) as client:
            client.submit(count=2, wait=True)
            family = _family(
                client.metrics(), "repro_shard_queue_depth"
            )
            shards = {s["labels"]["shard"] for s in family["samples"]}
            assert len(shards) >= 2  # zeros included: stable key set


class TestDumpVerb:
    def test_dump_returns_restorable_trace_records(self, server):
        with connect(server) as client:
            client.submit(count=3, wait=True)
            body = client.dump()
            assert body["retained"] == len(body["events"])
            assert body["appended"] >= body["retained"]
            kinds = {r["kind"] for r in body["events"]}
            assert "process.submit" in kinds
            assert "process.commit" in kinds
            # The restored records feed the replay path directly.
            metrics = replay_metrics(body["events"])
            assert metrics.outcomes.value(("committed",)) > 0

    def test_dump_window_matches_flight_capacity(self):
        handle = start_server_thread(
            ServiceConfig(
                spec=WorkloadSpec(n_processes=6, seed=5),
                seed=5,
                flight_capacity=16,
            )
        )
        try:
            with connect(handle) as client:
                client.submit(count=4, wait=True)
                body = client.dump()
                assert body["capacity"] == 16
                assert body["retained"] == 16
                assert body["appended"] > 16
                seqs = [r["seq"] for r in body["events"]]
                assert seqs == sorted(seqs)
        finally:
            handle.stop()


class TestPostDrain:
    def test_metrics_and_dump_survive_drain(self, server):
        with connect(server) as client:
            client.submit(count=2, wait=True)
            assert client.drain()["drained"] is True
            body = client.metrics()
            assert (
                _counter(body, "repro_process_submitted_total") == 2
            )
            dump = client.dump()
            assert dump["retained"] > 0

    def test_drain_settles_every_latency_sample(self, server):
        with connect(server) as client:
            client.submit(count=3)  # no wait: drain settles them
            client.drain()
            family = _family(
                client.metrics(), "repro_submit_to_commit_seconds"
            )
            assert sum(s["count"] for s in family["samples"]) == 3
