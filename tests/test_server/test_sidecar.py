"""HTTP metrics sidecar: scrape validity, parity, health, flight dump.

The double-scrape test is the in-tree version of the CI smoke job:
scrape, do work, scrape again, and assert every counter moved
monotonically — using our own exposition parser, no external client.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import urllib.error
import urllib.request

import pytest

from repro.client import ServiceClient
from repro.obs import read_jsonl, replay_metrics
from repro.obs.metrics import parse_prometheus
from repro.server.net import start_server_thread
from repro.server.service import ServiceConfig
from repro.server.sidecar import PROMETHEUS_CONTENT_TYPE
from repro.sim.workload import WorkloadSpec


@pytest.fixture()
def server():
    handle = start_server_thread(
        ServiceConfig(
            spec=WorkloadSpec(
                n_processes=6, conflict_density=0.5, seed=5
            ),
            seed=5,
        ),
        metrics_port=0,
    )
    yield handle
    handle.stop()


def _get(handle, path: str):
    with urllib.request.urlopen(
        f"http://{handle.host}:{handle.metrics_port}{path}", timeout=10
    ) as response:
        return response.status, response.headers, response.read()


def connect(handle) -> ServiceClient:
    return ServiceClient(handle.host, handle.port, timeout=30)


def _counters(text: str) -> dict:
    """Every counter sample of one scrape, keyed for comparison."""
    parsed = parse_prometheus(text)
    out = {}
    for name, family in parsed.items():
        if family["type"] != "counter":
            continue
        for key, value in family["samples"].items():
            out[key] = value
    return parsed, out


class TestScrape:
    def test_exposition_parses_and_counters_are_monotone(self, server):
        with connect(server) as client:
            client.submit(count=2, wait=True)
            status, headers, body = _get(server, "/metrics")
            assert status == 200
            assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
            first, counters_1 = _counters(body.decode("utf-8"))
            assert "repro_process_outcomes_total" in first
            assert "repro_events_total" in first

            client.submit(count=3, wait=True)
            _, _, body = _get(server, "/metrics")
            second, counters_2 = _counters(body.decode("utf-8"))
            for key, before in counters_1.items():
                assert counters_2.get(key, 0) >= before, key
            submitted = counters_2[
                ("repro_process_submitted_total", frozenset())
            ]
            assert submitted == 5

    def test_json_endpoint_equals_wire_verb(self, server):
        with connect(server) as client:
            client.submit(count=2, wait=True)
            via_wire = client.metrics()
            _, headers, body = _get(server, "/metrics.json")
            assert headers["Content-Type"] == "application/json"
            via_http = json.loads(body)
            assert via_http["metrics"] == via_wire["metrics"]

    def test_healthz_flips_to_503_after_drain(self, server):
        status, _, body = _get(server, "/healthz")
        assert status == 200
        assert json.loads(body)["ok"] is True
        with connect(server) as client:
            client.drain()
        try:
            status, _, body = _get(server, "/healthz")
        except urllib.error.HTTPError as error:
            status, body = error.code, error.read()
        assert status == 503
        assert json.loads(body)["drained"] is True

    def test_unknown_path_is_404(self, server):
        try:
            status, _, _ = _get(server, "/nope")
        except urllib.error.HTTPError as error:
            status = error.code
        assert status == 404


_SIGTERM_SERVER = """
import sys
from repro.cli import main
sys.exit(main([
    "serve", "--port", "0", "--metrics-port", "0",
    "--processes", "4", "--seed", "3",
]))
"""


class TestSigtermFlightDump:
    def test_drain_writes_the_flight_recorder_to_disk(self, tmp_path):
        flight_path = tmp_path / "flight.jsonl"
        env = os.environ.copy()
        env["REPRO_FLIGHT_PATH"] = str(flight_path)
        proc = subprocess.Popen(
            [sys.executable, "-c", _SIGTERM_SERVER],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
        )
        try:
            line = proc.stdout.readline().decode()
            assert "listening on" in line, line
            host_port = line.split("listening on ")[1].split()[0]
            host, port = host_port.rsplit(":", 1)
            metrics_line = proc.stdout.readline().decode()
            assert "metrics on http://" in metrics_line, metrics_line
            with ServiceClient(host, int(port), timeout=30) as client:
                client.submit(count=3, wait=True)
                proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=30)
            assert proc.returncode == 0, err.decode()
            assert b"drained cleanly" in out

            assert flight_path.exists()
            records = read_jsonl(flight_path)
            assert records
            metrics = replay_metrics(records)
            assert metrics.outcomes.value(("committed",)) > 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
