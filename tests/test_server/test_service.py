"""Tests for the engine-thread service core (no sockets)."""

import time

import pytest

from repro.server.service import (
    ProcessLockingService,
    ServiceConfig,
    ServiceError,
)
from repro.sim.workload import WorkloadSpec


def make_service(**overrides) -> ProcessLockingService:
    defaults = dict(
        spec=WorkloadSpec(n_processes=4, seed=11), seed=11
    )
    defaults.update(overrides)
    return ProcessLockingService(ServiceConfig(**defaults)).start()


def call(service, **request) -> dict:
    return service.execute(request).result(timeout=30)


class TestLifecycle:
    def test_submit_wait_reports_outcomes(self):
        service = make_service()
        try:
            body = call(
                service, cmd="submit", program=0, count=3, wait=True
            )
            assert body["pids"] == [1, 2, 3]
            assert len(body["outcomes"]) == 3
            for row in body["outcomes"]:
                assert row["outcome"] in ("committed", "aborted")
                if row["outcome"] == "committed":
                    assert row["latency"] >= 0
        finally:
            service.stop()

    def test_status_after_quiescence(self):
        service = make_service()
        try:
            pid = call(service, cmd="submit", wait=True)["pids"][0]
            body = call(service, cmd="status", pid=pid)
            assert body["state"] == "done"
            assert body["outcome"] in ("committed", "aborted")
        finally:
            service.stop()

    def test_unknown_pid_errors(self):
        service = make_service()
        try:
            with pytest.raises(ServiceError) as excinfo:
                call(service, cmd="status", pid=999)
            assert excinfo.value.code == "unknown-pid"
            with pytest.raises(ServiceError) as excinfo:
                call(service, cmd="cancel", pid=999)
            assert excinfo.value.code == "unknown-pid"
        finally:
            service.stop()

    def test_bad_arguments_rejected(self):
        service = make_service()
        try:
            for request in (
                {"cmd": "submit", "count": 0},
                {"cmd": "submit", "program": "zero"},
                {"cmd": "submit", "at": -1},
                {"cmd": "status"},
                {"cmd": "check", "stride": 0},
            ):
                with pytest.raises(ServiceError) as excinfo:
                    call(service, **request)
                assert excinfo.value.code == "bad-request"
        finally:
            service.stop()

    def test_catalog_wraps_modulo(self):
        service = make_service()
        try:
            size = len(service.workload.programs)
            body = call(
                service,
                cmd="submit",
                program=size + 1,
                wait=True,
            )
            assert body["outcomes"][0]["outcome"] in (
                "committed",
                "aborted",
            )
        finally:
            service.stop()


class TestCancel:
    def test_cancel_pending_process_in_paced_mode(self):
        # A microscopic time scale keeps the far-future arrival
        # uninitiated for the duration of the test.
        service = make_service(time_scale=1e-6, tick=0.005)
        try:
            pid = call(
                service, cmd="submit", at=1_000_000.0
            )["pids"][0]
            body = call(service, cmd="cancel", pid=pid)
            assert body == {"pid": pid, "cancelled": True}
            status = call(service, cmd="status", pid=pid)
            assert status["state"] == "done"
            assert status["outcome"] == "cancelled"
        finally:
            service.stop()

    def test_cancel_after_termination_is_noop(self):
        service = make_service()
        try:
            pid = call(service, cmd="submit", wait=True)["pids"][0]
            body = call(service, cmd="cancel", pid=pid)
            assert body["cancelled"] is False
        finally:
            service.stop()

    def test_cancelled_stat_counts(self):
        service = make_service(time_scale=1e-6, tick=0.005)
        try:
            pid = call(service, cmd="submit", at=1e9)["pids"][0]
            call(service, cmd="cancel", pid=pid)
            stats = call(service, cmd="stats")
            assert stats["manager"]["cancellations"] == 1
        finally:
            service.stop()


class TestOverload:
    def test_backlog_shed_at_the_socket(self):
        service = make_service(
            time_scale=1e-6, tick=0.005, max_backlog=1
        )
        try:
            call(service, cmd="submit", at=1e9)
            # The mirror updates on the next engine tick; poll briefly.
            deadline = 200
            while (
                service.shed_reason("submit") is None and deadline > 0
            ):
                deadline -= 1
                time.sleep(0.005)
            shed = service.shed_reason("submit")
            assert shed is not None and shed[0] == "overloaded"
            with pytest.raises(ServiceError) as excinfo:
                call(service, cmd="submit")
            assert excinfo.value.code == "overloaded"
            # Non-submit commands still pass.
            assert call(service, cmd="ping")["pong"] is True
        finally:
            service.stop()

    def test_open_breaker_mirror_sheds(self):
        service = make_service()
        try:
            service._open_breakers = ("billing",)
            shed = service.shed_reason("submit")
            assert shed is not None
            assert "billing" in shed[1]
            assert service.shed_reason("stats") is None
        finally:
            service._open_breakers = ()
            service.stop()


class TestCheckAndDrain:
    def test_check_battery_on_live_trace(self):
        service = make_service()
        try:
            call(service, cmd="submit", count=4, wait=True)
            body = call(service, cmd="check")
            assert body["complete"] is True
            assert body["correct_termination"] is True
            assert body["prefix_reducible"] is True
            assert body["process_recoverable"] is True
            assert body["events"] > 0
        finally:
            service.stop()

    def test_drain_quiesces_and_rejects_new_work(self):
        service = make_service()
        try:
            call(service, cmd="submit", count=2, wait=True)
            body = call(service, cmd="drain")
            assert body["drained"] is True
            assert body["quiesced"] is True
            with pytest.raises(ServiceError) as excinfo:
                call(service, cmd="submit")
            assert excinfo.value.code == "draining"
            # Observability survives the drain.
            assert call(service, cmd="stats")["service"]["draining"]
        finally:
            service.stop()

    def test_drain_loses_no_inflight_process(self):
        service = make_service(time_scale=1e-6, tick=0.005)
        try:
            call(service, cmd="submit", count=3, at=50.0)
            body = call(service, cmd="drain")
            assert body["quiesced"] is True
            stats = body["manager"]
            settled = (
                stats["committed"]
                + stats["intrinsic_aborts"]
                + stats["cancellations"]
            )
            assert stats["submitted"] == 3
            assert settled >= 1  # every pid reached a terminal state
            for pid in (1, 2, 3):
                status = call(service, cmd="status", pid=pid)
                assert status["state"] == "done"
        finally:
            service.stop()


class TestParallelBackend:
    def test_workers_spin_up_parallel_manager(self):
        from repro.parallel.manager import ParallelProcessManager

        service = make_service(workers=2, batch_k=2)
        try:
            assert isinstance(
                service.manager, ParallelProcessManager
            )
            body = call(
                service, cmd="submit", count=4, wait=True
            )
            assert len(body["outcomes"]) == 4
            assert call(service, cmd="check")["prefix_reducible"]
        finally:
            service.stop()


#: Scripted session run by the determinism test: a fresh process each
#: time, because activity uids are a process-global counter by design
#: (the faults harness remaps them for the same reason).
_SESSION_SCRIPT = """
import sys
from repro.server.protocol import encode
from repro.server.service import ProcessLockingService, ServiceConfig
from repro.sim.workload import WorkloadSpec

service = ProcessLockingService(
    ServiceConfig(spec=WorkloadSpec(n_processes=4, seed=11), seed=11)
).start()
chunks = []
service.bus.subscribe(
    ["process.*", "lock.*"],
    lambda topic, record: chunks.append(
        encode({"event": topic, "record": record})
    ),
)
for request in (
    {"cmd": "ping"},
    {"cmd": "submit", "count": 3, "wait": True},
    {"cmd": "status", "pid": 2},
    {"cmd": "stats"},
    {"cmd": "check"},
):
    chunks.append(encode(service.execute(request).result(30)))
service.stop()
sys.stdout.buffer.write(b"".join(chunks))
"""


class TestDeterminism:
    def test_scripted_session_is_byte_deterministic(self):
        import os
        import subprocess
        import sys

        def transcript() -> bytes:
            proc = subprocess.run(
                [sys.executable, "-c", _SESSION_SCRIPT],
                capture_output=True,
                env=os.environ.copy(),
                timeout=120,
            )
            assert proc.returncode == 0, proc.stderr.decode()
            return proc.stdout

        first = transcript()
        assert b'"event":"process.commit"' in first
        assert first == transcript()
