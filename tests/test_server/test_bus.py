"""Tests for the event bus and the tracer bridge."""

import threading

from repro.obs.events import ProcessSubmitted
from repro.server.bridge import BusTracer
from repro.server.bus import EventBus, topic_matches


class TestTopicMatches:
    def test_exact(self):
        assert topic_matches("process.commit", "process.commit")
        assert not topic_matches("process.commit", "process.abort")

    def test_prefix(self):
        assert topic_matches("process.*", "process.commit")
        assert topic_matches("process.*", "process.cancel")
        assert not topic_matches("process.*", "lock.grant")
        # The prefix includes the dot: "process.*" != "processor.x".
        assert not topic_matches("process.*", "processor.x")

    def test_wildcard(self):
        assert topic_matches("*", "anything.at.all")


class TestEventBus:
    def test_publish_routes_by_pattern(self):
        bus = EventBus()
        seen: list[tuple[str, dict]] = []
        bus.subscribe(["process.*"], lambda t, r: seen.append((t, r)))
        bus.publish("process.commit", {"pid": 1})
        bus.publish("lock.grant", {"pid": 1})
        assert [t for t, _ in seen] == ["process.commit"]
        assert bus.counters.published == 2
        assert bus.counters.delivered == 1
        assert bus.counters.by_topic["lock.grant"] == 1

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        token = bus.subscribe(["*"], lambda t, r: seen.append(t))
        assert bus.unsubscribe(token)
        assert not bus.unsubscribe(token)
        bus.publish("x", {})
        assert seen == []

    def test_raising_subscriber_is_counted_not_fatal(self):
        bus = EventBus()

        def bad(topic, record):
            raise RuntimeError("boom")

        good: list[str] = []
        bus.subscribe(["*"], bad)
        bus.subscribe(["*"], lambda t, r: good.append(t))
        bus.publish("x", {})
        assert good == ["x"]
        assert bus.counters.dropped == 1

    def test_empty_patterns_rejected(self):
        bus = EventBus()
        try:
            bus.subscribe([], lambda t, r: None)
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")

    def test_concurrent_publish_and_subscribe(self):
        bus = EventBus()
        seen = []
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                token = bus.subscribe(["*"], lambda t, r: None)
                bus.unsubscribe(token)

        thread = threading.Thread(target=churn)
        thread.start()
        try:
            bus.subscribe(["*"], lambda t, r: seen.append(t))
            for i in range(500):
                bus.publish("tick", {"i": i})
        finally:
            stop.set()
            thread.join()
        assert len(seen) == 500


class TestBusTracer:
    def test_emit_publishes_flat_record(self):
        bus = EventBus()
        tracer = BusTracer(bus)
        seen: list[tuple[str, dict]] = []
        bus.subscribe(["process.submit"], lambda t, r: seen.append((t, r)))
        tracer.bind_clock(lambda: 4.5)
        tracer.emit(ProcessSubmitted(pid=7))
        assert seen == [
            (
                "process.submit",
                {"seq": 0, "t": 4.5, "kind": "process.submit", "pid": 7},
            )
        ]
        assert tracer.recent[-1]["pid"] == 7
        assert tracer.emitted == 1

    def test_offset_applied_like_obs_tracer(self):
        tracer = BusTracer(EventBus())
        tracer.bind_clock(lambda: 1.0)
        tracer.offset = 10.0
        tracer.emit(ProcessSubmitted(pid=1))
        assert tracer.recent[-1]["t"] == 11.0

    def test_retention_bounded(self):
        tracer = BusTracer(EventBus(), retain=3)
        for pid in range(5):
            tracer.emit(ProcessSubmitted(pid=pid))
        assert [r["pid"] for r in tracer.recent] == [2, 3, 4]
        assert tracer.emitted == 5

    def test_protocol_compatible(self):
        tracer = BusTracer(EventBus())
        assert tracer.enabled is True
        tracer.bind_sampler(lambda: {"g": 1.0})  # accepted, unused
