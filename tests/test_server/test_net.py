"""Socket-level tests: server thread + real clients over TCP."""

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.client import ServiceCallError, ServiceClient
from repro.server.net import start_server_thread
from repro.server.service import ServiceConfig
from repro.sim.workload import WorkloadSpec


@pytest.fixture()
def server():
    handle = start_server_thread(
        ServiceConfig(
            spec=WorkloadSpec(n_processes=6, seed=5), seed=5
        )
    )
    yield handle
    handle.stop()


def connect(handle) -> ServiceClient:
    return ServiceClient(handle.host, handle.port, timeout=30)


class TestWire:
    def test_ping_and_stats(self, server):
        with connect(server) as client:
            assert client.ping()["pong"] is True
            stats = client.stats()
            assert stats["manager"]["submitted"] == 0
            assert stats["service"]["catalog_size"] == 6

    def test_submit_status_cancel_cycle(self, server):
        with connect(server) as client:
            pids = client.submit(count=2, wait=True)["pids"]
            assert pids == [1, 2]
            assert client.status(pids[0])["state"] == "done"
            assert client.cancel(pids[0])["cancelled"] is False

    def test_error_frames(self, server):
        with connect(server) as client:
            with pytest.raises(ServiceCallError) as excinfo:
                client.status(404)
            assert excinfo.value.code == "unknown-pid"
            with pytest.raises(ServiceCallError) as excinfo:
                client.call("submit", count=0)
            assert excinfo.value.code == "bad-request"

    def test_malformed_line_answered_not_fatal(self, server):
        with connect(server) as client:
            with client._send_mutex:
                client._sock.sendall(b"this is not json\n")
            # The error frame has no id, so it lands in no pending
            # future; the connection must survive for the next call.
            time.sleep(0.1)
            assert client.ping()["pong"] is True

    def test_subscribe_streams_lifecycle_events(self, server):
        with connect(server) as client:
            client.subscribe("process.*")
            client.submit(count=2, wait=True)
            kinds = set()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                frame = client.next_event(timeout=1.0)
                if frame is None:
                    break
                kinds.add(frame["event"])
                if "process.commit" in kinds:
                    break
            assert "process.submit" in kinds
            assert "process.commit" in kinds

    def test_unsubscribe_stops_the_stream(self, server):
        with connect(server) as client:
            token = client.subscribe("process.*")["token"]
            client.unsubscribe(token)
            client.submit(wait=True)
            assert client.next_event(timeout=0.3) is None


class TestConcurrentClients:
    def test_four_clients_submit_in_parallel(self, server):
        results: list[dict] = []
        errors: list[Exception] = []

        def worker(index: int) -> None:
            try:
                with connect(server) as client:
                    body = client.submit(
                        program=index, count=2, wait=True
                    )
                    results.append(body)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert len(results) == 4
        all_pids = sorted(
            pid for body in results for pid in body["pids"]
        )
        assert all_pids == list(range(1, 9))  # unique, no clashes
        with connect(server) as client:
            stats = client.stats()
            assert stats["manager"]["submitted"] == 8
            battery = client.check()
            assert battery["prefix_reducible"] is True
            assert battery["process_recoverable"] is True


class TestDrain:
    def test_stop_drains_cleanly(self):
        handle = start_server_thread(
            ServiceConfig(
                spec=WorkloadSpec(n_processes=4, seed=9), seed=9
            )
        )
        client = connect(handle)
        client.submit(count=3, wait=True)
        drain = client.drain()
        assert drain["drained"] is True
        assert drain["quiesced"] is True
        client.close()
        handle.stop()


_SIGTERM_SERVER = """
import sys
from repro.cli import main
sys.exit(main([
    "serve", "--port", "0", "--processes", "4", "--seed", "3",
]))
"""


class TestSigterm:
    def test_sigterm_drains_without_losing_processes(self, tmp_path):
        env = os.environ.copy()
        proc = subprocess.Popen(
            [sys.executable, "-c", _SIGTERM_SERVER],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
        )
        try:
            line = proc.stdout.readline().decode()
            assert "listening on" in line, line
            host_port = line.split("listening on ")[1].split()[0]
            host, port = host_port.rsplit(":", 1)
            with ServiceClient(host, int(port), timeout=30) as client:
                submitted = client.submit(count=3, wait=True)
                assert len(submitted["outcomes"]) == 3
                proc.send_signal(signal.SIGTERM)
                # The drain announcement reaches subscribers and the
                # link closes only after every process terminated.
            out, err = proc.communicate(timeout=30)
            assert proc.returncode == 0, err.decode()
            assert b"drained cleanly" in out, out + err
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
