"""Tests for the JSON-lines wire protocol helpers."""

import pytest

from repro.server.protocol import (
    COMMANDS,
    WireError,
    decode_line,
    encode,
    error_response,
    event_frame,
    ok_response,
)


class TestEncode:
    def test_canonical_and_newline_terminated(self):
        frame = {"b": 1, "a": [2, 3]}
        data = encode(frame)
        assert data == b'{"a":[2,3],"b":1}\n'

    def test_byte_stable_across_key_orders(self):
        assert encode({"x": 1, "y": 2}) == encode({"y": 2, "x": 1})


class TestDecodeLine:
    def test_round_trip(self):
        line = encode({"cmd": "ping", "id": 3})
        assert decode_line(line) == {"cmd": "ping", "id": 3}

    def test_accepts_str(self):
        assert decode_line('{"cmd": "stats"}')["cmd"] == "stats"

    @pytest.mark.parametrize(
        "line,code",
        [
            (b"not json\n", "bad-request"),
            (b"[1,2]\n", "bad-request"),
            (b'{"no": "cmd"}\n', "bad-request"),
            (b'{"cmd": 7}\n', "bad-request"),
            (b'{"cmd": "frobnicate"}\n', "unknown-command"),
            (b"\xff\xfe\n", "bad-request"),
        ],
    )
    def test_bad_frames(self, line, code):
        with pytest.raises(WireError) as excinfo:
            decode_line(line)
        assert excinfo.value.code == code

    def test_command_set(self):
        assert {"submit", "status", "cancel", "subscribe", "stats",
                "check", "drain", "ping", "bye"} <= COMMANDS


class TestFrames:
    def test_ok_echoes_id(self):
        assert ok_response(9, pids=[1]) == {
            "id": 9,
            "ok": True,
            "pids": [1],
        }

    def test_error_shape(self):
        frame = error_response(None, "overloaded", "retry later")
        assert frame["ok"] is False
        assert frame["error"] == {
            "code": "overloaded",
            "message": "retry later",
        }

    def test_event_frame(self):
        assert event_frame("process.commit", {"pid": 2}) == {
            "event": "process.commit",
            "record": {"pid": 2},
        }
