"""The EventBus bridge records exactly what a direct tracer records.

Satellite guarantee for the live-observability story: a trace collected
*through the service* (bus frames, or the flight recorder's DUMP) is
the same artifact a local :class:`~repro.obs.Tracer` would have
written, so ``repro explain`` gives identical answers either way.
"""

from __future__ import annotations

import json

from repro.client import ServiceClient
from repro.obs import MetricsTracer, Tracer, explain_process
from repro.obs.events import EVENT_TYPES
from repro.scheduler.manager import make_manager
from repro.server.bridge import BusTracer
from repro.server.bus import EventBus
from repro.server.net import start_server_thread
from repro.server.service import ServiceConfig
from repro.sim.runner import make_protocol
from repro.sim.workload import WorkloadSpec, build_workload

SPEC = WorkloadSpec(
    n_processes=10,
    n_activity_types=6,
    conflict_density=0.5,
    failure_probability=0.05,
    arrival_spacing=0.5,
    seed=11,
)


def _run(tracer):
    workload = build_workload(SPEC)
    protocol = make_protocol("process-locking", workload)
    manager = make_manager(
        protocol,
        subsystems=workload.make_subsystems(),
        seed=SPEC.seed,
        tracer=tracer,
    )
    for i, program in enumerate(workload.programs):
        manager.submit(program, at=workload.arrival_time(i))
    manager.run()


def test_bridge_records_byte_identical_to_direct_tracer(uid_floor):
    uid_floor.pin()
    direct = Tracer()
    _run(direct)

    uid_floor.repin()
    bus = EventBus()
    collected: list[dict] = []
    bus.subscribe(["*"], lambda topic, record: collected.append(record))
    _run(MetricsTracer(sinks=(BusTracer(bus),)))

    direct_text = "\n".join(
        json.dumps(r, sort_keys=True) for r in direct.records()
    )
    bridged_text = "\n".join(
        json.dumps(r, sort_keys=True) for r in collected
    )
    assert direct_text == bridged_text

    # And the causal account derived from either stream is identical.
    pid = next(r["pid"] for r in direct.records() if "pid" in r)
    assert explain_process(direct.records(), pid) == explain_process(
        collected, pid
    )


def test_live_service_bus_stream_matches_flight_dump():
    """Subscribed frames and DUMP describe the same emission stream."""
    handle = start_server_thread(
        ServiceConfig(
            spec=WorkloadSpec(
                n_processes=6, conflict_density=0.4, seed=5
            ),
            seed=5,
            flight_capacity=100_000,
        )
    )
    try:
        with ServiceClient(handle.host, handle.port, timeout=30) as client:
            client.subscribe("*")
            client.submit(count=4, wait=True)
            dump = client.dump()["events"]
            assert dump

            streamed: list[dict] = []
            while len(streamed) < len(dump):
                frame = client.next_event(timeout=5.0)
                assert frame is not None, (
                    f"stream dried up at {len(streamed)}/{len(dump)}"
                )
                if frame["event"] in EVENT_TYPES:
                    streamed.append(frame["record"])

            # Both sides stamp from the same virtual clock and emit
            # counter, so the streams agree record for record.
            assert streamed == dump

            pid = next(r["pid"] for r in dump if "pid" in r)
            assert explain_process(dump, pid) == explain_process(
                streamed, pid
            )
    finally:
        handle.stop()
