"""Tests for arrival-process generators."""

import pytest

from repro.errors import SchedulerError
from repro.sim.arrivals import (
    burst_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.sim.runner import run_workload
from repro.sim.workload import WorkloadSpec, build_workload


class TestGenerators:
    def test_poisson_monotone_and_deterministic(self):
        first = poisson_arrivals(rate=0.5, count=10, seed=4)
        second = poisson_arrivals(rate=0.5, count=10, seed=4)
        assert first == second
        assert all(b > a for a, b in zip(first, first[1:]))

    def test_poisson_rate_scales_spacing(self):
        slow = poisson_arrivals(rate=0.1, count=200, seed=1)
        fast = poisson_arrivals(rate=1.0, count=200, seed=1)
        assert slow[-1] > fast[-1]

    def test_poisson_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            poisson_arrivals(rate=0.0, count=5)

    def test_uniform(self):
        assert uniform_arrivals(2.0, 3) == [0.0, 2.0, 4.0]
        with pytest.raises(ValueError):
            uniform_arrivals(-1.0, 3)

    def test_burst(self):
        assert burst_arrivals(2, 5.0, 5) == [0.0, 0.0, 5.0, 5.0, 10.0]
        with pytest.raises(ValueError):
            burst_arrivals(0, 5.0, 5)


class TestRunnerIntegration:
    def test_arrivals_override(self):
        workload = build_workload(WorkloadSpec(n_processes=3, seed=1))
        arrivals = [0.0, 100.0, 200.0]
        result = run_workload(
            workload, "process-locking", arrivals=arrivals
        )
        assert result.records[2].submitted_at == 100.0
        assert result.makespan >= 200.0

    def test_wrong_length_rejected(self):
        workload = build_workload(WorkloadSpec(n_processes=3, seed=1))
        with pytest.raises(SchedulerError):
            run_workload(workload, "serial", arrivals=[0.0])
