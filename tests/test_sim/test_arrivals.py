"""Tests for arrival-process generators."""

import pytest

from repro.errors import SchedulerError
from repro.sim.arrivals import (
    burst_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.sim.runner import run_workload
from repro.sim.workload import WorkloadSpec, build_workload


class TestGenerators:
    def test_poisson_monotone_and_deterministic(self):
        first = poisson_arrivals(rate=0.5, count=10, seed=4)
        second = poisson_arrivals(rate=0.5, count=10, seed=4)
        assert first == second
        assert all(b > a for a, b in zip(first, first[1:]))

    def test_poisson_rate_scales_spacing(self):
        slow = poisson_arrivals(rate=0.1, count=200, seed=1)
        fast = poisson_arrivals(rate=1.0, count=200, seed=1)
        assert slow[-1] > fast[-1]

    def test_poisson_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            poisson_arrivals(rate=0.0, count=5)

    def test_uniform(self):
        assert uniform_arrivals(2.0, 3) == [0.0, 2.0, 4.0]
        with pytest.raises(ValueError):
            uniform_arrivals(-1.0, 3)

    def test_burst(self):
        assert burst_arrivals(2, 5.0, 5) == [0.0, 0.0, 5.0, 5.0, 10.0]
        with pytest.raises(ValueError):
            burst_arrivals(0, 5.0, 5)


class TestRunnerIntegration:
    def test_arrivals_override(self):
        workload = build_workload(WorkloadSpec(n_processes=3, seed=1))
        arrivals = [0.0, 100.0, 200.0]
        result = run_workload(
            workload, "process-locking", arrivals=arrivals
        )
        assert result.records[2].submitted_at == 100.0
        assert result.makespan >= 200.0

    def test_wrong_length_rejected(self):
        workload = build_workload(WorkloadSpec(n_processes=3, seed=1))
        with pytest.raises(SchedulerError):
            run_workload(workload, "serial", arrivals=[0.0])


class TestOpenSystemParallel:
    """Open-system arrival streams through the parallel manager.

    The thread-per-shard manager promises byte-identical schedules to
    the sequential one; sustained Poisson arrivals (processes landing
    while earlier ones are still in flight) are exactly the regime the
    service front door submits, so these tests pin termination, metric
    merging, and sequential equivalence under it.
    """

    SPEC = WorkloadSpec(n_processes=12, seed=21, conflict_density=0.4)

    def _run(self, workers: int):
        from repro.scheduler.manager import ManagerConfig

        workload = build_workload(self.SPEC)
        arrivals = poisson_arrivals(
            rate=0.2, count=len(workload.programs), seed=13
        )
        result = run_workload(
            workload,
            "process-locking",
            seed=21,
            config=ManagerConfig(workers=workers, batch_k=2),
            arrivals=arrivals,
        )
        return workload, arrivals, result

    def test_terminates_under_sustained_arrivals(self):
        __, arrivals, result = self._run(workers=2)
        # Every submission reached a terminal state (quiescence is
        # enforced by run()); the stream really was open-system.
        assert result.stats.submitted == len(arrivals)
        assert result.makespan >= arrivals[-1]
        assert len(result.records) == len(arrivals)
        assert result.stats.committed >= 1

    def test_metrics_merge_across_shard_workers(self):
        from repro.sim.metrics import aggregate, merge_stats, summarize

        __, __, result = self._run(workers=3)
        merged = merge_stats([result.stats])
        assert merged.submitted == result.stats.submitted
        assert merged.committed == result.stats.committed
        metrics = summarize("process-locking", result)
        rows = aggregate([metrics, metrics])
        assert rows["committed"] == metrics.committed
        assert rows["throughput"] == pytest.approx(metrics.throughput)

    def test_parallel_schedule_matches_sequential(self):
        __, __, sequential = self._run(workers=0)
        __, __, parallel = self._run(workers=2)
        assert [str(e) for e in parallel.trace.events] == [
            str(e) for e in sequential.trace.events
        ]
        assert parallel.stats.committed == sequential.stats.committed
        assert parallel.makespan == sequential.makespan

    def test_arrival_times_respected_by_parallel_manager(self):
        __, arrivals, result = self._run(workers=2)
        for pid, at in enumerate(arrivals, start=1):
            assert result.records[pid].submitted_at == at
