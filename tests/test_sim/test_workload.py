"""Tests for the synthetic workload generator."""

import math

import pytest

from repro.sim.rng import derive_rng, spread_seeds
from repro.sim.workload import WorkloadSpec, build_workload


class TestDeterminism:
    def test_same_seed_same_workload(self):
        spec = WorkloadSpec(seed=5)
        first = build_workload(spec)
        second = build_workload(spec)
        assert [p.name for p in first.programs] == [
            p.name for p in second.programs
        ]
        assert first.conflicts.pairs() == second.conflicts.pairs()
        assert {t.name: t.cost for t in first.registry} == {
            t.name: t.cost for t in second.registry
        }

    def test_different_seed_differs(self):
        first = build_workload(WorkloadSpec(seed=1))
        second = build_workload(WorkloadSpec(seed=2))
        costs_a = {t.name: t.cost for t in first.registry}
        costs_b = {t.name: t.cost for t in second.registry}
        assert costs_a != costs_b

    def test_derive_rng_streams_independent(self):
        a = derive_rng(1, "x").random()
        b = derive_rng(1, "y").random()
        assert a != b

    def test_spread_seeds_deterministic(self):
        assert spread_seeds(3, 4) == spread_seeds(3, 4)


class TestStructure:
    def test_all_programs_validate(self):
        workload = build_workload(
            WorkloadSpec(parallel_probability=0.5, alternative_count=3,
                         seed=8)
        )
        for program in workload.programs:
            program.validate()

    def test_program_count(self):
        workload = build_workload(WorkloadSpec(n_processes=17, seed=1))
        assert len(workload.programs) == 17

    def test_conflicts_are_perfect(self):
        workload = build_workload(WorkloadSpec(conflict_density=0.7,
                                               seed=2))
        assert workload.conflicts.is_perfect()

    def test_expensive_fraction_marks_types(self):
        workload = build_workload(
            WorkloadSpec(expensive_fraction=1.0, expensive_cost=99.0,
                         seed=3)
        )
        assert workload.expensive_types
        for name in workload.expensive_types:
            assert workload.registry.get(name).cost == 99.0

    def test_threshold_propagates(self):
        workload = build_workload(WorkloadSpec(wcc_threshold=12.5, seed=1))
        assert all(
            p.wcc_threshold == 12.5 for p in workload.programs
        )

    def test_arrival_spacing(self):
        workload = build_workload(
            WorkloadSpec(arrival_spacing=4.0, seed=1)
        )
        assert workload.arrival_time(0) == 0.0
        assert workload.arrival_time(3) == 12.0

    def test_with_changes(self):
        spec = WorkloadSpec(seed=1)
        changed = spec.with_(conflict_density=0.9)
        assert changed.conflict_density == 0.9
        assert changed.seed == spec.seed

    def test_declared_workload_has_no_subsystems(self):
        workload = build_workload(WorkloadSpec(seed=1))
        assert workload.make_subsystems() is None


class TestGrounded:
    def test_grounded_builds_pool(self):
        workload = build_workload(WorkloadSpec(grounded=True, seed=4))
        pool = workload.make_subsystems()
        assert pool is not None
        assert len(pool) == workload.spec.n_subsystems

    def test_every_activity_has_a_program(self):
        workload = build_workload(WorkloadSpec(grounded=True, seed=4))
        for activity_type in workload.registry:
            assert activity_type.name in workload.data_programs

    def test_derived_conflicts_match_rw_sets(self):
        workload = build_workload(WorkloadSpec(grounded=True, seed=4))
        regular = [
            t.name for t in workload.registry.regular_types()
        ]
        for first in regular:
            for second in regular:
                prog_a = workload.data_programs[first]
                prog_b = workload.data_programs[second]
                same_sub = (
                    workload.registry.get(first).subsystem
                    == workload.registry.get(second).subsystem
                )
                expected = same_sub and prog_a.conflicts_with(prog_b)
                assert workload.conflicts.conflict(first, second) == (
                    expected
                ) or workload.conflicts.conflict(first, second)
                # (closure can only add conflicts, never remove)
                if expected:
                    assert workload.conflicts.conflict(first, second)

    def test_fresh_pool_per_call(self):
        workload = build_workload(WorkloadSpec(grounded=True, seed=4))
        first = workload.make_subsystems()
        second = workload.make_subsystems()
        assert first is not second


class TestValidation:
    def test_tiny_spec_still_valid(self):
        spec = WorkloadSpec(
            n_processes=1, n_activity_types=4, min_length=1,
            max_length=1, seed=0,
        )
        workload = build_workload(spec)
        workload.programs[0].validate()

    def test_inf_threshold_default(self):
        assert math.isinf(WorkloadSpec().wcc_threshold)
