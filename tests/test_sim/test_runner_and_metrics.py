"""Tests for the experiment runner and metric extraction."""

import pytest

from repro.errors import SchedulerError
from repro.sim.metrics import aggregate, mean, summarize
from repro.sim.runner import (
    PROTOCOL_FACTORIES,
    compare_protocols,
    make_protocol,
    run_and_summarize,
    run_workload,
    schedule_of,
)
from repro.sim.workload import WorkloadSpec, build_workload


@pytest.fixture(scope="module")
def workload():
    return build_workload(
        WorkloadSpec(n_processes=5, conflict_density=0.3,
                     failure_probability=0.05, seed=21)
    )


class TestRunner:
    def test_every_registered_protocol_runs(self, workload):
        for name in PROTOCOL_FACTORIES:
            result = run_workload(workload, name, seed=2)
            assert result.stats.submitted == 5

    def test_unknown_protocol_rejected(self, workload):
        with pytest.raises(SchedulerError):
            make_protocol("nope", workload)

    def test_runs_are_deterministic(self, workload):
        first = run_workload(workload, "process-locking", seed=3)
        second = run_workload(workload, "process-locking", seed=3)
        assert first.makespan == second.makespan
        assert [str(e) for e in first.trace.events] == [
            str(e) for e in second.trace.events
        ]

    def test_seed_changes_outcome_sometimes(self, workload):
        results = {
            run_workload(workload, "process-locking", seed=s).makespan
            for s in range(6)
        }
        assert len(results) > 1

    def test_schedule_of(self, workload):
        result = run_workload(workload, "process-locking", seed=2)
        schedule = schedule_of(workload, result)
        assert schedule.is_complete

    def test_compare_protocols_fresh_state(self, workload):
        rows = compare_protocols(
            workload, ["serial", "process-locking"], seed=2
        )
        assert set(rows) == {"serial", "process-locking"}
        assert rows["serial"].committed <= 5


class TestMetrics:
    def test_summarize_fields(self, workload):
        result, metrics = run_and_summarize(
            workload, "process-locking", seed=2
        )
        assert metrics.protocol == "process-locking"
        assert metrics.committed == result.stats.committed
        assert metrics.throughput == pytest.approx(result.throughput)
        row = metrics.as_row()
        assert row["protocol"] == "process-locking"
        assert "throughput" in row

    def test_mean(self):
        assert mean([]) == 0.0
        assert mean([1.0, 3.0]) == 2.0

    def test_aggregate(self, workload):
        metrics = [
            run_and_summarize(workload, "serial", seed=s)[1]
            for s in range(3)
        ]
        agg = aggregate(metrics)
        assert agg["committed"] == pytest.approx(
            mean([m.committed for m in metrics])
        )

    def test_aggregate_empty(self):
        assert aggregate([]) == {}

    def test_osl_unresolvable_surfaces_in_summary(self):
        hot = build_workload(
            WorkloadSpec(n_processes=8, conflict_density=0.8,
                         failure_probability=0.15, seed=5)
        )
        __, metrics = run_and_summarize(hot, "osl-pure", seed=5)
        assert metrics.unresolvable_violations >= 0  # counted, not lost
