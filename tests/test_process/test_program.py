"""Unit tests for process program trees and the fluent builder."""

import math

import pytest

from repro.errors import ProcessProgramError
from repro.process.builder import ProgramBuilder
from repro.process.program import ProgramNode


class TestBuilder:
    def test_linear_sequence(self, registry):
        program = (
            ProgramBuilder("p", registry)
            .sequence("reserve", "wrap")
            .build()
        )
        assert program.root.activities == ("reserve",)
        assert program.root.children[0].activities == ("wrap",)
        assert program.node_count() == 2

    def test_parallel_node(self, registry):
        program = (
            ProgramBuilder("p", registry)
            .parallel("reserve", "wrap")
            .build()
        )
        assert program.root.is_parallel
        assert program.root.activities == ("reserve", "wrap")

    def test_parallel_needs_two(self, registry):
        with pytest.raises(ProcessProgramError):
            ProgramBuilder("p", registry).parallel("reserve")

    def test_pivot_requires_point_of_no_return(self, registry):
        with pytest.raises(ProcessProgramError):
            ProgramBuilder("p", registry).pivot("reserve")

    def test_alternatives_close_the_chain(self, registry):
        builder = (
            ProgramBuilder("p", registry)
            .step("reserve")
            .pivot("charge")
            .alternatives(lambda b: b.step("ship"))
        )
        with pytest.raises(ProcessProgramError):
            builder.step("wrap")

    def test_alternatives_only_once(self, registry):
        builder = (
            ProgramBuilder("p", registry)
            .pivot("charge")
            .alternatives(lambda b: b.step("ship"))
        )
        with pytest.raises(ProcessProgramError):
            builder.alternatives(lambda b: b.step("ship"))

    def test_alternatives_without_steps_rejected(self, registry):
        with pytest.raises(ProcessProgramError):
            ProgramBuilder("p", registry).alternatives(
                lambda b: b.step("ship")
            )

    def test_empty_program_rejected(self, registry):
        with pytest.raises(ProcessProgramError):
            ProgramBuilder("p", registry).build()

    def test_unknown_activity_rejected_early(self, registry):
        with pytest.raises(Exception):
            ProgramBuilder("p", registry).step("ghost")

    def test_node_ids_unique_across_branches(self, registry):
        program = (
            ProgramBuilder("p", registry)
            .step("reserve")
            .pivot("charge")
            .alternatives(
                lambda b: b.sequence("wrap"),
                lambda b: b.sequence("ship", "ship"),
            )
            .build()
        )
        ids = [node.node_id for node in program.iter_nodes()]
        assert len(ids) == len(set(ids))


class TestProgramQueries:
    def test_activity_names(self, order_program):
        assert order_program.activity_names() == {
            "reserve", "wrap", "charge", "ship",
        }

    def test_has_pivot(self, order_program, flat_program):
        assert order_program.has_pivot()
        assert not flat_program.has_pivot()

    def test_preferred_path_cost(self, order_program):
        # reserve 2.0 + wrap 1.0 + charge 1.0 + ship 1.5
        assert order_program.preferred_path_cost() == pytest.approx(5.5)

    def test_is_point_of_no_return(self, registry, order_program):
        nodes = list(order_program.iter_nodes())
        pivots = [
            node
            for node in nodes
            if order_program.is_point_of_no_return(node)
        ]
        names = {node.activities[0] for node in pivots}
        # charge is a pivot; ship is retriable non-compensatable.
        assert names == {"charge", "ship"}

    def test_describe_mentions_alternatives(self, registry):
        program = (
            ProgramBuilder("p", registry)
            .pivot("charge")
            .alternatives(
                lambda b: b.step("wrap"),
                lambda b: b.step("ship"),
            )
            .build()
        )
        text = program.describe()
        assert "alt0" in text and "alt1" in text

    def test_negative_threshold_rejected(self, registry):
        with pytest.raises(ProcessProgramError):
            ProgramBuilder("p", registry, wcc_threshold=-1.0).step(
                "reserve"
            ).build()

    def test_default_threshold_is_infinite(self, flat_program):
        assert flat_program.wcc_threshold == math.inf


class TestProgramNode:
    def test_empty_node_rejected(self):
        with pytest.raises(ProcessProgramError):
            ProgramNode(activities=())

    def test_iter_subtree_preorder(self, order_program):
        names = [
            node.activities[0] for node in order_program.iter_nodes()
        ]
        assert names == ["reserve", "wrap", "charge", "ship"]
