"""Unit tests for process execution instances (model-level walk)."""

import pytest

from repro.errors import (
    ProcessProgramError,
    ProcessStateError,
    SchedulerError,
)
from repro.process.builder import ProgramBuilder
from repro.process.instance import Process, Resolution
from repro.process.state import ProcessState


def make(program, pid=1, ts=1) -> Process:
    return Process(pid=pid, program=program, timestamp=ts)


def commit_next(process: Process, expected_name: str):
    """Launch and commit the single ready activity; return it."""
    ready = process.ready_activities()
    assert ready == [expected_name]
    activity = process.launch(expected_name)
    became_completing = process.on_committed(activity)
    return activity, became_completing


class TestHappyPath:
    def test_linear_walk_to_commit(self, flat_program):
        process = make(flat_program)
        commit_next(process, "reserve")
        commit_next(process, "wrap")
        assert process.finished
        process.finish_commit()
        assert process.state is ProcessState.COMMITTED

    def test_pivot_commit_moves_to_completing(self, order_program):
        process = make(order_program)
        commit_next(process, "reserve")
        commit_next(process, "wrap")
        __, became_completing = commit_next(process, "charge")
        assert became_completing
        assert process.state is ProcessState.COMPLETING
        assert process.committed_points_of_no_return == 1

    def test_full_order_program(self, order_program):
        process = make(order_program)
        for name in ("reserve", "wrap", "charge", "ship"):
            commit_next(process, name)
        assert process.finished
        process.finish_commit()

    def test_commit_before_finish_rejected(self, order_program):
        process = make(order_program)
        commit_next(process, "reserve")
        with pytest.raises(ProcessStateError):
            process.finish_commit()

    def test_parallel_node_launches_both(self, registry):
        program = (
            ProgramBuilder("par", registry)
            .parallel("reserve", "wrap")
            .build()
        )
        process = make(program)
        assert sorted(process.ready_activities()) == ["reserve", "wrap"]
        a = process.launch("reserve")
        b = process.launch("wrap")
        assert process.outstanding == 2
        process.on_committed(a)
        assert not process.finished
        process.on_committed(b)
        assert process.finished


class TestFailureHandling:
    def test_retriable_failure_retries(self, order_program, registry):
        process = make(order_program)
        for name in ("reserve", "wrap", "charge"):
            commit_next(process, name)
        activity = process.launch("ship")
        plan = process.on_failed(activity)
        assert plan.resolution is Resolution.RETRY

    def test_pre_pivot_failure_aborts_process(self, order_program):
        process = make(order_program)
        commit_next(process, "reserve")
        activity = process.launch("wrap")
        plan = process.on_failed(activity)
        assert plan.resolution is Resolution.ABORT_PROCESS
        assert process.state is ProcessState.ABORTING
        assert [e.activity.name for e in plan.compensations] == ["reserve"]

    def test_compensations_in_reverse_order(self, registry):
        program = (
            ProgramBuilder("p", registry)
            .sequence("reserve", "wrap", "reserve")
            .build()
        )
        process = make(program)
        commit_next(process, "reserve")
        commit_next(process, "wrap")
        activity = process.launch("reserve")
        plan = process.on_failed(activity)
        names = [e.activity.name for e in plan.compensations]
        assert names == ["wrap", "reserve"]

    def test_compensation_round_trip(self, order_program, registry):
        process = make(order_program)
        commit_next(process, "reserve")
        failed = process.launch("wrap")
        plan = process.on_failed(failed)
        entry = plan.compensations[0]
        comp = process.make_compensation(entry)
        assert comp.compensates == entry.activity.uid
        assert comp.activity_type.name == "reserve^-1"
        process.on_compensated(entry, comp)
        assert entry.compensated
        process.finish_abort()
        assert process.state is ProcessState.ABORTED

    def test_mismatched_compensation_rejected(self, order_program):
        process = make(order_program)
        commit_next(process, "reserve")
        failed = process.launch("wrap")
        plan = process.on_failed(failed)
        entry = plan.compensations[0]
        other = process.make_compensation(entry)
        bogus_entry = plan.compensations[0]
        object.__setattr__(other, "compensates", 999_999)
        with pytest.raises(SchedulerError):
            process.on_compensated(bogus_entry, other)

    def test_post_pivot_failure_tries_next_alternative(self, registry):
        program = (
            ProgramBuilder("alt", registry)
            .pivot("charge")
            .alternatives(
                lambda b: b.sequence("reserve", "wrap"),
                lambda b: b.step("ship"),
            )
            .build()
        )
        process = make(program)
        commit_next(process, "charge")
        assert process.state is ProcessState.COMPLETING
        commit_next(process, "reserve")
        failed = process.launch("wrap")
        plan = process.on_failed(failed)
        assert plan.resolution is Resolution.ABORT_SUBPROCESS
        assert [e.activity.name for e in plan.compensations] == ["reserve"]
        # The process is still completing — only the subprocess aborts.
        assert process.state is ProcessState.COMPLETING
        entry = plan.compensations[0]
        process.on_compensated(entry, process.make_compensation(entry))
        process.start_next_branch()
        commit_next(process, "ship")
        assert process.finished

    def test_assured_branch_failure_is_a_program_bug(self, registry):
        program = (
            ProgramBuilder("alt", registry)
            .pivot("charge")
            .alternatives(lambda b: b.step("ship"))
            .build()
        )
        process = make(program)
        commit_next(process, "charge")
        activity = process.launch("ship")
        # Force a non-retriable failure on the assured branch: model it
        # by lying about retriability via a compensatable activity.
        plan = process.on_failed(activity)
        assert plan.resolution is Resolution.RETRY  # ship is retriable

    def test_failure_with_siblings_in_flight_rejected(self, registry):
        program = (
            ProgramBuilder("par", registry)
            .parallel("reserve", "wrap")
            .build()
        )
        process = make(program)
        failed = process.launch("reserve")
        process.launch("wrap")
        with pytest.raises(SchedulerError):
            process.on_failed(failed)


class TestProtocolAbort:
    def test_plan_covers_whole_ledger(self, flat_program):
        process = make(flat_program)
        commit_next(process, "reserve")
        commit_next(process, "wrap")
        plan = process.plan_protocol_abort()
        names = [e.activity.name for e in plan.compensations]
        assert names == ["wrap", "reserve"]
        assert process.state is ProcessState.ABORTING

    def test_only_running_processes(self, order_program):
        process = make(order_program)
        for name in ("reserve", "wrap", "charge"):
            commit_next(process, name)
        assert process.state is ProcessState.COMPLETING
        with pytest.raises(ProcessStateError):
            process.plan_protocol_abort()

    def test_with_outstanding_work_rejected(self, flat_program):
        process = make(flat_program)
        process.launch("reserve")
        with pytest.raises(SchedulerError):
            process.plan_protocol_abort()

    def test_abandon_clears_outstanding(self, flat_program):
        process = make(flat_program)
        activity = process.launch("reserve")
        process.abandon(activity)
        assert process.outstanding == 0
        process.plan_protocol_abort()

    def test_abandon_without_outstanding_rejected(self, flat_program):
        process = make(flat_program)
        activity_type = process.registry.get("reserve")
        from repro.activities.activity import Activity

        ghost = Activity(activity_type, process_id=1, seq=0)
        with pytest.raises(SchedulerError):
            process.abandon(ghost)


class TestResubmission:
    def test_resubmit_keeps_pid_and_timestamp(self, flat_program):
        process = make(flat_program, pid=7, ts=42)
        commit_next(process, "reserve")
        plan = process.plan_protocol_abort()
        for entry in plan.compensations:
            process.on_compensated(
                entry, process.make_compensation(entry)
            )
        process.finish_abort()
        successor = process.resubmit()
        assert successor.pid == 7
        assert successor.timestamp == 42
        assert successor.incarnation == 1
        assert successor.key == (7, 1)
        assert successor.state is ProcessState.RUNNING
        assert successor.wcc == 0.0
        assert successor.ready_activities() == ["reserve"]

    def test_resubmit_requires_aborted_state(self, flat_program):
        process = make(flat_program)
        with pytest.raises(ProcessStateError):
            process.resubmit()


class TestMisc:
    def test_launch_unready_activity_rejected(self, flat_program):
        process = make(flat_program)
        with pytest.raises(SchedulerError):
            process.launch("wrap")

    def test_wcc_accumulates(self, flat_program):
        process = make(flat_program)
        process.charge_wcc(3.0)
        process.charge_wcc(2.5)
        assert process.wcc == pytest.approx(5.5)

    def test_seq_numbers_monotone(self, flat_program):
        process = make(flat_program)
        first = process.launch("reserve")
        process.on_committed(first)
        second = process.launch("wrap")
        assert second.seq > first.seq
