"""Unit tests for the process state machine."""

import pytest

from repro.errors import ProcessStateError
from repro.process.state import ProcessState, check_transition


class TestStateProperties:
    def test_active_states(self):
        assert ProcessState.RUNNING.is_active
        assert ProcessState.COMPLETING.is_active
        assert not ProcessState.ABORTING.is_active
        assert not ProcessState.ABORTED.is_active
        assert not ProcessState.COMMITTED.is_active

    def test_live_states(self):
        assert ProcessState.RUNNING.is_live
        assert ProcessState.COMPLETING.is_live
        assert ProcessState.ABORTING.is_live
        assert not ProcessState.ABORTED.is_live
        assert not ProcessState.COMMITTED.is_live

    def test_terminal_states(self):
        assert ProcessState.ABORTED.is_terminal
        assert ProcessState.COMMITTED.is_terminal
        assert not ProcessState.RUNNING.is_terminal


class TestTransitions:
    @pytest.mark.parametrize(
        "current,target",
        [
            (ProcessState.RUNNING, ProcessState.COMPLETING),
            (ProcessState.RUNNING, ProcessState.ABORTING),
            (ProcessState.RUNNING, ProcessState.COMMITTED),
            (ProcessState.COMPLETING, ProcessState.COMMITTED),
            (ProcessState.ABORTING, ProcessState.ABORTED),
        ],
    )
    def test_legal(self, current, target):
        check_transition(current, target)

    @pytest.mark.parametrize(
        "current,target",
        [
            # Past the point of no return there is no way back:
            (ProcessState.COMPLETING, ProcessState.ABORTING),
            (ProcessState.COMPLETING, ProcessState.RUNNING),
            (ProcessState.ABORTING, ProcessState.COMMITTED),
            (ProcessState.ABORTING, ProcessState.RUNNING),
            (ProcessState.ABORTED, ProcessState.RUNNING),
            (ProcessState.COMMITTED, ProcessState.ABORTING),
            (ProcessState.RUNNING, ProcessState.ABORTED),
        ],
    )
    def test_illegal(self, current, target):
        with pytest.raises(ProcessStateError):
            check_transition(current, target)
