"""Tests for static program cost analysis."""

import math

import pytest

from repro.process.builder import ProgramBuilder
from repro.process.costing import (
    describe_costing,
    enumerate_paths,
    expected_cost,
    pseudo_pivot_index,
    suggest_threshold,
    wcc_profile,
    worst_case_path_cost,
)


class TestPaths:
    def test_linear_program_single_path(self, flat_program):
        paths = enumerate_paths(flat_program)
        assert paths == [["reserve", "wrap"]]

    def test_alternatives_multiply_paths(self, registry):
        program = (
            ProgramBuilder("p", registry)
            .step("reserve")
            .pivot("charge")
            .alternatives(
                lambda b: b.step("wrap"),
                lambda b: b.step("ship"),
            )
            .build()
        )
        paths = enumerate_paths(program)
        assert paths == [
            ["reserve", "charge", "wrap"],
            ["reserve", "charge", "ship"],
        ]

    def test_preferred_path_first(self, order_program):
        assert enumerate_paths(order_program)[0] == [
            "reserve", "wrap", "charge", "ship",
        ]

    def test_parallel_node_inlined(self, registry):
        program = (
            ProgramBuilder("p", registry)
            .parallel("reserve", "wrap")
            .build()
        )
        assert enumerate_paths(program) == [["reserve", "wrap"]]


class TestCosts:
    def test_worst_case_path(self, registry):
        program = (
            ProgramBuilder("p", registry)
            .pivot("charge")
            .alternatives(
                lambda b: b.step("reserve"),   # cost 2.0
                lambda b: b.step("ship"),      # cost 1.5
            )
            .build()
        )
        # charge 1.0 + max(2.0, 1.5)
        assert worst_case_path_cost(program) == pytest.approx(3.0)

    def test_expected_cost_folds_failures(self, registry):
        program = ProgramBuilder("p", registry).step("reserve").build()
        # reserve: cost 2.0, p = 0.1 -> expected attempts 1/0.9
        assert expected_cost(program) == pytest.approx(2.0 / 0.9)

    def test_expected_at_least_plain(self, order_program):
        plain = order_program.preferred_path_cost()
        assert expected_cost(order_program) >= plain


class TestWccProfile:
    def test_profile_is_cumulative(self, flat_program):
        steps = wcc_profile(flat_program)
        assert steps[0].wcc_before == 0.0
        assert steps[1].wcc_before == steps[0].wcc_after
        # reserve: 2 + 1 comp; wrap: 1 + 0.5 comp
        assert steps[-1].wcc_after == pytest.approx(4.5)

    def test_pivot_step_is_infinite(self, order_program):
        steps = wcc_profile(order_program)
        pivot_step = next(
            s for s in steps if s.activity == "charge"
        )
        assert math.isinf(pivot_step.wcc_after)

    def test_profile_matches_protocol_charging(
        self, order_program, protocol
    ):
        from tests.conftest import make_process

        process = make_process(protocol, order_program, pid=1)
        for step in wcc_profile(order_program)[:2]:
            activity = process.launch(step.activity)
            protocol.classify_regular(process, activity)
            assert process.wcc == pytest.approx(step.wcc_after)
            process.on_committed(activity)


class TestThresholds:
    def test_pseudo_pivot_index(self, flat_program):
        # Profile: 3.0 then 4.5.
        assert pseudo_pivot_index(flat_program, threshold=2.0) == 0
        assert pseudo_pivot_index(flat_program, threshold=4.0) == 1
        assert pseudo_pivot_index(flat_program, threshold=100.0) is None

    def test_pivot_always_trips(self, order_program):
        index = pseudo_pivot_index(order_program, threshold=1e12)
        steps = wcc_profile(order_program)
        assert steps[index].activity == "charge"

    def test_suggest_threshold_protects_costly_step(self, registry):
        from repro.activities.registry import ActivityRegistry
        from repro.process.builder import ProgramBuilder

        reg = ActivityRegistry()
        reg.define_compensatable("cheap", "s", cost=1.0,
                                 compensation_cost=0.5)
        reg.define_compensatable("dear", "s", cost=30.0,
                                 compensation_cost=5.0)
        program = (
            ProgramBuilder("p", reg)
            .sequence("cheap", "dear", "cheap")
            .build()
        )
        threshold = suggest_threshold(program, protect_cost=30.0)
        # Wcc after cheap = 1.5; after dear = 36.5.
        assert threshold == pytest.approx(36.5)
        # And the suggested threshold indeed trips on 'dear':
        index = pseudo_pivot_index(program, threshold)
        assert enumerate_paths(program)[0][index] == "dear"

    def test_suggest_threshold_without_costly_steps(self, flat_program):
        assert suggest_threshold(flat_program, protect_cost=999.0) == (
            math.inf
        )


class TestDescribe:
    def test_report_renders(self, order_program):
        text = describe_costing(order_program)
        assert "cost analysis" in text
        assert "reserve" in text
        assert "Wcc" in text
