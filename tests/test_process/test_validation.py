"""Unit tests for guaranteed-termination validation."""

import pytest

from repro.errors import ProcessProgramError
from repro.process.builder import ProgramBuilder
from repro.process.program import ProcessProgram, ProgramNode
from repro.process.validation import (
    is_assured_subtree,
    validate_guaranteed_termination,
)


def program_from_root(root, registry, name="manual") -> ProcessProgram:
    return ProcessProgram(name=name, root=root, registry=registry)


class TestAssuredSubtrees:
    def test_retriable_chain_is_assured(self, registry):
        chain = ProgramNode(
            ("ship",), (ProgramNode(("ship",), (), 2),), 1
        )
        assert is_assured_subtree(chain, registry)

    def test_compensatable_breaks_assurance(self, registry):
        node = ProgramNode(("reserve",), (), 1)
        assert not is_assured_subtree(node, registry)

    def test_branching_breaks_assurance(self, registry):
        node = ProgramNode(
            ("ship",),
            (ProgramNode(("ship",), (), 2), ProgramNode(("ship",), (), 3)),
            1,
        )
        assert not is_assured_subtree(node, registry)

    def test_retriable_compensatable_counts_as_retriable(self, registry):
        node = ProgramNode(("audit",), (), 1)
        assert is_assured_subtree(node, registry)


class TestGuaranteedTermination:
    def test_valid_program_passes(self, order_program):
        validate_guaranteed_termination(order_program)

    def test_pivot_last_alternative_must_be_assured(self, registry):
        root = ProgramNode(
            ("charge",),
            (
                ProgramNode(("ship",), (), 2),
                ProgramNode(("reserve",), (), 3),  # fallible last branch
            ),
            1,
        )
        with pytest.raises(ProcessProgramError):
            validate_guaranteed_termination(
                program_from_root(root, registry)
            )

    def test_pivot_single_fallible_child_rejected(self, registry):
        root = ProgramNode(
            ("charge",), (ProgramNode(("reserve",), (), 2),), 1
        )
        with pytest.raises(ProcessProgramError):
            validate_guaranteed_termination(
                program_from_root(root, registry)
            )

    def test_pivot_single_assured_child_accepted(self, registry):
        root = ProgramNode(
            ("charge",), (ProgramNode(("ship",), (), 2),), 1
        )
        validate_guaranteed_termination(
            program_from_root(root, registry)
        )

    def test_pivot_without_children_accepted(self, registry):
        root = ProgramNode(("charge",), (), 1)
        validate_guaranteed_termination(
            program_from_root(root, registry)
        )

    def test_alternatives_off_non_pivot_rejected(self, registry):
        root = ProgramNode(
            ("reserve",),
            (ProgramNode(("wrap",), (), 2), ProgramNode(("ship",), (), 3)),
            1,
        )
        with pytest.raises(ProcessProgramError):
            validate_guaranteed_termination(
                program_from_root(root, registry)
            )

    def test_pivot_inside_parallel_node_rejected(self, registry):
        root = ProgramNode(("reserve", "charge"), (), 1)
        with pytest.raises(ProcessProgramError):
            validate_guaranteed_termination(
                program_from_root(root, registry)
            )

    def test_compensating_activity_in_program_rejected(self, registry):
        root = ProgramNode(("reserve^-1",), (), 1)
        with pytest.raises(ProcessProgramError):
            validate_guaranteed_termination(
                program_from_root(root, registry)
            )

    def test_duplicate_node_ids_rejected(self, registry):
        root = ProgramNode(
            ("reserve",), (ProgramNode(("wrap",), (), 1),), 1
        )
        with pytest.raises(ProcessProgramError):
            validate_guaranteed_termination(
                program_from_root(root, registry)
            )

    def test_nested_pivot_in_alternative_accepted(self, registry):
        """Alternatives may recursively be full process programs."""
        program = (
            ProgramBuilder("nested", registry)
            .step("reserve")
            .pivot("charge")
            .alternatives(
                lambda b: b.step("wrap")
                .pivot("ship")  # retriable non-comp is a PNR
                .alternatives(lambda bb: bb.step("audit")),
                lambda b: b.step("ship"),
            )
            .build()
        )
        validate_guaranteed_termination(program)

    def test_builder_validates_on_build(self, registry):
        builder = (
            ProgramBuilder("bad", registry)
            .pivot("charge")
            .alternatives(lambda b: b.step("reserve"))
        )
        with pytest.raises(ProcessProgramError):
            builder.build()
        # And bypassing validation is possible for testing purposes:
        broken = builder.build(validate=False)
        assert broken.has_pivot()
