"""Regeneration of the paper's exhibits (Tables 1–2, Figure 1).

* **Table 1** is rendered from the activity model's constraint checks:
  the registry enforces exactly the cost/failure-probability ranges the
  table states, and :func:`table1_text` prints them.
* **Table 2** is *derived empirically*: :func:`derive_lock_compatibility`
  drives two-process micro-scenarios through a live
  :class:`~repro.core.protocol.ProcessLockManager` and observes which
  held/acquired combinations are ordered-shared (granted) versus
  exclusive (deferred/aborted).  The derived matrix must equal the
  paper's.
* **Figure 1** is reproduced by tracing the dynamic-pivot-determination
  algorithm over a scripted process (:func:`figure1_text`).
"""

from __future__ import annotations

from repro.activities.commutativity import ConflictMatrix
from repro.activities.registry import ActivityRegistry
from repro.analysis.tables import render_table
from repro.core.cost_based import Figure1Step, figure1_trace
from repro.core.decisions import Grant
from repro.core.locks import LockMode
from repro.core.protocol import ProcessLockManager
from repro.process.builder import ProgramBuilder
from repro.process.instance import Process

#: The paper's Table 2: (held, acquired) -> ordered shared?
PAPER_TABLE2: dict[tuple[LockMode, LockMode], bool] = {
    (LockMode.C, LockMode.C): True,
    (LockMode.C, LockMode.P): False,
    (LockMode.P, LockMode.C): True,
    (LockMode.P, LockMode.P): False,
}


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
def table1_text() -> str:
    """Render Table 1 (activity classes and their constraints)."""
    rows = [
        ("compensatable a^c", "0 < c(a) < inf", "0 <= p(a) < 1",
         "0 <= c(a^-1) < inf"),
        ("pivot a^p", "0 < c(a) < inf", "0 <= p(a) < 1",
         "c(a^-1) = inf"),
        ("retriable a^r", "0 < c(a) < inf", "p(a) = 0",
         "0 <= c(a^-1) <= inf"),
        ("compensating a^-1", "0 <= c(a) < inf", "p(a) = 0",
         "c((a^-1)^-1) = inf"),
    ]
    return render_table(
        ["activity class", "execution cost", "failure probability",
         "compensation cost"],
        rows,
        title="Table 1: execution costs and failure probabilities",
    )


# ----------------------------------------------------------------------
# Table 2 (empirical derivation)
# ----------------------------------------------------------------------
def _micro_environment() -> tuple[ActivityRegistry, ConflictMatrix]:
    registry = ActivityRegistry()
    registry.define_compensatable("c_a", "sub", cost=1.0,
                                  compensation_cost=0.5)
    registry.define_compensatable("c_b", "sub", cost=1.0,
                                  compensation_cost=0.5)
    registry.define_pivot("p_a", "sub", cost=1.0)
    registry.define_pivot("p_b", "sub", cost=1.0)
    conflicts = ConflictMatrix(registry)
    for first in ("c_a", "p_a"):
        for second in ("c_b", "p_b"):
            conflicts.declare_conflict(first, second)
    conflicts.declare_conflict("c_a", "c_b")
    conflicts.close_perfect()
    return registry, conflicts


def _mini_process(
    registry: ActivityRegistry, protocol: ProcessLockManager, tag: str
) -> Process:
    program = (
        ProgramBuilder(f"micro-{tag}", registry)
        .step("c_a" if tag == "holder" else "c_b")
        .build()
    )
    process = Process(
        pid=1 if tag == "holder" else 2,
        program=program,
        timestamp=protocol.new_timestamp(),
    )
    protocol.attach(process)
    return process


def derive_lock_compatibility() -> dict[tuple[LockMode, LockMode], bool]:
    """Observe the protocol's held/acquired compatibility empirically.

    For each combination, an *older* holder takes a lock of the held
    mode, then a *younger* requester asks for a conflicting lock of the
    acquired mode; the combination is ordered-shared iff the request is
    granted immediately.
    """
    observed: dict[tuple[LockMode, LockMode], bool] = {}
    for held in (LockMode.C, LockMode.P):
        for acquired in (LockMode.C, LockMode.P):
            registry, conflicts = _micro_environment()
            protocol = ProcessLockManager(registry, conflicts)
            holder = _mini_process(registry, protocol, "holder")
            requester = _mini_process(registry, protocol, "requester")
            held_name = "c_a" if held is LockMode.C else "p_a"
            acq_name = "c_b" if acquired is LockMode.C else "p_b"
            held_activity = holder.launch("c_a")
            # Acquire the held lock directly in the requested mode.
            decision = protocol.request_activity_lock(
                holder,
                _relabel(held_activity, registry, held_name),
                held,
            )
            assert isinstance(decision, Grant)
            acq_activity = requester.launch("c_b")
            outcome = protocol.request_activity_lock(
                requester,
                _relabel(acq_activity, registry, acq_name),
                acquired,
            )
            observed[(held, acquired)] = isinstance(outcome, Grant)
    return observed


def _relabel(activity, registry: ActivityRegistry, name: str):
    """Re-point a launched activity at a different activity type."""
    from repro.activities.activity import Activity

    return Activity(
        activity_type=registry.get(name),
        process_id=activity.process_id,
        seq=activity.seq,
        uid=activity.uid,
    )


def table2_text(
    observed: dict[tuple[LockMode, LockMode], bool] | None = None,
) -> str:
    """Render the (derived) lock compatibility matrix like Table 2."""
    matrix = observed if observed is not None else (
        derive_lock_compatibility()
    )

    def cell(held: LockMode, acquired: LockMode) -> str:
        return "ordered-shared" if matrix[(held, acquired)] else (
            "exclusive"
        )

    rows = [
        ("C lock held", cell(LockMode.C, LockMode.C),
         cell(LockMode.C, LockMode.P)),
        ("P lock held", cell(LockMode.P, LockMode.C),
         cell(LockMode.P, LockMode.P)),
    ]
    return render_table(
        ["held \\ acquired", "C lock", "P lock"],
        rows,
        title="Table 2: compatibility matrix of C and P locks (derived)",
    )


# ----------------------------------------------------------------------
# Figure 1
# ----------------------------------------------------------------------
def build_figure1_demo() -> tuple[ActivityRegistry, list[str], float]:
    """The scripted process used to trace Figure 1.

    Five steps with costs chosen so the threshold (40) is crossed at the
    third activity — the pseudo pivot — while the fifth is a real pivot.
    """
    registry = ActivityRegistry()
    registry.define_compensatable("collect_order", "shop", cost=3.0,
                                  compensation_cost=1.0)
    registry.define_compensatable("reserve_stock", "shop", cost=8.0,
                                  compensation_cost=4.0)
    registry.define_compensatable("prepare_shipment", "shop", cost=20.0,
                                  compensation_cost=10.0)
    registry.define_compensatable("print_documents", "shop", cost=2.0,
                                  compensation_cost=1.0)
    registry.define_pivot("charge_customer", "bank", cost=1.0)
    names = [
        "collect_order",
        "reserve_stock",
        "prepare_shipment",
        "print_documents",
        "charge_customer",
    ]
    return registry, names, 40.0


def figure1_text(steps: list[Figure1Step] | None = None) -> str:
    """Render the Figure-1 dynamic-pivot-determination trace."""
    if steps is None:
        registry, names, threshold = build_figure1_demo()
        steps = figure1_trace(registry, names, threshold)
    lines = [
        "Figure 1: dynamic pivot determination "
        "(cost-based process scheduling)"
    ]
    lines.extend(step.describe() for step in steps)
    return "\n".join(lines)


def all_exhibits_text() -> str:
    """Every paper exhibit, regenerated, in one report."""
    parts = [table1_text(), "", table2_text(), "", figure1_text()]
    return "\n".join(parts)
