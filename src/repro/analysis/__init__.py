"""Analysis: text tables, statistics, and paper-exhibit regeneration."""

from repro.analysis.exhibits import (
    PAPER_TABLE2,
    all_exhibits_text,
    build_figure1_demo,
    derive_lock_compatibility,
    figure1_text,
    table1_text,
    table2_text,
)
from repro.analysis.export import rows_to_json, save_rows
from repro.analysis.stats import (
    Summary,
    monotone_decreasing,
    monotone_increasing,
    speedup,
    summarize_sample,
)
from repro.analysis.tables import render_dict_table, render_table
from repro.analysis.timeline import render_timeline

__all__ = [
    "PAPER_TABLE2",
    "Summary",
    "all_exhibits_text",
    "build_figure1_demo",
    "derive_lock_compatibility",
    "figure1_text",
    "monotone_decreasing",
    "monotone_increasing",
    "render_dict_table",
    "render_table",
    "render_timeline",
    "rows_to_json",
    "save_rows",
    "speedup",
    "summarize_sample",
    "table1_text",
    "table2_text",
]
