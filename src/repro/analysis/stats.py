"""Statistics helpers for repeated-run experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Summary:
    """Mean and spread of a sample."""

    n: int
    mean: float
    std: float
    ci95_half_width: float

    @property
    def ci95(self) -> tuple[float, float]:
        return (
            self.mean - self.ci95_half_width,
            self.mean + self.ci95_half_width,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.3f} ± {self.ci95_half_width:.3f} (n={self.n})"


def summarize_sample(values: list[float]) -> Summary:
    """Mean, standard deviation, and a normal-approximation 95% CI."""
    n = len(values)
    if n == 0:
        return Summary(n=0, mean=0.0, std=0.0, ci95_half_width=0.0)
    mean = sum(values) / n
    if n == 1:
        return Summary(n=1, mean=mean, std=0.0, ci95_half_width=0.0)
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    std = math.sqrt(var)
    half = 1.96 * std / math.sqrt(n)
    return Summary(n=n, mean=mean, std=std, ci95_half_width=half)


def speedup(baseline: float, improved: float) -> float:
    """``baseline / improved`` (how many times faster), inf-safe."""
    if improved <= 0:
        return math.inf if baseline > 0 else 1.0
    return baseline / improved


def monotone_decreasing(values: list[float], slack: float = 0.0) -> bool:
    """Whether the series decreases (within ``slack`` tolerance)."""
    return all(
        later <= earlier + slack
        for earlier, later in zip(values, values[1:])
    )


def monotone_increasing(values: list[float], slack: float = 0.0) -> bool:
    """Whether the series increases (within ``slack`` tolerance)."""
    return all(
        later >= earlier - slack
        for earlier, later in zip(values, values[1:])
    )
