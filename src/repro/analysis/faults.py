"""Fault-campaign summary tables.

Condenses a :class:`~repro.faults.harness.CampaignReport` into the text
tables printed by ``repro chaos``: one row per run (plan × workload ×
protocol) with the invariant verdicts and fault counters, plus a
per-plan rollup.
"""

from __future__ import annotations

from repro.analysis.tables import render_dict_table

#: Invariants in display order (columns of the run table).
CHECKS = ("terminated", "ct", "prc", "splice", "wal")


def _verdict(checks: dict, name: str) -> str:
    if name not in checks:
        return "-"
    return "pass" if checks[name] else "FAIL"


def campaign_rows(report) -> list[dict[str, object]]:
    """One table row per chaos run."""
    rows = []
    for run in report.runs:
        row: dict[str, object] = {
            "plan": run.plan,
            "workload": run.workload,
            "protocol": run.protocol,
        }
        for name in CHECKS:
            row[name] = _verdict(run.checks, name)
        metrics = run.metrics
        row["committed"] = metrics.committed if metrics else "-"
        row["injected"] = metrics.faults_injected if metrics else "-"
        row["retries"] = metrics.fault_retries if metrics else "-"
        row["recoveries"] = metrics.fault_recoveries if metrics else "-"
        row["trace"] = run.trace_digest[:8] if run.trace_digest else "-"
        rows.append(row)
    return rows


def plan_rollup_rows(report) -> list[dict[str, object]]:
    """Per-plan aggregate: runs, passes, and summed fault counters."""
    by_plan: dict[str, dict[str, int]] = {}
    for run in report.runs:
        agg = by_plan.setdefault(
            run.plan,
            {
                "runs": 0,
                "passed": 0,
                "injected": 0,
                "retries": 0,
                "recoveries": 0,
            },
        )
        agg["runs"] += 1
        agg["passed"] += 1 if run.ok else 0
        if run.metrics:
            agg["injected"] += run.metrics.faults_injected
            agg["retries"] += run.metrics.fault_retries
            agg["recoveries"] += run.metrics.fault_recoveries
    return [
        {"plan": plan, **agg} for plan, agg in by_plan.items()
    ]


def render_campaign(report, verbose: bool = False) -> str:
    """The full chaos-campaign report as text tables."""
    counts = report.counts()
    parts = [
        render_dict_table(
            plan_rollup_rows(report),
            title=(
                f"chaos campaign (seed {report.seed}): "
                f"{counts['passed']}/{counts['runs']} runs passed"
            ),
        )
    ]
    if verbose or not report.ok:
        parts.append(
            render_dict_table(campaign_rows(report), title="runs")
        )
    for run in report.failed:
        parts.append(
            f"FAILED {run.plan} × {run.workload} × {run.protocol}: "
            f"{', '.join(run.failures)}"
        )
    return "\n\n".join(parts)
