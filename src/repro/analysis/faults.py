"""Fault-campaign summary tables.

Condenses a :class:`~repro.faults.harness.CampaignReport` into the text
tables printed by ``repro chaos``: one row per run (plan × workload ×
protocol) with the invariant verdicts and fault counters, plus a
per-plan rollup.
"""

from __future__ import annotations

from repro.analysis.tables import render_dict_table

#: Invariants in display order (columns of the run table).
CHECKS = ("terminated", "ct", "prc", "splice", "wal")


def _verdict(checks: dict, name: str) -> str:
    if name not in checks:
        return "-"
    return "pass" if checks[name] else "FAIL"


def campaign_rows(report) -> list[dict[str, object]]:
    """One table row per chaos run."""
    rows = []
    for run in report.runs:
        row: dict[str, object] = {
            "plan": run.plan,
            "workload": run.workload,
            "protocol": run.protocol,
        }
        for name in CHECKS:
            row[name] = _verdict(run.checks, name)
        metrics = run.metrics
        row["committed"] = metrics.committed if metrics else "-"
        row["injected"] = metrics.faults_injected if metrics else "-"
        row["retries"] = metrics.fault_retries if metrics else "-"
        row["recoveries"] = metrics.fault_recoveries if metrics else "-"
        row["trace"] = run.trace_digest[:8] if run.trace_digest else "-"
        rows.append(row)
    return rows


def plan_rollup_rows(report) -> list[dict[str, object]]:
    """Per-plan aggregate: runs, passes, and summed fault counters."""
    by_plan: dict[str, dict[str, int]] = {}
    for run in report.runs:
        agg = by_plan.setdefault(
            run.plan,
            {
                "runs": 0,
                "passed": 0,
                "injected": 0,
                "retries": 0,
                "recoveries": 0,
            },
        )
        agg["runs"] += 1
        agg["passed"] += 1 if run.ok else 0
        if run.metrics:
            agg["injected"] += run.metrics.faults_injected
            agg["retries"] += run.metrics.fault_retries
            agg["recoveries"] += run.metrics.fault_recoveries
    return [
        {"plan": plan, **agg} for plan, agg in by_plan.items()
    ]


def _run_json(run) -> dict[str, object]:
    """Machine-readable form of one chaos run (raw booleans)."""
    metrics = run.metrics
    return {
        "plan": run.plan,
        "workload": run.workload,
        "protocol": run.protocol,
        "ok": run.ok,
        "checks": dict(run.checks),
        "failures": list(run.failures),
        "committed": metrics.committed if metrics else None,
        "injected": metrics.faults_injected if metrics else None,
        "retries": metrics.fault_retries if metrics else None,
        "recoveries": metrics.fault_recoveries if metrics else None,
        "events": run.events,
        "incarnations": run.incarnations,
        "dropped_injections": run.dropped_injections,
        "retry_budget_exhausted": run.retry_budget_exhausted,
        "admissions_deferred": run.admissions_deferred,
        "trace_digest": run.trace_digest,
    }


def campaign_json(report) -> dict[str, object]:
    """Machine-readable campaign report (``repro chaos --json``).

    Unlike :func:`campaign_rows` (display strings: "pass"/"FAIL"),
    check verdicts here are raw booleans so scripts can consume them
    without string matching; the exit-code contract mirrors ``ok``.
    """
    return {
        "seed": report.seed,
        "ok": report.ok,
        "counts": report.counts(),
        "runs": [_run_json(run) for run in report.runs],
    }


def soak_rows(report) -> list[dict[str, object]]:
    """One table row per soak round."""
    rows = []
    for index, run in enumerate(report.runs):
        row: dict[str, object] = {
            "round": index,
            "plan": run.plan,
            "workload": run.workload,
        }
        for name in CHECKS:
            row[name] = _verdict(run.checks, name)
        row["events"] = run.events
        row["committed"] = run.metrics.committed if run.metrics else "-"
        row["injected"] = (
            run.metrics.faults_injected if run.metrics else "-"
        )
        row["deferred"] = run.admissions_deferred
        row["recoveries"] = run.incarnations - 1
        rows.append(row)
    return rows


def render_soak(report) -> str:
    """The soak-campaign report as text tables."""
    counts = report.counts()
    parts = [
        render_dict_table(
            soak_rows(report),
            title=(
                f"soak campaign (seed {report.plan.seed}): "
                f"{counts['passed']}/{counts['rounds']} rounds passed, "
                f"{counts['events']} events "
                f"(floor {report.plan.min_events})"
            ),
        )
    ]
    if report.events_total < report.plan.min_events:
        parts.append(
            f"FAILED: only {report.events_total} events processed "
            f"(< min_events {report.plan.min_events})"
        )
    for run in report.failed:
        parts.append(
            f"FAILED {run.plan} × {run.workload}: "
            f"{', '.join(run.failures)}"
        )
    return "\n\n".join(parts)


def soak_json(report) -> dict[str, object]:
    """Machine-readable soak report (``repro soak --json``)."""
    resilience = []
    for stats in report.resilience_stats:
        if stats is None:
            resilience.append(None)
        else:
            resilience.append(
                {
                    "admissions_deferred": stats.admissions_deferred,
                    "admissions_readmitted": (
                        stats.admissions_readmitted
                    ),
                    "admissions_forced": stats.admissions_forced,
                    "breaker_opens": stats.breaker_opens,
                    "breaker_closes": stats.breaker_closes,
                    "degradations": stats.degradations,
                    "recoveries": stats.recoveries,
                    "outage_hits": stats.outage_hits,
                    "retry_exhaustions": stats.retry_exhaustions,
                }
            )
    return {
        "seed": report.plan.seed,
        "ok": report.ok,
        "events_total": report.events_total,
        "min_events": report.plan.min_events,
        "counts": report.counts(),
        "runs": [_run_json(run) for run in report.runs],
        "resilience": resilience,
    }


def render_campaign(report, verbose: bool = False) -> str:
    """The full chaos-campaign report as text tables."""
    counts = report.counts()
    parts = [
        render_dict_table(
            plan_rollup_rows(report),
            title=(
                f"chaos campaign (seed {report.seed}): "
                f"{counts['passed']}/{counts['runs']} runs passed"
            ),
        )
    ]
    if verbose or not report.ok:
        parts.append(
            render_dict_table(campaign_rows(report), title="runs")
        )
    for run in report.failed:
        parts.append(
            f"FAILED {run.plan} × {run.workload} × {run.protocol}: "
            f"{', '.join(run.failures)}"
        )
    return "\n\n".join(parts)
