"""ASCII timeline rendering of observed schedules.

Turns a :class:`~repro.theory.schedule.ProcessSchedule` into a per-process
lane diagram — one column per schedule position — which makes interleaving,
cascading aborts, and resubmissions visible at a glance::

    P1   R--W--P--S--C
    P2   R--------x        <- cascade victim, compensated and aborted
    P2.1          R--W--…  <- resubmitted incarnation

Glyphs: the activity's first letter (upper-case regular, lower-case
compensating), ``C`` commit, ``A`` abort; ``-`` marks lanes that are alive
but idle at that position.
"""

from __future__ import annotations

from repro.theory.schedule import (
    EventKind,
    ProcessSchedule,
    ScheduleEvent,
)

#: Glyphs for terminal events.
COMMIT_GLYPH = "C"
ABORT_GLYPH = "A"
IDLE_GLYPH = "-"
GAP_GLYPH = " "


def _lane_label(process: tuple[int, int]) -> str:
    pid, incarnation = process
    return f"P{pid}" if incarnation == 0 else f"P{pid}.{incarnation}"


def _event_glyph(event: ScheduleEvent) -> str:
    if event.kind is EventKind.COMMIT:
        return COMMIT_GLYPH
    if event.kind is EventKind.ABORT:
        return ABORT_GLYPH
    letter = event.name[:1] or "?"
    return letter.lower() if event.is_compensation else letter.upper()


def render_timeline(
    schedule: ProcessSchedule,
    max_width: int = 120,
    legend: bool = True,
) -> str:
    """Render the schedule as one lane per process incarnation.

    ``max_width`` truncates very long schedules (an ellipsis marks the
    cut); pass 0 for no limit.
    """
    processes = schedule.processes
    if not processes:
        return "(empty schedule)"
    first_pos: dict[tuple[int, int], int] = {}
    last_pos: dict[tuple[int, int], int] = {}
    for event in schedule.events:
        first_pos.setdefault(event.process, event.position)
        last_pos[event.process] = event.position

    length = len(schedule.events)
    label_width = max(len(_lane_label(p)) for p in processes) + 2
    lanes: dict[tuple[int, int], list[str]] = {
        process: [GAP_GLYPH] * length for process in processes
    }
    for process in processes:
        for pos in range(first_pos[process], last_pos[process] + 1):
            lanes[process][pos] = IDLE_GLYPH
    for event in schedule.events:
        lanes[event.process][event.position] = _event_glyph(event)

    truncated = max_width and length > max_width
    cut = max_width if truncated else length
    lines = []
    for process in processes:
        body = "".join(lanes[process][:cut])
        if truncated:
            body += "…"
        lines.append(f"{_lane_label(process):<{label_width}}{body}")
    if legend:
        names = sorted(
            {
                event.name
                for event in schedule.events
                if event.is_activity and not event.is_compensation
            }
        )
        legend_items = [f"{name[:1].upper()}={name}" for name in names]
        lines.append("")
        lines.append(
            "legend: " + ", ".join(legend_items)
            + f", lower-case=compensation, {COMMIT_GLYPH}=commit, "
            f"{ABORT_GLYPH}=abort"
        )
    return "\n".join(lines)
