"""Renderer behind ``repro top`` — a live text dashboard.

Pure functions over the ``stats`` and ``metrics`` wire-verb bodies, so
the dashboard is testable without a terminal or a running service: the
CLI loop polls a :class:`~repro.client.ServiceClient`, diffs successive
snapshots for rates, and prints :func:`render_top`'s output.
"""

from __future__ import annotations

import math

from repro.obs.metrics import histogram_quantile

__all__ = ["TopState", "render_top"]

_STATE_NAMES = {0.0: "closed", 1.0: "half-open", 2.0: "open"}


def family(snapshot: dict, name: str) -> dict | None:
    """One family entry out of a ``metrics`` wire-verb body."""
    for entry in snapshot.get("families", ()):
        if entry["name"] == name:
            return entry
    return None


def counter_total(snapshot: dict, name: str, **labels) -> float:
    """Sum of a family's samples matching the given labels."""
    entry = family(snapshot, name)
    if entry is None:
        return 0.0
    total = 0.0
    for sample in entry["samples"]:
        if all(
            sample["labels"].get(k) == v for k, v in labels.items()
        ):
            total += sample.get("value", 0.0)
    return total


def gauge_samples(snapshot: dict, name: str) -> list[tuple[dict, float]]:
    entry = family(snapshot, name)
    if entry is None:
        return []
    return [
        (sample["labels"], sample.get("value", 0.0))
        for sample in entry["samples"]
    ]


def _le(text: str) -> float:
    return math.inf if text == "+Inf" else float(text)


def merged_histogram(snapshot: dict, name: str) -> list[tuple[float, float]]:
    """Cumulative ``(le, count)`` pairs summed over every label child."""
    entry = family(snapshot, name)
    if entry is None or not entry["samples"]:
        return []
    merged: dict[float, float] = {}
    for sample in entry["samples"]:
        for le_text, cum in sample.get("buckets", ()):
            bound = _le(le_text)
            merged[bound] = merged.get(bound, 0.0) + cum
    return sorted(merged.items())


class TopState:
    """Previous-poll memory for rate computation."""

    def __init__(self) -> None:
        self.committed = 0.0
        self.submitted = 0.0
        self.events = 0.0


def _fmt_rate(value: float) -> str:
    return f"{value:8.1f}/s"


def _fmt_latency(seconds: float) -> str:
    if math.isnan(seconds):
        return "     -"
    if seconds < 1.0:
        return f"{seconds * 1000:5.1f}ms"
    return f"{seconds:5.2f}s "


def render_top(
    stats: dict,
    metrics: dict,
    state: TopState | None = None,
    elapsed: float = 0.0,
) -> str:
    """One dashboard frame from the two wire-verb bodies.

    ``state`` carries the previous poll's totals (mutated in place to
    the current ones) and ``elapsed`` the wall seconds since that poll;
    together they turn monotone counters into rates.  Pass ``None`` /
    ``0.0`` for a rate-less first frame.
    """
    snapshot = metrics.get("metrics", metrics)
    manager = stats.get("manager", {})
    service = stats.get("service", {})
    engine = stats.get("engine", {})
    bus = stats.get("bus", {})

    committed = float(manager.get("committed", 0))
    submitted = float(manager.get("submitted", 0))
    events = float(engine.get("events_processed", 0))
    commit_rate = submit_rate = event_rate = math.nan
    if state is not None and elapsed > 0:
        commit_rate = (committed - state.committed) / elapsed
        submit_rate = (submitted - state.submitted) / elapsed
        event_rate = (events - state.events) / elapsed
    if state is not None:
        state.committed = committed
        state.submitted = submitted
        state.events = events

    lines = []
    draining = " DRAINING" if service.get("draining") else ""
    lines.append(
        f"repro top — vt {engine.get('now', 0.0):.2f}  "
        f"workers {service.get('workers', 0)}  "
        f"backlog {service.get('backlog', 0)}  "
        f"subscribers {bus.get('subscribers', 0)}{draining}"
    )
    lines.append("-" * 72)

    def rate(x: float) -> str:
        return "       -" if math.isnan(x) else f"{x:7.1f}"

    lines.append(
        f"processes   submitted {submitted:8.0f} ({rate(submit_rate)}/s)"
        f"   committed {committed:8.0f} ({rate(commit_rate)}/s)"
    )
    lines.append(
        f"            aborts {manager.get('protocol_aborts', 0) + manager.get('intrinsic_aborts', 0):5.0f}"
        f"   cancels {manager.get('cancellations', 0):5.0f}"
        f"   resubmits {manager.get('resubmissions', 0):5.0f}"
        f"   retries {manager.get('retries', 0):5.0f}"
        f"   engine {rate(event_rate)} ev/s"
    )

    merged = merged_histogram(snapshot, "repro_submit_to_commit_seconds")
    p50 = histogram_quantile(merged, 0.50)
    p99 = histogram_quantile(merged, 0.99)
    count = merged[-1][1] if merged else 0
    lines.append(
        f"latency     submit→done p50 {_fmt_latency(p50)}  "
        f"p99 {_fmt_latency(p99)}  (n={count:.0f})"
    )

    degraded = counter_total(snapshot, "repro_degraded")
    breaker_rows = gauge_samples(snapshot, "repro_breaker_state")
    if breaker_rows:
        parts = []
        for labels, value in sorted(
            breaker_rows, key=lambda r: r[0].get("subsystem", "")
        ):
            name = labels.get("subsystem", "?")
            state_name = _STATE_NAMES.get(value, "?")
            marker = {"closed": " ", "half-open": "~", "open": "!"}.get(
                state_name, "?"
            )
            parts.append(f"{marker}{name}={state_name}")
        lines.append(
            "breakers    "
            + "  ".join(parts)
            + ("   [Wcc* DEGRADED]" if degraded else "")
        )
    else:
        lines.append(
            "breakers    (none tripped)"
            + ("   [Wcc* DEGRADED]" if degraded else "")
        )

    depth_rows = gauge_samples(snapshot, "repro_shard_queue_depth")
    lock_rows = {
        labels.get("shard"): value
        for labels, value in gauge_samples(snapshot, "repro_locks_held")
    }
    if depth_rows:
        shard_parts = []
        for labels, depth in sorted(
            depth_rows, key=lambda r: r[0].get("shard", "")
        ):
            shard = labels.get("shard", "?")
            locks = lock_rows.get(shard, 0.0)
            shard_parts.append(
                f"{shard}: q={depth:.0f} locks={locks:.0f}"
            )
        lines.append("shards      " + "   ".join(shard_parts))

    defers = counter_total(snapshot, "repro_lock_defers_total")
    grants = counter_total(snapshot, "repro_lock_grants_total")
    cascades = counter_total(snapshot, "repro_lock_cascades_total")
    deadlocks = counter_total(snapshot, "repro_deadlock_victims_total")
    shed = counter_total(snapshot, "repro_service_shed_total")
    lines.append(
        f"protocol    grants {grants:7.0f}   defers {defers:6.0f}"
        f"   cascades {cascades:5.0f}   deadlock victims {deadlocks:4.0f}"
        f"   shed {shed:4.0f}"
    )
    lines.append(
        f"bus         published {bus.get('published', 0):8.0f}"
        f"   delivered {bus.get('delivered', 0):8.0f}"
        f"   dropped {bus.get('dropped', 0):4.0f}"
    )
    return "\n".join(lines)
