"""Plain-text table rendering for experiment output.

The benchmark harness prints the same kind of rows the paper's exhibits
contain; this module renders them as fixed-width text tables so bench
output is readable in a terminal and diffable in CI logs.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table."""
    columns = len(headers)
    cells = [[_fmt(value) for value in row] for row in rows]
    for row in cells:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns}"
            )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells))
        if cells
        else len(headers[i])
        for i in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        headers[i].ljust(widths[i]) for i in range(columns)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in cells:
        lines.append(
            "  ".join(row[i].ljust(widths[i]) for i in range(columns))
        )
    return "\n".join(lines)


def render_dict_table(
    rows: Sequence[Mapping[str, object]],
    headers: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render a list of dictionaries (keys become columns)."""
    if not rows:
        return title or "(no rows)"
    keys = list(headers) if headers else list(rows[0].keys())
    return render_table(
        keys,
        [[row.get(key, "") for key in keys] for row in rows],
        title=title,
    )


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        return f"{value:.3f}".rstrip("0").rstrip(".") or "0"
    return str(value)
