"""JSON export of experiment results.

Benchmarks and the CLI print text tables; this module serializes the
same rows to JSON so results can be archived or post-processed.
"""

from __future__ import annotations

import dataclasses
import json
import math
from collections.abc import Mapping, Sequence
from pathlib import Path


def _jsonable(value):
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            key: _jsonable(val)
            for key, val in dataclasses.asdict(value).items()
        }
    if isinstance(value, Mapping):
        return {str(key): _jsonable(val) for key, val in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return str(value)


def rows_to_json(
    rows: Sequence[Mapping[str, object]] | Sequence[object],
    indent: int = 2,
) -> str:
    """Serialize experiment rows (dicts or dataclasses) to JSON."""
    return json.dumps([_jsonable(row) for row in rows], indent=indent)


def save_rows(
    path: str | Path,
    rows: Sequence[Mapping[str, object]] | Sequence[object],
) -> Path:
    """Write :func:`rows_to_json` output to ``path``; returns the path."""
    target = Path(path)
    target.write_text(rows_to_json(rows) + "\n", encoding="utf-8")
    return target
