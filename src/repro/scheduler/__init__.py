"""The transactional process manager: engine, events, trace, manager."""

from repro.scheduler.engine import SimulationEngine
from repro.scheduler.events import (
    CompensationRun,
    InflightActivity,
    ParkedRequest,
    ProcessRecord,
    RequestKind,
)
from repro.scheduler.manager import (
    ManagerConfig,
    ManagerStats,
    ProcessManager,
    RunResult,
    make_manager,
)
from repro.scheduler.recovery import (
    CrashImage,
    ProcessSnapshot,
    crash,
    recover,
    restore_process,
)
from repro.scheduler.trace import TraceRecorder

__all__ = [
    "CompensationRun",
    "CrashImage",
    "ProcessSnapshot",
    "crash",
    "recover",
    "restore_process",
    "InflightActivity",
    "ManagerConfig",
    "ManagerStats",
    "ParkedRequest",
    "ProcessManager",
    "ProcessRecord",
    "RequestKind",
    "RunResult",
    "SimulationEngine",
    "TraceRecorder",
    "make_manager",
]
