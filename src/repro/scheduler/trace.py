"""Observed-schedule recording.

The :class:`TraceRecorder` turns the simulation's committed activities and
process terminations into the theory layer's
:class:`~repro.theory.schedule.ProcessSchedule`, which the correctness
oracles (P-RED / CT / P-RC) consume.
"""

from __future__ import annotations

from repro.activities.activity import Activity
from repro.process.instance import Process
from repro.theory.schedule import (
    ConflictFn,
    EventKind,
    ProcessSchedule,
    ScheduleEvent,
)


class TraceRecorder:
    """Collects schedule events in observed (virtual-time) order.

    Pass ``events`` to continue an earlier trace — crash recovery seeds
    the new manager's recorder with the pre-crash schedule so the
    combined history can be checked end to end.
    """

    def __init__(self, events: list[ScheduleEvent] | None = None) -> None:
        self.events: list[ScheduleEvent] = list(events or [])

    def record_activity(self, process: Process, activity: Activity) -> None:
        """Record a committed (regular or compensating) activity."""
        activity_type = activity.activity_type
        self.events.append(
            ScheduleEvent(
                position=len(self.events),
                process=process.key,
                kind=EventKind.ACTIVITY,
                name=activity.name,
                uid=activity.uid,
                compensates=activity.compensates,
                compensatable=activity_type.compensatable,
                point_of_no_return=activity_type.point_of_no_return,
            )
        )

    def record_commit(self, process: Process) -> None:
        """Record ``C_i``."""
        self.events.append(
            ScheduleEvent(
                position=len(self.events),
                process=process.key,
                kind=EventKind.COMMIT,
            )
        )

    def record_abort(self, process: Process) -> None:
        """Record ``A_i`` (after the abort-process execution finished)."""
        self.events.append(
            ScheduleEvent(
                position=len(self.events),
                process=process.key,
                kind=EventKind.ABORT,
            )
        )

    def to_schedule(self, conflict: ConflictFn) -> ProcessSchedule:
        """Wrap the recorded events as a checkable process schedule."""
        return ProcessSchedule(list(self.events), conflict)

    def __len__(self) -> int:
        return len(self.events)
