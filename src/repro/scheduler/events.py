"""Bookkeeping records used by the process manager.

These dataclasses describe work that is *parked* (deferred lock requests,
pending commits, compensation steps awaiting locks) and work that is *in
flight* (activities whose completion event is scheduled).
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.activities.activity import Activity
from repro.core.locks import LockMode
from repro.process.instance import LedgerEntry, Process


class RequestKind(enum.Enum):
    """What a parked request is waiting to do."""

    REGULAR = "regular"
    COMPENSATION = "compensation"
    COMMIT = "commit"


@dataclass(slots=True)
class ParkedRequest:
    """A lock/commit request waiting for other processes to terminate.

    ``seq`` is the manager-assigned park order (re-assigned every time
    the request is re-parked); the wake-up scheduler retries eligible
    requests in ``seq`` order, which reproduces the historical
    scan-the-parked-list-in-order semantics exactly.
    """

    kind: RequestKind
    process: Process
    activity: Activity | None = None
    mode: LockMode | None = None
    wait_for: frozenset[int] = frozenset()
    reason: str = ""
    parked_at: float = 0.0
    seq: int = 0
    #: Blocker pids currently contributed to the manager's incremental
    #: wait-for graph for this request.  A subset of ``wait_for``:
    #: "awaiting-cascade" blockers only count once their abort is under
    #: way, and edges to terminated blockers are withdrawn while the
    #: request stays parked.  Managed by ``_park``/``_unpark`` and the
    #: abort/termination hooks; empty while unparked.
    waitfor_edges: set[int] = field(default_factory=set)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        what = (
            self.kind.value
            if self.activity is None
            else f"{self.kind.value}:{self.activity.name}"
        )
        return (
            f"parked[{what}] P{self.process.pid} waits "
            f"{sorted(self.wait_for)} ({self.reason})"
        )


@dataclass(slots=True)
class InflightActivity:
    """A lock-granted activity that is executing or gated.

    Ordered sharing orders conflicting activities by lock position; the
    underlying subsystem's own concurrency control would block a later
    conflicting transaction until the earlier one commits.  The manager
    models this with ``gate``: the set of activity uids (with smaller lock
    positions, conflicting types) that must complete before this activity
    starts executing.
    """

    process: Process
    activity: Activity
    kind: RequestKind
    started_at: float
    entry: object = None  # LockEntry of the granted lock
    gate: set[int] = field(default_factory=set)
    started: bool = False
    cancelled: bool = False
    #: Execution attempts so far (1-based; transient retries bump it).
    attempts: int = 1
    #: ``1 << dense type id`` of the activity's type when ``entry`` is
    #: set, else 0 — gating tests conflict membership with one AND
    #: instead of a name lookup per inflight pair.  Dense ids are
    #: stable across plane recompiles (the registry is append-only).
    type_bit: int = 0


@dataclass(slots=True)
class CompensationRun:
    """A sequence of compensations being executed for one process.

    ``queue`` holds the remaining ledger entries in reverse execution
    order; ``on_done`` fires once the last compensation committed
    (finalizing an abort, or switching to the pivot's next alternative).
    """

    process: Process
    queue: list[LedgerEntry]
    on_done: Callable[[], None]
    label: str = ""
    victims_aborted: int = 0


@dataclass(slots=True)
class ProcessRecord:
    """Per-pid accounting across incarnations (for metrics)."""

    pid: int
    submitted_at: float
    committed_at: float | None = None
    intrinsically_aborted_at: float | None = None
    resubmissions: int = 0
    cascade_aborts: int = 0
    activities_committed: int = 0
    compensations: int = 0
    compensated_cost: float = 0.0
    #: Activity-type names whose effects had to be compensated.
    compensated_names: list[str] = field(default_factory=list)
    #: Cause of each compensation, aligned with ``compensated_names``
    #: ("protocol-abort", "intrinsic-abort", or "subprocess-abort").
    compensated_causes: list[str] = field(default_factory=list)
    retries: int = 0

    @property
    def latency(self) -> float | None:
        if self.committed_at is None:
            return None
        return self.committed_at - self.submitted_at
