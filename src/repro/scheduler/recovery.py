"""Crash recovery for the process manager ("fault-tolerant execution").

The paper's title promises fault-tolerant execution of transactional
processes; beyond per-process failure handling (alternatives,
compensation), a production process manager must also survive *its own*
failure.  This module models that:

* :func:`crash` captures what a real PM would have on durable storage at
  the moment of a crash — the **process journal**: for every live
  process its program, timestamp, incarnation, state, executed-activity
  ledger (with compensation status), open failure scopes, and pending
  work.  Volatile state — the lock table, in-flight activities, parked
  lock requests, the event queue — is deliberately *not* captured.
* :func:`recover` rebuilds a fresh manager from the image: locks are
  re-acquired in the original sharing order (the pre-crash state was
  rule-produced, hence consistent), completing processes resume
  *forward* (they must commit — guaranteed termination), running
  processes simply continue (their lock state is intact; in-flight
  activities were lost and are relaunched), and aborting processes
  finish their abort-process execution.

The recovered manager's trace continues the pre-crash trace, so the
combined schedule can be checked against CT and P-RC end to end — the
recovery tests assert exactly that.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.activities.activity import Activity, ensure_uid_floor
from repro.core.locks import LockMode
from repro.errors import SchedulerError
from repro.process.instance import LedgerEntry, Process, _Scope
from repro.process.program import ProcessProgram, ProgramNode
from repro.process.state import ProcessState
from repro.scheduler.events import ProcessRecord, RequestKind
from repro.scheduler.manager import (
    ManagerConfig,
    ProcessManager,
    make_manager,
)
from repro.scheduler.trace import TraceRecorder
from repro.theory.schedule import ScheduleEvent


@dataclass(frozen=True)
class LedgerRecord:
    """Durable form of one executed activity."""

    name: str
    uid: int
    seq: int
    node_id: int
    compensated: bool
    compensates: int | None


@dataclass(frozen=True)
class ScopeRecord:
    """Durable form of one open failure scope."""

    node_id: int
    branch_index: int
    ledger_start: int


@dataclass(frozen=True)
class ProcessSnapshot:
    """The journal entry of one live process."""

    pid: int
    timestamp: int
    incarnation: int
    program: ProcessProgram
    state: str
    wcc: float
    next_seq: int
    current_node_id: int | None
    pending_launch: tuple[str, ...]
    unwinding: bool
    ledger: tuple[LedgerRecord, ...]
    scopes: tuple[ScopeRecord, ...]
    #: Whether the pivot treatment (C→P conversion) had actually been
    #: *granted* before the crash.  A real PM force-logs the
    #: point-of-no-return decision before acting on it, so the journal
    #: knows; ``wcc`` alone cannot tell, because the Wcc charge lands at
    #: classification time — before the grant decision — so a process
    #: whose pivot request was still parked at the crash already carries
    #: the over-threshold charge without any conversion having happened.
    pivot_treated: bool = False


@dataclass
class CrashImage:
    """Everything that survives a process-manager crash."""

    snapshots: list[ProcessSnapshot]
    trace_events: list[ScheduleEvent]
    records: dict[int, ProcessRecord] = field(default_factory=dict)
    crashed_at: float = 0.0
    max_pid: int = 0


# ----------------------------------------------------------------------
# capturing
# ----------------------------------------------------------------------
def crash(manager: ProcessManager) -> CrashImage:
    """Capture the durable journal of a (running) manager.

    Read-only: the caller simply abandons the crashed manager
    afterwards.  Pending (launched-but-uncommitted) activities are
    recorded by *name only* — their subsystem transactions abort with
    the crash (the bottom layer is ACA) and they will be relaunched.
    """
    snapshots = []
    for process in manager._processes.values():
        pending = list(process.ready_activities())
        for flight in manager._inflight.values():
            if (
                flight.process.pid == process.pid
                and not flight.cancelled
                and flight.kind is RequestKind.REGULAR
            ):
                pending.append(flight.activity.name)
        for request in manager._parked.values():
            if (
                request.process.pid == process.pid
                and request.kind is RequestKind.REGULAR
            ):
                pending.append(request.activity.name)
        stashed = manager._stashed_failures.get(process.pid)
        if stashed is not None:
            pending.append(stashed.name)
        # The pivot decision is write-ahead-logged: once any lock of the
        # process actually went to P mode, the journal records the
        # treatment so recovery replays the conversion — and only then.
        table = getattr(manager.protocol, "table", None)
        pivot_treated = table is not None and any(
            entry.mode is LockMode.P
            for entry in table.locks_of(process.pid)
        )
        snapshots.append(
            _snapshot_process(
                process, tuple(pending), pivot_treated=pivot_treated
            )
        )
    return CrashImage(
        snapshots=snapshots,
        trace_events=list(manager.trace.events),
        records=dict(manager.records),
        crashed_at=manager.engine.now,
        max_pid=max(manager.records, default=0),
    )


def _snapshot_process(
    process: Process,
    pending: tuple[str, ...],
    pivot_treated: bool = False,
) -> ProcessSnapshot:
    ledger = tuple(
        LedgerRecord(
            name=entry.activity.name,
            uid=entry.activity.uid,
            seq=entry.activity.seq,
            node_id=entry.node.node_id,
            compensated=entry.compensated,
            compensates=entry.activity.compensates,
        )
        for entry in process.ledger
    )
    scopes = tuple(
        ScopeRecord(
            node_id=scope.node.node_id,
            branch_index=scope.branch_index,
            ledger_start=scope.ledger_start,
        )
        for scope in process._scopes
    )
    current = process._current
    return ProcessSnapshot(
        pid=process.pid,
        timestamp=process.timestamp,
        incarnation=process.incarnation,
        program=process.program,
        state=process.state.value,
        wcc=process.wcc,
        next_seq=process._seq,
        current_node_id=current.node_id if current is not None else None,
        pending_launch=pending,
        unwinding=process.unwinding,
        ledger=ledger,
        scopes=scopes,
        pivot_treated=pivot_treated,
    )


# ----------------------------------------------------------------------
# restoring
# ----------------------------------------------------------------------
def restore_process(snapshot: ProcessSnapshot) -> Process:
    """Rebuild a :class:`Process` from its journal entry."""
    nodes: dict[int, ProgramNode] = {
        node.node_id: node for node in snapshot.program.iter_nodes()
    }
    process = Process(
        pid=snapshot.pid,
        program=snapshot.program,
        timestamp=snapshot.timestamp,
        incarnation=snapshot.incarnation,
    )
    process.state = ProcessState(snapshot.state)
    process.wcc = snapshot.wcc
    process._seq = snapshot.next_seq
    process.ledger = [
        LedgerEntry(
            activity=Activity(
                activity_type=snapshot.program.registry.get(record.name),
                process_id=snapshot.pid,
                seq=record.seq,
                compensates=record.compensates,
                uid=record.uid,
            ),
            node=nodes[record.node_id],
            compensated=record.compensated,
        )
        for record in snapshot.ledger
    ]
    process._scopes = [
        _Scope(
            node=nodes[record.node_id],
            branch_index=record.branch_index,
            ledger_start=record.ledger_start,
        )
        for record in snapshot.scopes
    ]
    if snapshot.current_node_id is not None:
        node = nodes[snapshot.current_node_id]
        process._current = node
        process._to_launch = list(snapshot.pending_launch)
        process._node_commits = len(node.activities) - len(
            snapshot.pending_launch
        )
    else:
        process._current = None
        process._to_launch = []
        process._node_commits = 0
    process._outstanding = 0
    process._unwinding = snapshot.unwinding
    process._committed_pnr_count = sum(
        1
        for record in snapshot.ledger
        if snapshot.program.registry.get(record.name).point_of_no_return
    )
    return process


def rebuild_locks(
    protocol,
    processes: list[Process],
    protected_pids: set[int] | None = None,
) -> None:
    """Re-acquire every surviving lock in the original sharing order.

    Under strict 2PL a live process holds one lock per ledger activity
    (regular *and* compensating); activity uids are globally monotone in
    launch order, so replaying acquisitions in uid order reproduces the
    sharing order.  ``protected_pids`` names the processes whose pivot
    treatment (Comp→Piv C→P conversion) had actually been granted
    before the crash — journalled via ``ProcessSnapshot.pivot_treated``
    — and only those replay the conversion.  Replaying it for a process
    whose pivot request was merely *parked* would hide its on-hold C
    locks from the Piv-Rule's conflicting-holder scan and let the pivot
    be granted while depending on a live abortable process, which is
    exactly the unresolvable completing↔aborting wait cycle the basic
    protocol excludes.
    """
    entries = sorted(
        (
            (entry.activity.uid, process, entry)
            for process in processes
            for entry in process.ledger
        ),
        key=lambda item: item[0],
    )
    for __, process, entry in entries:
        activity_type = entry.activity.activity_type
        mode = (
            LockMode.P
            if activity_type.point_of_no_return
            else LockMode.C
        )
        protocol.restore_grant(
            process, entry.activity.name, mode, entry.activity.uid
        )
    if protected_pids is None:
        protected_pids = {
            process.pid
            for process in processes
            if process.state is ProcessState.COMPLETING
        }
    for process in processes:
        if process.pid in protected_pids:
            for entry in protocol.table.c_locks_of(process.pid):
                entry.upgrade_to_p()


def recover(
    image: CrashImage,
    protocol,
    config: ManagerConfig | None = None,
    subsystems=None,
    seed: int = 0,
    tracer=None,
) -> ProcessManager:
    """Build a fresh manager that continues where the crash left off.

    ``protocol`` must be a *fresh* instance over the same registry and
    conflict matrix (the lock table is volatile and is rebuilt here).
    ``tracer`` hands the pre-crash run's tracer to the new incarnation;
    the caller is responsible for advancing ``tracer.offset`` by the
    crashed incarnation's final virtual time so stamps stay monotone.
    """
    if protocol.table.lock_count:
        raise SchedulerError(
            "recovery needs a fresh protocol instance (its lock table "
            "is rebuilt from the journal)"
        )
    processes = [
        restore_process(snapshot)
        for snapshot in sorted(
            image.snapshots, key=lambda snap: snap.timestamp
        )
    ]
    max_ts = max((p.timestamp for p in processes), default=0)
    protocol.ensure_timestamp_floor(max_ts)
    max_uid = max(
        (
            entry.activity.uid
            for process in processes
            for entry in process.ledger
        ),
        default=0,
    )
    ensure_uid_floor(max_uid)
    manager = make_manager(
        protocol,
        subsystems=subsystems,
        config=config,
        seed=seed,
        tracer=tracer,
    )
    manager.trace = TraceRecorder(image.trace_events)
    manager.records.update(image.records)
    manager._pids = itertools.count(image.max_pid + 1)
    protected_pids = {
        snapshot.pid
        for snapshot in image.snapshots
        if snapshot.pivot_treated
        or snapshot.state == ProcessState.COMPLETING.value
    }
    rebuild_locks(protocol, processes, protected_pids)
    for process in processes:
        manager.adopt_recovered(process)
    return manager
