"""Deterministic discrete-event simulation engine.

The engine advances a virtual clock and fires scheduled callbacks in
``(time, sequence)`` order, making every run fully deterministic for a
given seed.  Wall-clock concurrency of the WISE/OPERA deployment is
replaced by virtual-time interleaving — the process-locking decisions
depend only on the interleaving order, which is faithfully represented.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import SchedulerError


@dataclass(slots=True)
class _Scheduled:
    time: float
    seq: int
    callback: Callable[[], None]
    cancelled: bool = False


class SimulationEngine:
    """A virtual-time event loop.

    The heap holds ``(time, seq, item)`` tuples rather than the items
    themselves: ``seq`` is unique, so comparisons resolve at C level on
    the tuple prefix and never reach the (incomparable) payload — same
    firing order as ordering the items directly, without a Python-level
    ``__lt__`` per heap sift.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list[tuple[float, int, _Scheduled]] = []
        self._seq = itertools.count()
        self.events_processed = 0

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> _Scheduled:
        """Run ``callback`` at ``now + delay``; returns a cancel handle."""
        if delay < 0:
            raise SchedulerError(f"negative delay {delay!r}")
        item = _Scheduled(
            time=self.now + delay, seq=next(self._seq), callback=callback
        )
        heapq.heappush(self._queue, (item.time, item.seq, item))
        return item

    @staticmethod
    def cancel(item: _Scheduled) -> None:
        """Cancel a scheduled callback (no-op if already fired)."""
        item.cancelled = True

    def run(self, max_events: int = 1_000_000) -> None:
        """Process events until the queue drains.

        Raises
        ------
        SchedulerError
            If more than ``max_events`` fire — a livelock guard.
        """
        fired = 0
        while self._queue:
            time, _seq, item = heapq.heappop(self._queue)
            if item.cancelled:
                continue
            if time < self.now:  # pragma: no cover - defensive
                raise SchedulerError("event queue went back in time")
            self.now = time
            item.callback()
            self.events_processed += 1
            fired += 1
            if fired > max_events:
                raise SchedulerError(
                    f"simulation exceeded {max_events} events; "
                    "suspected livelock"
                )

    def run_due(
        self, deadline: float, max_events: int = 1_000_000
    ) -> int:
        """Process every event due by ``deadline``; returns the count.

        The service front end (:mod:`repro.server`) uses this to pace
        virtual time against the wall clock: each real-time tick
        advances the clock to its mapped virtual deadline and fires
        exactly the events due by then, leaving later events queued.
        The clock lands *on* the deadline even when nothing fired, so
        subsequent arrivals are stamped with the paced time.
        """
        fired = 0
        while self._queue and self._queue[0][0] <= deadline:
            time, _seq, item = heapq.heappop(self._queue)
            if item.cancelled:
                continue
            self.now = time
            item.callback()
            self.events_processed += 1
            fired += 1
            if fired > max_events:
                raise SchedulerError(
                    f"simulation exceeded {max_events} events; "
                    "suspected livelock"
                )
        if self.now < deadline:
            self.now = deadline
        return fired

    def run_steps(self, limit: int) -> int:
        """Process at most ``limit`` events; returns how many fired.

        Used by the crash-recovery tests to stop the world at an
        arbitrary point mid-simulation.
        """
        fired = 0
        while self._queue and fired < limit:
            time, _seq, item = heapq.heappop(self._queue)
            if item.cancelled:
                continue
            self.now = time
            item.callback()
            self.events_processed += 1
            fired += 1
        return fired

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(
            1 for _, _, item in self._queue if not item.cancelled
        )
