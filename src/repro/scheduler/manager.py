"""The transactional process manager (PM).

The :class:`ProcessManager` is the paper's top layer: it instantiates
processes from process programs, asks the locking protocol for permission
before invoking each activity, executes the resulting decisions (grant /
defer / cascade-abort / self-abort), drives compensation runs for failed
subprocesses and aborted processes, resubmits cascade victims with their
original timestamps, and records the observed schedule for the theory
oracles.

It is deliberately protocol-agnostic: any object with the
:class:`ProcessLockManager` decision interface can be plugged in, which is
how the baseline protocols (serial, S2PL, pure OSL, ACA) reuse the entire
execution machinery.
"""

from __future__ import annotations

import heapq
import itertools
import random
import threading
from dataclasses import dataclass, field

from repro import config as repro_config

from repro.activities.activity import Activity
from repro.core.deadlock import (
    IncrementalWaitFor,
    WaitForGraph,
    choose_cycle_victim,
    has_cycle,
)
from repro.core.cost_based import retry_wcc_charge
from repro.core.decisions import (
    AbortVictims,
    Decision,
    Defer,
    Grant,
    SelfAbort,
)
from repro.core.locks import LockMode
from repro.errors import ProtocolError, SchedulerError, StarvationError
from repro.obs import NULL_TRACER
from repro.obs.events import (
    ActivityCancelled,
    ActivityCommitted,
    ActivityFailed,
    ActivityRetried,
    ActivityStarted,
    AbortBegun,
    CascadeRequested,
    DeadlockVictim,
    Holder,
    LockDeferred,
    LockGranted,
    ProcessAborted,
    ProcessCancelled,
    ProcessCommitted,
    ProcessInitiated,
    ProcessResubmitted,
    ProcessSubmitted,
    RetryBudgetExhausted,
    SelfAbortDecision,
    UnresolvableForced,
    WaitEdge,
    rule_for_reason,
)
from repro.process.instance import (
    FailurePlan,
    Process,
    Resolution,
)
from repro.process.program import ProcessProgram
from repro.process.state import ProcessState
from repro.scheduler.engine import SimulationEngine
from repro.scheduler.events import (
    CompensationRun,
    InflightActivity,
    ParkedRequest,
    ProcessRecord,
    RequestKind,
)
from repro.scheduler.trace import TraceRecorder
from repro.subsystems.subsystem import SubsystemPool


@dataclass
class ManagerConfig:
    """Tunables of the process manager."""

    #: Abort + resubmit bound per process before declaring starvation.
    max_resubmissions: int = 500
    #: Virtual-time delay before a cascade victim is resubmitted.
    resubmit_delay: float = 1.0
    #: Delay before a transiently failed retriable activity is retried.
    retry_delay: float = 1.0
    #: Probability that a retriable activity needs another attempt.
    transient_retry_prob: float = 0.0
    #: Optional retry/backoff policy for retriable activities (see
    #: :mod:`repro.faults.retry`): any object with ``delay_for(n)`` and
    #: ``max_attempts``.  ``None`` keeps the flat ``retry_delay`` with an
    #: unbounded budget (the seed behaviour).  With a policy installed,
    #: every extra attempt also charges the activity's cost to the
    #: process's ``Wcc`` so cost-based protection sees retry storms.
    retry_policy: object | None = None
    #: Run the protocol's structural audit after every event (slow).
    audit: bool = False
    #: Audit every Nth event instead of every event (``REPRO_AUDIT_EVERY``
    #: env knob, resolved by :mod:`repro.config`).  With a sharded lock
    #: table and N > 1, each audit checks one shard round-robin, so the
    #: sampled auditor's per-event cost no longer scans the whole table.
    #: N = 1 keeps the seed behaviour.
    audit_every: int = field(default_factory=repro_config.audit_every)
    #: Answer the per-park deadlock check from the incrementally
    #: maintained wait-for reachability structure (O(1) amortized in the
    #: common acyclic case) instead of re-walking every parked request.
    #: Disabling restores the rebuild-and-DFS formulation (used by the
    #: benchmarks as the monolithic baseline); both produce byte-identical
    #: schedules, which ``audit`` asserts on every resolve.
    incremental_deadlock: bool = True
    #: Hard cap on simulation events.
    max_events: int = 1_000_000
    #: Serialize conflicting activity *executions* in lock-sharing order
    #: (models the subsystems' own concurrency control).  Disabling this
    #: is an ablation: overlapping conflicting executions can then commit
    #: against the sharing order and break reducibility.
    gate_conflicting_executions: bool = True
    #: Prefer deadlock-cycle victims that hold no P locks (honours
    #: pseudo-pivot protection).  Disabling is an ablation.
    prefer_unprotected_victims: bool = True
    #: Parallel execution mode (:mod:`repro.parallel`): number of shard
    #: workers.  0 (the default) is the literal sequential manager;
    #: N ≥ 1 makes :func:`make_manager` return the thread-per-shard
    #: manager (worker count capped at the shard count), whose emitted
    #: schedule is byte-identical to the sequential run at the same
    #: seed.  ``REPRO_WORKERS`` env knob
    #: (:mod:`repro.config`).
    workers: int = field(default_factory=repro_config.workers)
    #: Batch lock acquisition depth: how many upcoming activities a
    #: process pre-declares per shard visit (parallel manager only;
    #: 1 = the plain per-lock fast path).  ``REPRO_BATCH_K`` env knob.
    batch_k: int = field(default_factory=repro_config.batch_k)
    #: Optional resilience layer (duck-typed; see
    #: :class:`repro.resilience.ResilienceLayer`): subsystem circuit
    #: breakers feeding admission gating and an adaptive ``Wcc*`` cap.
    #: ``None`` (the default) adds no hooks anywhere — schedules stay
    #: byte-identical to the pre-resilience behaviour.
    resilience: object | None = None
    #: Durable storage facade (:class:`repro.storage.Store`) backing
    #: the subsystem pool's WALs and record stores.
    #: :func:`make_manager` attaches it to the pool; with ``None`` and
    #: the ``REPRO_STORE`` knob set, a store is opened ambiently (at a
    #: temp path unless ``REPRO_STORE_PATH`` names one), which is how
    #: the whole test suite runs durably under ``REPRO_STORE=sqlite``.
    #: Durability never alters scheduling decisions — schedules stay
    #: byte-identical to the in-memory run at the same seed.
    store: object | None = None


@dataclass
class ManagerStats:
    """Aggregate counters of one simulation run."""

    submitted: int = 0
    committed: int = 0
    intrinsic_aborts: int = 0
    protocol_aborts: int = 0
    subprocess_aborts: int = 0
    resubmissions: int = 0
    compensations: int = 0
    compensated_cost: float = 0.0
    #: Compensated cost split by what triggered the compensation run.
    compensated_cost_protocol: float = 0.0
    compensated_cost_intrinsic: float = 0.0
    compensated_cost_subprocess: float = 0.0
    retries: int = 0
    deadlock_victims: int = 0
    unresolvable_violations: int = 0
    #: Processes aborted (or dropped pre-initiation) on a client's
    #: explicit request — the service front door's CANCEL command.
    cancellations: int = 0
    #: Admissions the resilience layer deferred (0 without a layer).
    admissions_deferred: int = 0
    #: Admissions the shard-queue backpressure gate deferred (0 unless
    #: a ``shard_queue_cap`` is configured on the resilience layer).
    admissions_backpressured: int = 0
    busy_area: float = 0.0
    _inflight: int = field(default=0, repr=False)
    _last_change: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        # Deliberately *not* a dataclass field: invisible to
        # ``fields()`` — and therefore to eq/repr and ``merge_stats`` —
        # so stats objects stay comparable across runs.
        self._mutex = threading.Lock()

    def add(self, name: str, delta: float = 1) -> None:
        """Counter bump that is safe under concurrent shard workers."""
        with self._mutex:
            setattr(self, name, getattr(self, name) + delta)

    def note_inflight(self, now: float, delta: int) -> None:
        with self._mutex:
            self.busy_area += self._inflight * (now - self._last_change)
            self._inflight += delta
            self._last_change = now


@dataclass
class RunResult:
    """Everything a benchmark or test needs after a run."""

    records: dict[int, ProcessRecord]
    stats: ManagerStats
    protocol_stats: object
    trace: TraceRecorder
    makespan: float

    @property
    def committed_pids(self) -> list[int]:
        return [
            pid
            for pid, record in self.records.items()
            if record.committed_at is not None
        ]

    @property
    def throughput(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.stats.committed / self.makespan

    @property
    def mean_latency(self) -> float:
        latencies = [
            record.latency
            for record in self.records.values()
            if record.latency is not None
        ]
        if not latencies:
            return 0.0
        return sum(latencies) / len(latencies)

    @property
    def mean_concurrency(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.stats.busy_area / self.makespan


class ProcessManager:
    """Drives concurrent processes through a locking protocol."""

    def __init__(
        self,
        protocol,
        subsystems: SubsystemPool | None = None,
        config: ManagerConfig | None = None,
        seed: int = 0,
        tracer=None,
    ) -> None:
        self.protocol = protocol
        self.subsystems = subsystems
        self.config = config or ManagerConfig()
        #: Observability tracer (:mod:`repro.obs`).  Defaults to the
        #: disabled no-op singleton; every emit site guards on
        #: ``tracer.enabled`` before constructing an event, so untraced
        #: runs pay one attribute read per site and stay byte-identical.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        protocol.tracer = self.tracer
        #: Optional fault injector (duck-typed; see
        #: :mod:`repro.faults.injector`).  When attached it may decide
        #: activity outcomes and add execution latency; ``None`` keeps
        #: the manager's own failure sampling untouched.
        self.injector = None
        #: Optional resilience layer from the config (duck-typed; see
        #: :mod:`repro.resilience`).  ``bind`` reschedules any deferred
        #: admissions it carries — crash recovery builds a fresh manager
        #: around the same layer, and those pending initiations are not
        #: part of the crash journal.
        self.resilience = self.config.resilience
        self.engine = SimulationEngine()
        self.rng = random.Random(seed)
        self.trace = TraceRecorder()
        self.stats = ManagerStats()
        self.records: dict[int, ProcessRecord] = {}
        self._pids = itertools.count(1)
        self._processes: dict[int, Process] = {}
        #: Parked requests keyed by park sequence (insertion-ordered).
        self._parked: dict[int, ParkedRequest] = {}
        self._park_seq = itertools.count(1)
        #: pid -> park seqs of requests waiting on that pid.
        self._wait_index: dict[int, set[int]] = {}
        #: Min-heap of park seqs woken by a termination, pending retry.
        self._wake_pending: list[int] = []
        #: Pids with a parked COMMIT request (O(1) membership).
        self._parked_commit_pids: set[int] = set()
        self._inflight: dict[int, InflightActivity] = {}
        #: subsystem -> live queue depth (in-flight + parked activity
        #: requests), maintained incrementally at the _inflight/_parked
        #: mutation sites so gauge sampling never scans either store.
        self._shard_depth_counts: dict[str, int] = {}
        #: Incrementally maintained wait-for reachability over the parked
        #: requests (mirrors :meth:`_wait_edges` exactly; audited).
        self._waitfor = IncrementalWaitFor()
        self._audit_tick = 0
        self._audit_shard_cursor = 0
        #: Guards the round-robin audit cursor (the sampled auditor may
        #: be driven from shard workers in the parallel manager).
        self._audit_mutex = threading.Lock()
        #: uid -> uids of flights gated behind it (execution ordering).
        self._dependents: dict[int, set[int]] = {}
        self._comp_runs: dict[int, CompensationRun] = {}
        self._stashed_failures: dict[int, Activity] = {}
        #: pid -> engine handle of its pending initiation callback, so
        #: :meth:`cancel` can drop a process that has not started yet.
        self._pending_init: dict[int, object] = {}
        self.tracer.bind_clock(lambda: self.engine.now)
        self.tracer.bind_sampler(self._gauge_sample)
        if self.resilience is not None:
            self.resilience.bind(self)

    # ------------------------------------------------------------------
    # submission & run loop
    # ------------------------------------------------------------------
    def submit(self, program: ProcessProgram, at: float = 0.0) -> int:
        """Schedule a new process for initiation at virtual time ``at``."""
        pid = next(self._pids)
        self.records[pid] = ProcessRecord(pid=pid, submitted_at=at)
        self.stats.submitted += 1
        if self.tracer.enabled:
            self.tracer.emit(ProcessSubmitted(pid=pid))
        self._pending_init[pid] = self.engine.schedule(
            at, lambda: self._initiate(pid, program)
        )
        return pid

    def submit_recovered(
        self, pid: int, program: ProcessProgram, at: float = 0.0
    ) -> int:
        """Re-schedule a journaled submission under its original pid.

        Restart recovery (:mod:`repro.storage.plane`) uses this for
        submissions that were durably acknowledged but never reached a
        terminal state: the process runs again from scratch, keeping
        its pid so clients polling by pid see it complete.  The
        existing :class:`ProcessRecord` (from the crash image) is kept
        when present.
        """
        if pid in self._pending_init or pid in self._processes:
            raise SchedulerError(
                f"cannot re-submit live process {pid}"
            )
        if pid not in self.records:
            self.records[pid] = ProcessRecord(pid=pid, submitted_at=at)
        self.stats.submitted += 1
        if self.tracer.enabled:
            self.tracer.emit(ProcessSubmitted(pid=pid))
        self._pending_init[pid] = self.engine.schedule(
            at, lambda: self._initiate(pid, program)
        )
        return pid

    def _initiate(self, pid: int, program: ProcessProgram) -> None:
        self._pending_init.pop(pid, None)
        if self.resilience is not None:
            # Admission gate: shed *before* a timestamp is drawn or any
            # lock is requested — a deferred process holds nothing and
            # blocks nobody, so guaranteed termination is untouched.
            delay = self.resilience.admission_delay(pid, program)
            if delay is not None:
                self.stats.admissions_deferred += 1
                self._pending_init[pid] = self.engine.schedule(
                    delay, lambda: self._initiate(pid, program)
                )
                return
            # Shard-queue backpressure: a program needing a saturated
            # shard is paused at the door.  Off (``None``) unless the
            # layer configures ``shard_queue_cap``.
            delay = self._backpressure_delay(pid, program)
            if delay is not None:
                self.stats.add("admissions_backpressured")
                self._pending_init[pid] = self.engine.schedule(
                    delay, lambda: self._initiate(pid, program)
                )
                return
        timestamp = self.protocol.new_timestamp()
        process = Process(pid=pid, program=program, timestamp=timestamp)
        self._processes[pid] = process
        self.protocol.attach(process)
        if self.tracer.enabled:
            self.tracer.emit(
                ProcessInitiated(pid=pid, timestamp=timestamp)
            )
        self._step(process)
        self._post_event()

    def run(self, require_quiescence: bool = True) -> RunResult:
        """Run the simulation to completion and package the results.

        Raises
        ------
        SchedulerError
            If processes remain unterminated after the event queue drains
            (``require_quiescence``) — a liveness failure.
        """
        try:
            self.engine.run(max_events=self.config.max_events)
        finally:
            self.close()
        self.stats.note_inflight(self.engine.now, 0)
        if require_quiescence and self._processes:
            leftovers = {
                pid: proc.state.value
                for pid, proc in self._processes.items()
            }
            raise SchedulerError(
                f"simulation drained with live processes: {leftovers}; "
                f"parked={[str(p) for p in self._parked.values()]}"
            )
        return RunResult(
            records=self.records,
            stats=self.stats,
            protocol_stats=self.protocol.stats,
            trace=self.trace,
            makespan=self.engine.now,
        )

    def adopt_recovered(self, process: Process) -> None:
        """Take over a process restored from a crash journal.

        Completing and running processes resume forward execution;
        aborting processes finish their abort-process execution;
        completing processes interrupted mid-alternative-abort finish
        compensating and move to the next branch.  See
        :mod:`repro.scheduler.recovery`.
        """
        pid = process.pid
        self._processes[pid] = process
        self.protocol.attach(process)
        if pid not in self.records:
            self.records[pid] = ProcessRecord(
                pid=pid, submitted_at=self.engine.now
            )
        self.stats.submitted += 1

        def resume() -> None:
            if (
                self._processes.get(pid) is not process
                or pid in self._comp_runs
            ):
                # Adopted processes resume via same-time callbacks, and
                # an earlier one can cascade-abort this process before
                # its own callback fires — that abort path owns the
                # process (and its compensation run) now, so the
                # recovery resume must stand down.
                return
            if process.state is ProcessState.ABORTING:
                self._start_compensation_run(
                    process,
                    process.resume_abort_plan(),
                    label="protocol-abort:recovery",
                    on_done=lambda: self._finalize_abort(
                        process, resubmit=False
                    ),
                )
            elif (
                process.state is ProcessState.COMPLETING
                and process.unwinding
            ):
                self.stats.subprocess_aborts += 1
                self._start_compensation_run(
                    process,
                    process.resume_subprocess_plan(),
                    label="subprocess-abort",
                    on_done=lambda: self._after_subprocess_abort(
                        process
                    ),
                )
            else:
                self._step(process)
            self._post_event()

        self.engine.schedule(0.0, resume)

    def cancel(self, pid: int) -> bool:
        """Cancel a submitted process on a client's explicit request.

        Two shapes, mirroring how far the process got:

        * **not yet initiated** (its initiation callback is still
          scheduled, possibly re-scheduled by admission deferrals) —
          the callback is dropped; the process never drew a timestamp,
          holds nothing, and has nothing to compensate;
        * **running** — aborted through the regular protocol-abort
          machinery (compensations run, locks release, waiters wake)
          but *without* the cascade path's resubmission.

        Completing and aborting processes are past the point of client
        cancellation, exactly like protocol-induced aborts; ``False``
        is returned and the process finishes on its own.
        """
        handle = self._pending_init.pop(pid, None)
        if handle is not None:
            SimulationEngine.cancel(handle)
            if self.resilience is not None:
                discard = getattr(
                    self.resilience, "discard_pending", None
                )
                if discard is not None:
                    discard(pid)
            self.stats.add("cancellations")
            if self.tracer.enabled:
                self.tracer.emit(
                    ProcessCancelled(pid=pid, initiated=False)
                )
            return True
        process = self._processes.get(pid)
        if process is None or process.state is not ProcessState.RUNNING:
            return False
        if self.tracer.enabled:
            self.tracer.emit(ProcessCancelled(pid=pid, initiated=True))
            self.tracer.emit(
                AbortBegun(
                    pid=pid,
                    incarnation=process.incarnation,
                    cause="cancel",
                )
            )
        self._cancel_all_work(process)
        plan = process.plan_protocol_abort()
        if self.config.incremental_deadlock:
            self._note_abort_started(pid)
        self.stats.add("cancellations")
        self._start_compensation_run(
            process,
            plan,
            label="protocol-abort:cancel",
            on_done=lambda: self._finalize_abort(
                process, resubmit=False
            ),
        )
        return True

    def close(self) -> None:
        """Release execution resources (shard workers, when any).

        A no-op for the sequential manager; the parallel manager shuts
        its :class:`~repro.parallel.ShardExecutor` down here.  Called
        automatically when :meth:`run` drains, and by the fault injector
        when it abandons a crashed incarnation.
        """

    # ------------------------------------------------------------------
    # backpressure (engaged only via the resilience layer's queue caps)
    # ------------------------------------------------------------------
    def _backpressure_delay(self, pid: int, program) -> float | None:
        """``None`` to admit now, else the backpressure defer delay.

        Delegates to the resilience layer's ``backpressure_delay`` hook
        when the attached layer has one; the default layer ships with
        the cap off (``shard_queue_cap=None``), so existing runs are
        untouched byte for byte.
        """
        hook = getattr(self.resilience, "backpressure_delay", None)
        if hook is None:
            return None
        return hook(pid, program, self._shard_queue_depth)

    def _shard_queue_depth(self, subsystem: str) -> int:
        """Live work queued on one shard: in-flight activities plus
        parked non-commit requests on the subsystem's types."""
        return self._shard_depth_counts.get(subsystem, 0)

    def _note_shard_depth(self, activity, delta: int) -> None:
        """Bump the incremental depth counter for ``activity``'s shard.

        Called at every ``_inflight``/``_parked`` mutation site; parked
        COMMIT requests carry no activity and never count.
        """
        if activity is None:
            return
        counts = self._shard_depth_counts
        shard = activity.activity_type.subsystem
        counts[shard] = counts.get(shard, 0) + delta

    def _shard_depths(self) -> dict[str, int]:
        """All shard queue depths (incremental; O(live shards))."""
        return {
            shard: depth
            for shard, depth in self._shard_depth_counts.items()
            if depth
        }

    # ------------------------------------------------------------------
    # forward progress
    # ------------------------------------------------------------------
    def _step(self, process: Process) -> None:
        """Launch ready activities / attempt commit for ``process``."""
        if process.state.is_terminal:
            return
        # Re-read the ready set on every iteration: a lock request can
        # trigger a cascade that loops back and aborts this very process.
        while True:
            ready = process.ready_activities()
            if not ready:
                break
            activity = process.launch(ready[0])
            mode = self.protocol.classify_regular(process, activity)
            self._request_regular(process, activity, mode)
        if process.finished and not self._has_parked_commit(process):
            self._request_commit(process)

    def _request_regular(
        self, process: Process, activity: Activity, mode: LockMode
    ) -> None:
        decision = self.protocol.request_activity_lock(
            process, activity, mode
        )
        self._apply_decision(
            decision,
            ParkedRequest(
                kind=RequestKind.REGULAR,
                process=process,
                activity=activity,
                mode=mode,
                parked_at=self.engine.now,
            ),
        )

    def _request_commit(self, process: Process) -> None:
        decision = self.protocol.try_commit(process)
        self._apply_decision(
            decision,
            ParkedRequest(
                kind=RequestKind.COMMIT,
                process=process,
                parked_at=self.engine.now,
            ),
        )

    def _apply_decision(
        self, decision: Decision, request: ParkedRequest
    ) -> None:
        process = request.process
        if self.tracer.enabled:
            self._trace_decision(decision, request)
        if isinstance(decision, Grant):
            self._on_granted(request, decision)
        elif isinstance(decision, Defer):
            request.wait_for = decision.wait_for
            request.reason = decision.reason
            self._park(request)
            self._resolve_wait_cycles()
        elif isinstance(decision, AbortVictims):
            # Park the request until the victims' aborts complete, then
            # retry; protocol state already counted the cascade.
            request.wait_for = decision.victims
            request.reason = "awaiting-cascade"
            self._park(request)
            for victim_pid in decision.victims:
                self._begin_protocol_abort(victim_pid)
            self._resolve_wait_cycles()
        elif isinstance(decision, SelfAbort):
            if process.state is not ProcessState.RUNNING:
                raise ProtocolError(
                    f"P{process.pid}: SelfAbort issued to a "
                    f"{process.state.value} process"
                )
            if request.kind is RequestKind.REGULAR:
                process.abandon(request.activity)
            self._begin_protocol_abort(process.pid, cause="self")
        else:  # pragma: no cover - defensive
            raise SchedulerError(f"unknown decision {decision!r}")

    def _on_granted(
        self, request: ParkedRequest, decision: Grant
    ) -> None:
        process = request.process
        if request.kind is RequestKind.COMMIT:
            self._finalize_commit(process)
            return
        activity = request.activity
        assert activity is not None
        entry = decision.locks[0] if decision.locks else None
        flight = InflightActivity(
            process=process,
            activity=activity,
            kind=request.kind,
            started_at=self.engine.now,
            entry=entry,
        )
        if entry is not None:
            plane = self.protocol.conflicts.compiled()
            flight.type_bit = 1 << plane.id_of(activity.name)
        self._inflight[activity.uid] = flight
        self._note_shard_depth(activity, +1)
        self._gate_flight(flight)
        if not flight.gate:
            self._start_flight(flight)

    def _gate_flight(self, flight: InflightActivity) -> None:
        """Order conflicting executions by lock position.

        The subsystems serialize conflicting transactions; the manager
        models this by gating an activity's execution behind every
        granted-but-uncommitted conflicting activity with a smaller lock
        position.  Without the gate, two overlapping conflicting
        activities could commit against the sharing order and break
        reducibility.
        """
        if flight.entry is None:
            return
        if not self.config.gate_conflicting_executions:
            return
        inflight = self._inflight
        if len(inflight) <= 1:
            return
        plane = self.protocol.conflicts.compiled()
        conflict_mask = plane.masks[plane.id_of(flight.activity.name)]
        if not conflict_mask:
            return
        # One AND per inflight pair: a zero ``type_bit`` (no lock entry)
        # can't intersect, and the flight itself fails the strict
        # position test, so neither needs its own guard.
        position = flight.entry.position
        flight_uid = flight.activity.uid
        gate_add = flight.gate.add
        dependents = self._dependents
        for other in inflight.values():
            if (
                conflict_mask & other.type_bit
                and other.entry.position < position
                and not other.cancelled
            ):
                other_uid = other.activity.uid
                gate_add(other_uid)
                waiters = dependents.get(other_uid)
                if waiters is None:
                    dependents[other_uid] = {flight_uid}
                else:
                    waiters.add(flight_uid)

    def _start_flight(self, flight: InflightActivity) -> None:
        flight.started = True
        self.stats.note_inflight(self.engine.now, +1)
        if self.tracer.enabled:
            self.tracer.emit(
                ActivityStarted(
                    pid=flight.process.pid,
                    incarnation=flight.process.incarnation,
                    activity=flight.activity.name,
                    uid=flight.activity.uid,
                    compensation=(
                        flight.kind is RequestKind.COMPENSATION
                    ),
                    worker=self._worker_for_type(
                        flight.activity.activity_type.name
                    ),
                )
            )
        duration = flight.activity.activity_type.cost
        if self.injector is not None:
            extra = self.injector.latency_for(
                flight.process, flight.activity
            )
            duration += extra
            if self.resilience is not None and extra > 0:
                self.resilience.on_latency(
                    flight.activity.activity_type.subsystem, extra
                )
        if flight.kind is RequestKind.REGULAR:
            self.engine.schedule(
                duration, lambda: self._complete_regular(flight)
            )
        else:
            self.engine.schedule(
                duration, lambda: self._complete_compensation(flight)
            )

    def _release_dependents(self, flight: InflightActivity) -> None:
        for dep_uid in self._dependents.pop(flight.activity.uid, set()):
            dependent = self._inflight.get(dep_uid)
            if dependent is None or dependent.cancelled:
                continue
            dependent.gate.discard(flight.activity.uid)
            if not dependent.gate and not dependent.started:
                self._start_flight(dependent)

    # ------------------------------------------------------------------
    # activity completion
    # ------------------------------------------------------------------
    def _complete_regular(self, flight: InflightActivity) -> None:
        if flight.cancelled:
            return
        process = flight.process
        activity = flight.activity
        activity_type = activity.activity_type
        if activity_type.retriable and self._wants_transient_retry(
            flight
        ):
            # Retriable activities may fail transiently; they are simply
            # retried until they succeed (their lock is already held and
            # the flight stays in place, so gated successors keep
            # waiting).
            flight.attempts += 1
            self.stats.retries += 1
            self.records[process.pid].retries += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    ActivityRetried(
                        pid=process.pid,
                        activity=activity.name,
                        uid=activity.uid,
                        attempt=flight.attempts,
                    )
                )
            self.engine.schedule(
                self._retry_delay(flight) + activity_type.cost,
                lambda: self._complete_regular(flight),
            )
            return
        if self._inflight.pop(activity.uid, None) is not None:
            self._note_shard_depth(activity, -1)
        self.stats.note_inflight(self.engine.now, -1)
        self._release_dependents(flight)
        failed = not activity_type.retriable and self._samples_failure(
            process, activity
        )
        if self.resilience is not None:
            self.resilience.on_activity_outcome(
                activity_type.subsystem, failed
            )
        if self.tracer.enabled:
            event_cls = ActivityFailed if failed else ActivityCommitted
            self.tracer.emit(
                event_cls(
                    pid=process.pid,
                    incarnation=process.incarnation,
                    activity=activity.name,
                    uid=activity.uid,
                )
            )
        if failed:
            self._on_activity_failed(process, activity)
        else:
            self._on_activity_committed(process, activity)
        self._post_event()

    def _wants_transient_retry(self, flight: InflightActivity) -> bool:
        """Whether a retriable completion turns into another attempt.

        An attached fault injector overrides the manager's own
        ``transient_retry_prob`` sampling (returning ``None`` to fall
        through to it); a configured retry policy bounds the attempt
        budget — once exhausted, the attempt succeeds, preserving
        guaranteed termination.
        """
        verdict = None
        if self.injector is not None:
            verdict = self.injector.wants_retry(
                flight.process, flight.activity, flight.attempts
            )
        if verdict is None:
            verdict = (
                self.config.transient_retry_prob > 0
                and self.rng.random() < self.config.transient_retry_prob
            )
        policy = self.config.retry_policy
        if (
            verdict
            and policy is not None
            and flight.attempts >= policy.max_attempts
        ):
            # The budget forces a failing retriable to count as
            # successful (guaranteed termination); surface the decision
            # instead of swallowing it silently.
            activity = flight.activity
            if self.tracer.enabled:
                self.tracer.emit(
                    RetryBudgetExhausted(
                        pid=flight.process.pid,
                        activity=activity.name,
                        uid=activity.uid,
                        attempts=flight.attempts,
                        subsystem=activity.activity_type.subsystem,
                    )
                )
            counters = getattr(self.injector, "counters", None)
            if counters is not None:
                counters.retry_budget_exhausted += 1
            if self.resilience is not None:
                self.resilience.on_retry_exhausted(
                    activity.activity_type.subsystem
                )
            return False
        return verdict

    def _retry_delay(self, flight: InflightActivity) -> float:
        """Backoff before the next attempt; charges Wcc under a policy."""
        policy = self.config.retry_policy
        if policy is None:
            return self.config.retry_delay
        flight.process.charge_wcc(
            retry_wcc_charge(
                flight.process.registry, flight.activity.name
            )
        )
        return policy.delay_for(flight.attempts - 1)

    def _samples_failure(
        self, process: Process, activity: Activity
    ) -> bool:
        """Whether a completed non-retriable activity fails.

        An attached fault injector may decide deterministically (honoring
        the type's ``p(a)`` via its own seeded streams); otherwise the
        manager samples ``p(a)`` from its run RNG as always.
        """
        if self.injector is not None:
            verdict = self.injector.should_fail(process, activity)
            if verdict is not None:
                return verdict
        return (
            self.rng.random()
            < activity.activity_type.failure_probability
        )

    def _on_activity_committed(
        self, process: Process, activity: Activity
    ) -> None:
        self._run_subsystem_program(process, activity)
        process.on_committed(activity)
        self.trace.record_activity(process, activity)
        self.records[process.pid].activities_committed += 1
        stashed = self._stashed_failures.get(process.pid)
        if stashed is not None and process.outstanding == 1:
            del self._stashed_failures[process.pid]
            self._resolve_failure(process, stashed)
            return
        if stashed is None:
            self._step(process)

    def _on_activity_failed(
        self, process: Process, activity: Activity
    ) -> None:
        stashed = self._stashed_failures.get(process.pid)
        if stashed is not None:
            # A sibling of an already-stashed failure failed as well; the
            # node is doomed either way, so this activity is simply
            # abandoned and the drain condition re-checked.
            process.abandon(activity)
            if process.outstanding == 1:
                del self._stashed_failures[process.pid]
                self._resolve_failure(process, stashed)
            return
        if process.outstanding > 1:
            # Parallel siblings still in flight: drain them first, then
            # resolve the failure.  Parked sibling requests are abandoned
            # right away — the node can never complete.
            self._cancel_parked_of(process, kinds=(RequestKind.REGULAR,))
            if process.outstanding > 1:
                self._stashed_failures[process.pid] = activity
                return
        self._resolve_failure(process, activity)

    def _resolve_failure(
        self, process: Process, activity: Activity
    ) -> None:
        plan = process.on_failed(activity)
        if plan.resolution is Resolution.RETRY:  # pragma: no cover
            raise SchedulerError(
                "retriable failures are handled inline; on_failed must "
                "not return RETRY here"
            )
        if plan.resolution is Resolution.ABORT_SUBPROCESS:
            self.stats.subprocess_aborts += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    AbortBegun(
                        pid=process.pid,
                        incarnation=process.incarnation,
                        cause="subprocess",
                    )
                )
            self._start_compensation_run(
                process,
                plan,
                label="subprocess-abort",
                on_done=lambda: self._after_subprocess_abort(process),
            )
        else:
            self.stats.intrinsic_aborts += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    AbortBegun(
                        pid=process.pid,
                        incarnation=process.incarnation,
                        cause="intrinsic",
                    )
                )
            self._start_compensation_run(
                process,
                plan,
                label="intrinsic-abort",
                on_done=lambda: self._finalize_abort(
                    process, resubmit=False
                ),
            )

    def _after_subprocess_abort(self, process: Process) -> None:
        process.start_next_branch()
        self._step(process)

    # ------------------------------------------------------------------
    # compensation runs
    # ------------------------------------------------------------------
    def _start_compensation_run(
        self, process: Process, plan: FailurePlan, label: str, on_done
    ) -> None:
        if process.pid in self._comp_runs:
            raise SchedulerError(
                f"P{process.pid}: overlapping compensation runs"
            )
        run = CompensationRun(
            process=process,
            queue=list(plan.compensations),
            on_done=on_done,
            label=label,
        )
        self._comp_runs[process.pid] = run
        self._advance_compensation(run)

    def _advance_compensation(self, run: CompensationRun) -> None:
        process = run.process
        if not run.queue:
            del self._comp_runs[process.pid]
            run.on_done()
            return
        entry = run.queue[0]
        activity = process.make_compensation(entry)
        decision = self.protocol.request_compensation_lock(
            process, activity
        )
        self._apply_decision(
            decision,
            ParkedRequest(
                kind=RequestKind.COMPENSATION,
                process=process,
                activity=activity,
                parked_at=self.engine.now,
            ),
        )

    def _complete_compensation(self, flight: InflightActivity) -> None:
        if flight.cancelled:  # pragma: no cover - compensations never
            return            # belong to abortable processes
        process = flight.process
        activity = flight.activity
        if self._inflight.pop(activity.uid, None) is not None:
            self._note_shard_depth(activity, -1)
        self.stats.note_inflight(self.engine.now, -1)
        self._release_dependents(flight)
        run = self._comp_runs.get(process.pid)
        if run is None or not run.queue:
            raise SchedulerError(
                f"P{process.pid}: stray compensation {activity}"
            )
        entry = run.queue.pop(0)
        if self.tracer.enabled:
            self.tracer.emit(
                ActivityCommitted(
                    pid=process.pid,
                    incarnation=process.incarnation,
                    activity=activity.name,
                    uid=activity.uid,
                    compensation=True,
                )
            )
        self._run_subsystem_program(process, activity)
        process.on_compensated(entry, activity)
        self.trace.record_activity(process, activity)
        undone_cost = entry.activity.activity_type.cost
        self.stats.compensations += 1
        self.stats.compensated_cost += undone_cost
        if run.label.startswith("protocol-abort"):
            self.stats.compensated_cost_protocol += undone_cost
        elif run.label == "intrinsic-abort":
            self.stats.compensated_cost_intrinsic += undone_cost
        else:
            self.stats.compensated_cost_subprocess += undone_cost
        record = self.records[process.pid]
        record.compensations += 1
        record.compensated_cost += undone_cost
        record.compensated_names.append(entry.activity.name)
        record.compensated_causes.append(run.label)
        self._advance_compensation(run)
        self._post_event()

    # ------------------------------------------------------------------
    # aborts (protocol-induced)
    # ------------------------------------------------------------------
    def _begin_protocol_abort(
        self, pid: int, cause: str = "cascade"
    ) -> None:
        """Abort a running process on the protocol's behalf.

        ``cause`` distinguishes the paper's cascading aborts (Comp-,
        Piv-, and C⁻¹-Rule victims), deadlock-cycle resolution (reachable
        under the cost-based extension and the baselines only), and
        baseline self-aborts; compensation records carry it so the
        experiments can attribute undone work to its channel.
        """
        process = self._processes.get(pid)
        if process is None or process.state is not ProcessState.RUNNING:
            return  # already terminating (or terminated)
        if self.tracer.enabled:
            self.tracer.emit(
                AbortBegun(
                    pid=pid,
                    incarnation=process.incarnation,
                    cause=cause,
                )
            )
        self._cancel_all_work(process)
        plan = process.plan_protocol_abort()
        if self.config.incremental_deadlock:
            self._note_abort_started(pid)
        self.stats.protocol_aborts += 1
        self.records[pid].cascade_aborts += 1
        self._start_compensation_run(
            process,
            plan,
            label=f"protocol-abort:{cause}",
            on_done=lambda: self._finalize_abort(process, resubmit=True),
        )

    def _cancel_all_work(self, process: Process) -> None:
        """Cancel in-flight activities and parked requests of a victim."""
        self._cancel_parked_of(
            process,
            kinds=(
                RequestKind.REGULAR,
                RequestKind.COMMIT,
            ),
        )
        stashed = self._stashed_failures.pop(process.pid, None)
        if stashed is not None:
            # The stashed activity already completed (failed) and was
            # still counted as outstanding pending sibling drain.
            process.abandon(stashed)
        for flight in self._flights_of(process.pid):
            flight.cancelled = True
            del self._inflight[flight.activity.uid]
            self._note_shard_depth(flight.activity, -1)
            if self.tracer.enabled:
                self.tracer.emit(
                    ActivityCancelled(
                        pid=process.pid,
                        incarnation=process.incarnation,
                        activity=flight.activity.name,
                        uid=flight.activity.uid,
                    )
                )
            if flight.started:
                self.stats.note_inflight(self.engine.now, -1)
            self._release_dependents(flight)
            process.abandon(flight.activity)

    def _flights_of(self, pid: int) -> list[InflightActivity]:
        """In-flight activities of one process, in launch order.

        The parallel manager overrides this with an O(answer) read from
        its per-pid in-flight index; both produce the same list in the
        same order (per-pid insertion order equals global insertion
        order restricted to the pid).
        """
        return [
            flight
            for flight in list(self._inflight.values())
            if flight.process.pid == pid
        ]

    def _cancel_parked_of(
        self, process: Process, kinds: tuple[RequestKind, ...]
    ) -> None:
        doomed = [
            request
            for request in self._parked.values()
            if (
                request.process.pid == process.pid
                and request.kind in kinds
            )
        ]
        for request in doomed:
            self._unpark(request)
            if request.kind is RequestKind.REGULAR:
                process.abandon(request.activity)

    def _finalize_abort(self, process: Process, resubmit: bool) -> None:
        process.finish_abort()
        self.trace.record_abort(process)
        self.protocol.detach(process)
        del self._processes[process.pid]
        if self.config.incremental_deadlock:
            self._drop_cascade_edges_to(process.pid)
        self.protocol.stats.aborts += 1
        if self.tracer.enabled:
            self.tracer.emit(
                ProcessAborted(
                    pid=process.pid,
                    incarnation=process.incarnation,
                    resubmit=resubmit,
                )
            )
        if resubmit:
            record = self.records[process.pid]
            record.resubmissions += 1
            self.stats.resubmissions += 1
            if record.resubmissions > self.config.max_resubmissions:
                raise StarvationError(
                    f"P{process.pid} exceeded "
                    f"{self.config.max_resubmissions} resubmissions"
                )
            successor = process.resubmit()
            self.engine.schedule(
                self.config.resubmit_delay,
                lambda: self._resubmit(successor),
            )
        self._retry_parked(process.pid)

    def _resubmit(self, process: Process) -> None:
        self._processes[process.pid] = process
        self.protocol.attach(process)
        if self.tracer.enabled:
            self.tracer.emit(
                ProcessResubmitted(
                    pid=process.pid,
                    incarnation=process.incarnation,
                    timestamp=process.timestamp,
                )
            )
        self._step(process)
        self._post_event()

    # ------------------------------------------------------------------
    # commits
    # ------------------------------------------------------------------
    def _finalize_commit(self, process: Process) -> None:
        process.finish_commit()
        self.trace.record_commit(process)
        self.protocol.detach(process)
        del self._processes[process.pid]
        if self.config.incremental_deadlock:
            self._drop_cascade_edges_to(process.pid)
        self.stats.committed += 1
        self.records[process.pid].committed_at = self.engine.now
        if self.tracer.enabled:
            self.tracer.emit(
                ProcessCommitted(
                    pid=process.pid,
                    incarnation=process.incarnation,
                )
            )
        self._retry_parked(process.pid)

    # ------------------------------------------------------------------
    # parked-request machinery
    # ------------------------------------------------------------------
    def _park(self, request: ParkedRequest) -> None:
        """Store a deferred request and index its wait set.

        Every (re-)park draws a fresh sequence number, so the parked
        store stays ordered by park time exactly like the historical
        append-to-a-list representation.
        """
        request.seq = next(self._park_seq)
        self._parked[request.seq] = request
        self._note_shard_depth(request.activity, +1)
        for pid in request.wait_for:
            self._wait_index.setdefault(pid, set()).add(request.seq)
        if request.kind is RequestKind.COMMIT:
            self._parked_commit_pids.add(request.process.pid)
        if self.config.incremental_deadlock:
            waiter = request.process.pid
            if request.reason == "awaiting-cascade":
                # Mirror _wait_edges: a victim only becomes an edge once
                # its abort is genuinely under way.  Still-running
                # victims are added by _begin_protocol_abort right after
                # this park.
                contributed = {
                    pid
                    for pid in request.wait_for
                    if (proc := self._processes.get(pid)) is not None
                    and proc.state is ProcessState.ABORTING
                }
            else:
                contributed = set(request.wait_for)
            request.waitfor_edges = contributed
            for pid in contributed:
                self._waitfor.add_edge(waiter, pid)
        if self.tracer.enabled:
            self.tracer.emit(self._wait_edge_event("insert", request))

    def _unpark(self, request: ParkedRequest) -> None:
        """Remove a parked request and unregister its wait-index entries."""
        del self._parked[request.seq]
        self._note_shard_depth(request.activity, -1)
        for pid in request.wait_for:
            bucket = self._wait_index.get(pid)
            if bucket is not None:
                bucket.discard(request.seq)
                if not bucket:
                    del self._wait_index[pid]
        if request.kind is RequestKind.COMMIT:
            self._parked_commit_pids.discard(request.process.pid)
        if request.waitfor_edges:
            waiter = request.process.pid
            for pid in request.waitfor_edges:
                self._waitfor.remove_edge(waiter, pid)
            request.waitfor_edges = set()
        if self.tracer.enabled:
            self.tracer.emit(self._wait_edge_event("delete", request))

    def _retry_parked(self, dead_pid: int) -> None:
        """Wake the requests that waited on a terminated process.

        The wait index maps each pid to the parked requests waiting on
        it, so a termination wakes exactly its dependents instead of
        re-polling the whole parked list to a fixpoint.  Woken requests
        are drained in park order through a shared min-heap; retries can
        terminate further processes, whose reentrant calls push into the
        same heap — the innermost drain therefore always retries the
        oldest eligible request first, which reproduces the historical
        scan-in-park-order fixpoint exactly.
        """
        bucket = self._wait_index.pop(dead_pid, None)
        if bucket:
            for seq in bucket:
                heapq.heappush(self._wake_pending, seq)
        while self._wake_pending:
            seq = heapq.heappop(self._wake_pending)
            request = self._parked.get(seq)
            if request is None:
                continue  # cancelled or already retried reentrantly
            if all(
                pid in self._processes for pid in request.wait_for
            ):
                continue  # re-parked; everything it waits on is live
            self._unpark(request)
            process = request.process
            if process.state.is_terminal:
                continue
            if request.kind is RequestKind.REGULAR:
                decision = self.protocol.request_activity_lock(
                    process, request.activity, request.mode
                )
            elif request.kind is RequestKind.COMPENSATION:
                decision = self.protocol.request_compensation_lock(
                    process, request.activity
                )
            else:
                decision = self.protocol.try_commit(process)
            self._apply_decision(decision, request)

    def _has_parked_commit(self, process: Process) -> bool:
        return process.pid in self._parked_commit_pids

    # ------------------------------------------------------------------
    # deadlock resolution (cost-based extension only)
    # ------------------------------------------------------------------
    def _wait_edges(self) -> dict[int, set[int]]:
        """The waits-for relation of the currently parked requests."""
        edges: dict[int, set[int]] = {}
        for request in self._parked.values():
            blockers = request.wait_for
            if request.reason == "awaiting-cascade":
                # A victim that is still running has its abort initiation
                # pending in the current callback; only victims whose
                # aborts are genuinely under way (and possibly stuck) are
                # wait-graph edges.
                blockers = frozenset(
                    pid
                    for pid in blockers
                    if (proc := self._processes.get(pid)) is not None
                    and proc.state is ProcessState.ABORTING
                )
            edges.setdefault(request.process.pid, set()).update(blockers)
        return edges

    @staticmethod
    def _find_wait_cycle(
        edges: dict[int, set[int]]
    ) -> list[int] | None:
        """One wait cycle in ``edges``, or ``None``.

        The cheap :func:`~repro.core.deadlock.has_cycle` walk answers the
        common acyclic case without materializing a
        :class:`WaitForGraph`; when a cycle exists, the graph is built
        exactly as before and the original search picks the same cycle.
        """
        if not has_cycle(edges):
            return None
        graph = WaitForGraph()
        for waiter, blockers in edges.items():
            graph.set_waits(waiter, frozenset(blockers))
        return graph.find_cycle()

    def _note_abort_started(self, pid: int) -> None:
        """Materialize awaiting-cascade edges once ``pid`` is aborting.

        Mirrors :meth:`_wait_edges`' dynamic filter incrementally: a
        cascade victim becomes a wait-graph edge exactly when its abort
        begins.  The wait index names the parked requests waiting on
        ``pid``, so only those are touched.
        """
        for seq in self._wait_index.get(pid, ()):
            request = self._parked[seq]
            if (
                request.reason == "awaiting-cascade"
                and pid in request.wait_for
                and pid not in request.waitfor_edges
            ):
                request.waitfor_edges.add(pid)
                self._waitfor.add_edge(request.process.pid, pid)

    def _drop_cascade_edges_to(self, dead_pid: int) -> None:
        """Withdraw awaiting-cascade edges to a terminated process.

        Runs at termination time, *before* the wake-up drain: requests
        woken by the termination may be retried (and re-parked) one at a
        time, and reentrant cycle checks in between must not see edges
        to the dead pid — especially since cascade victims resubmit
        under the same pid, so a stale edge could later close a bogus
        cycle against the new incarnation.
        """
        bucket = self._wait_index.get(dead_pid)
        if not bucket:
            return
        for seq in bucket:
            request = self._parked[seq]
            if (
                request.reason == "awaiting-cascade"
                and dead_pid in request.waitfor_edges
            ):
                request.waitfor_edges.discard(dead_pid)
                self._waitfor.remove_edge(request.process.pid, dead_pid)

    def _audit_waitfor(self) -> None:
        """Assert the incremental graph mirrors the rebuilt relation."""
        expected: dict[int, set[int]] = {}
        for waiter, blockers in self._wait_edges().items():
            cleaned = {pid for pid in blockers if pid != waiter}
            if cleaned:
                expected[waiter] = cleaned
        actual = {
            node: succs
            for node, succs in self._waitfor.adjacency().items()
            if succs
        }
        if actual != expected:
            raise ProtocolError(
                f"incremental wait-for graph diverged: "
                f"incremental={actual} rebuilt={expected}"
            )
        if self._waitfor.acyclic() == has_cycle(expected):
            raise ProtocolError(
                "incremental acyclicity disagrees with the DFS oracle"
            )

    def _resolve_wait_cycles(self) -> None:
        """Break wait-for cycles among genuinely blocked requests.

        The common acyclic case is answered by the incrementally
        maintained reachability structure in O(1) amortized — without
        re-walking the parked set.  Only when a cycle exists is the
        waits-for relation rebuilt from the parked requests (the source
        of truth) so the original search picks the exact same cycle.
        Under the basic process-locking protocol no cycle can form
        (timestamp discipline); with pseudo pivots or the baseline
        protocols, the youngest running process on the cycle is
        sacrificed; cycles without a running member are escalated to the
        forced-progress path (pure OSL's unresolvable violations).
        """
        if self.config.incremental_deadlock:
            if self.config.audit and (
                self.config.audit_every == 1
                or self._audit_tick % self.config.audit_every == 0
            ):
                # The cross-check rebuilds the full relation, so a
                # sampling auditor (audit_every > 1) thins it to the
                # same cadence as the structural audits — otherwise an
                # audited run would re-pay the cost the incremental
                # structure exists to avoid.
                self._audit_waitfor()
            if self._waitfor.acyclic():
                return
        cycle = self._find_wait_cycle(self._wait_edges())
        if cycle is None:
            return
        self._act_on_wait_cycle(cycle)

    def _act_on_wait_cycle(self, cycle: list[int]) -> None:
        """Abort the cycle's victim (or force progress when unabortable)."""
        table = getattr(self.protocol, "table", None)
        protected = (
            table.p_lock_holders()
            if table is not None
            and self.config.prefer_unprotected_victims
            else set()
        )
        try:
            victim = choose_cycle_victim(
                cycle,
                timestamps=self.protocol.timestamps(),
                running=self.protocol.running_pids(),
                protected=protected,
            )
        except ProtocolError:
            if not getattr(
                self.protocol, "forced_commit_on_unresolvable", False
            ):
                raise
            self._force_progress_in_cycle(cycle)
            return
        self.stats.deadlock_victims += 1
        if self.tracer.enabled:
            self.tracer.emit(
                DeadlockVictim(pid=victim, cycle=tuple(cycle))
            )
        self._begin_protocol_abort(victim, cause="deadlock")

    def _force_progress_in_cycle(self, cycle: list[int]) -> None:
        """Break an unresolvable cycle without a running member.

        Only reachable under the pure-OSL baseline, whose arrival-order
        sharing can deadlock completing processes against each other and
        aborting processes among themselves.  Preference order: force a
        parked commit through (a completing process escapes the cycle),
        else force a parked compensation through out of order.  Both model
        the consistency violation a real deployment would suffer and are
        counted as such.
        """
        for request in list(self._parked.values()):
            if (
                request.kind is RequestKind.COMMIT
                and request.process.pid in cycle
            ):
                self._unpark(request)
                self.stats.unresolvable_violations += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        UnresolvableForced(
                            pid=request.process.pid,
                            request=request.kind.value,
                            cycle=tuple(cycle),
                        )
                    )
                self._finalize_commit(request.process)
                return
        hooks = (
            (RequestKind.COMPENSATION, "force_grant_compensation"),
            (RequestKind.REGULAR, "force_grant_regular"),
        )
        for kind, hook_name in hooks:
            force = getattr(self.protocol, hook_name, None)
            if force is None:
                continue
            for request in list(self._parked.values()):
                if (
                    request.kind is kind
                    and request.process.pid in cycle
                ):
                    self._unpark(request)
                    self.stats.unresolvable_violations += 1
                    if self.tracer.enabled:
                        self.tracer.emit(
                            UnresolvableForced(
                                pid=request.process.pid,
                                request=request.kind.value,
                                cycle=tuple(cycle),
                            )
                        )
                    self._apply_decision(
                        force(request.process, request.activity), request
                    )
                    return
        raise ProtocolError(
            f"unresolvable wait cycle {cycle} with no forcible request"
        )

    # ------------------------------------------------------------------
    # observability (only reached when the tracer is enabled)
    # ------------------------------------------------------------------
    def _worker_for_type(self, type_name: str) -> int | None:
        """Shard worker owning ``type_name`` (``None`` when sequential).

        The parallel manager overrides this with its shard→worker
        assignment; event payloads carry the answer so exported traces
        can show per-worker tracks.
        """
        return None

    def _wait_edge_event(self, op: str, request: ParkedRequest) -> WaitEdge:
        activity = request.activity
        return WaitEdge(
            op=op,
            waiter=request.process.pid,
            blockers=tuple(sorted(request.wait_for)),
            seq=request.seq,
            request=request.kind.value,
            activity=activity.name if activity else None,
            reason=request.reason,
            shard=(
                activity.activity_type.subsystem if activity else None
            ),
            worker=(
                self._worker_for_type(activity.activity_type.name)
                if activity
                else None
            ),
        )

    def _holder_info(self, pids) -> tuple[Holder, ...]:
        """Blocking-holder snapshots (timestamp + held modes) for pids."""
        table = getattr(self.protocol, "table", None)
        holders = []
        for pid in sorted(pids):
            process = self._processes.get(pid)
            timestamp = process.timestamp if process is not None else -1
            modes = ""
            if table is not None:
                modes = "".join(
                    sorted(
                        {
                            entry.mode.value
                            for entry in table.locks_of(pid)
                        }
                    )
                )
            holders.append(
                Holder(pid=pid, timestamp=timestamp, modes=modes)
            )
        return tuple(holders)

    def _trace_decision(
        self, decision: Decision, request: ParkedRequest
    ) -> None:
        """Emit the typed event for one protocol decision."""
        process = request.process
        activity = request.activity
        common = {
            "pid": process.pid,
            "incarnation": process.incarnation,
            "request": request.kind.value,
            "activity": activity.name if activity else None,
            "uid": activity.uid if activity else None,
        }
        mode = request.mode.value if request.mode else None
        if request.kind is RequestKind.COMPENSATION:
            mode = "C"
        if isinstance(decision, Grant):
            entry = decision.locks[0] if decision.locks else None
            self.tracer.emit(
                LockGranted(
                    mode=entry.mode.value if entry else mode,
                    position=entry.position if entry else None,
                    **common,
                )
            )
        elif isinstance(decision, Defer):
            self.tracer.emit(
                LockDeferred(
                    timestamp=process.timestamp,
                    mode=mode,
                    reason=decision.reason,
                    rule=rule_for_reason(decision.reason),
                    blockers=self._holder_info(decision.wait_for),
                    **common,
                )
            )
        elif isinstance(decision, AbortVictims):
            self.tracer.emit(
                CascadeRequested(
                    timestamp=process.timestamp,
                    mode=mode,
                    victims=self._holder_info(decision.victims),
                    **common,
                )
            )
        elif isinstance(decision, SelfAbort):
            self.tracer.emit(
                SelfAbortDecision(
                    timestamp=process.timestamp,
                    reason=decision.reason,
                    rule=rule_for_reason(decision.reason),
                    pid=common["pid"],
                    incarnation=common["incarnation"],
                    request=common["request"],
                    activity=common["activity"],
                )
            )

    def _gauge_sample(self) -> dict[str, float]:
        """Current values of the virtual-time gauges (sampled on emit)."""
        table = getattr(self.protocol, "table", None)
        sample = {
            "parked": float(len(self._parked)),
            "inflight": float(self.stats._inflight),
            "live": float(len(self._processes)),
        }
        if table is not None:
            sample["locks"] = float(table.lock_count)
            shards = getattr(table, "shards", None)
            if shards:
                for shard in shards.values():
                    sample[f"locks.{shard.name}"] = float(
                        shard.lock_count
                    )
                depths = self._shard_depths()
                for name in shards:
                    sample[f"queue.{name}"] = float(
                        depths.get(name, 0)
                    )
        return sample

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _run_subsystem_program(
        self, process: Process, activity: Activity
    ) -> None:
        if self.subsystems is None:
            return
        subsystem_name = activity.activity_type.subsystem
        if subsystem_name not in self.subsystems:
            return
        subsystem = self.subsystems.get(subsystem_name)
        if activity.name in subsystem.catalog:
            subsystem.execute_activity(
                activity.name, timestamp=process.timestamp
            )

    def _post_event(self) -> None:
        if not self.config.audit:
            return
        self._audit_tick += 1
        every = self.config.audit_every
        if every > 1 and self._audit_tick % every:
            return
        shards = None
        if every > 1:
            # Sampled audits pay per-shard cost: check one shard per
            # audit, round-robin, instead of rescanning the whole table.
            table = getattr(self.protocol, "table", None)
            names = (
                table.shard_names()
                if table is not None and hasattr(table, "shard_names")
                else ()
            )
            if names:
                shards = (self._next_audit_shard(names),)
        self._run_audit(shards)

    def _next_audit_shard(self, names: tuple[str, ...]) -> str:
        """Advance the round-robin audit cursor (thread-safe)."""
        with self._audit_mutex:
            name = names[self._audit_shard_cursor % len(names)]
            self._audit_shard_cursor += 1
        return name

    def _run_audit(self, shards: tuple[str, ...] | None) -> None:
        """Execute one (possibly shard-restricted) structural audit.

        The parallel manager overrides this to dispatch single-shard
        audits to the worker owning the shard.
        """
        if shards is None:
            self.protocol.audit()
        else:
            self.protocol.audit(shards=shards)


def _attach_store(
    config: ManagerConfig, subsystems: SubsystemPool | None
) -> None:
    """Back an unattached pool with the configured durable store.

    ``config.store`` wins; otherwise, when the ``REPRO_STORE`` knob
    names a backend, a store is opened ambiently (fresh temp directory
    unless ``REPRO_STORE_PATH`` is set) — that is how the entire test
    suite runs durably under ``REPRO_STORE=sqlite``.  Pools that are
    already attached, and callers without a pool, are left alone.
    """
    if subsystems is None or getattr(subsystems, "store", None) is not None:
        return
    store = config.store
    if store is None and repro_config.store_kind() is not None:
        from repro.storage.facade import Store

        store = Store.open()
    if store is not None and hasattr(subsystems, "attach_store"):
        subsystems.attach_store(store)


def make_manager(
    protocol,
    subsystems: SubsystemPool | None = None,
    config: ManagerConfig | None = None,
    seed: int = 0,
    tracer=None,
) -> ProcessManager:
    """Build the manager the config asks for.

    ``config.workers == 0`` (the default) returns the sequential
    :class:`ProcessManager`.  ``workers ≥ 1`` returns the
    thread-per-shard :class:`~repro.parallel.ParallelProcessManager`
    when the protocol supports it — a sharded lock table plus the batch
    probe interface (:meth:`ProcessLockManager.probe_c_grants`); the
    baselines fall back to the sequential path silently, so every
    construction site can route through this factory unconditionally.
    """
    config = config or ManagerConfig()
    _attach_store(config, subsystems)
    table = getattr(protocol, "table", None)
    if (
        config.workers > 0
        and hasattr(protocol, "probe_c_grants")
        and table is not None
        and hasattr(table, "assign_workers")
    ):
        from repro.parallel.manager import ParallelProcessManager

        return ParallelProcessManager(
            protocol,
            subsystems=subsystems,
            config=config,
            seed=seed,
            tracer=tracer,
        )
    return ProcessManager(
        protocol,
        subsystems=subsystems,
        config=config,
        seed=seed,
        tracer=tracer,
    )
