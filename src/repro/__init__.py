"""Process Locking — a reproduction of Schuldt, PODS 2001.

A dynamic scheduling protocol for the correct concurrent and
fault-tolerant execution of *transactional processes*: C/P locks at
activity-type granularity with ordered sharing and timestamp-ordered
verification, plus the cost-based extension that spans the spectrum
between ACA and P-RC.

Quickstart::

    from repro import (
        ActivityRegistry, ConflictMatrix, ProgramBuilder,
        ProcessLockManager, ProcessManager,
    )

    registry = ActivityRegistry()
    registry.define_compensatable("reserve", "shop", cost=2.0,
                                  compensation_cost=1.0)
    registry.define_pivot("charge", "bank", cost=1.0)
    registry.define_retriable("ship", "shop", cost=1.0)

    conflicts = ConflictMatrix(registry)
    conflicts.declare_conflict("reserve", "reserve")
    conflicts.close_perfect()

    program = (
        ProgramBuilder("order", registry)
        .step("reserve")
        .pivot("charge")
        .alternatives(lambda b: b.step("ship"))
        .build()
    )

    protocol = ProcessLockManager(registry, conflicts)
    manager = ProcessManager(protocol)
    manager.submit(program)
    manager.submit(program)
    result = manager.run()
    assert result.stats.committed == 2
"""

from repro.activities import (
    INFINITE_COST,
    Activity,
    ActivityRegistry,
    ActivityType,
    ConflictMatrix,
    TerminationClass,
    derive_from_read_write_sets,
)
from repro.baselines import (
    CascadeAvoidingScheduler,
    PureOrderedSharedLocking,
    SerialScheduler,
    StrictTwoPhaseLocking,
)
from repro.core import (
    LockMode,
    ProcessLockManager,
    figure1_trace,
    worst_case_cost,
)
from repro.process import (
    Process,
    ProcessProgram,
    ProcessState,
    ProgramBuilder,
)
from repro.scheduler import ManagerConfig, ProcessManager, RunResult
from repro.sim import (
    Workload,
    WorkloadSpec,
    build_workload,
    compare_protocols,
    run_workload,
    schedule_of,
)
from repro.theory import (
    ProcessSchedule,
    has_correct_termination,
    is_prefix_reducible,
    is_process_recoverable,
    is_reducible,
)

__version__ = "1.0.0"

__all__ = [
    "INFINITE_COST",
    "Activity",
    "ActivityRegistry",
    "ActivityType",
    "CascadeAvoidingScheduler",
    "ConflictMatrix",
    "LockMode",
    "ManagerConfig",
    "Process",
    "ProcessLockManager",
    "ProcessManager",
    "ProcessProgram",
    "ProcessSchedule",
    "ProcessState",
    "ProgramBuilder",
    "PureOrderedSharedLocking",
    "RunResult",
    "SerialScheduler",
    "StrictTwoPhaseLocking",
    "TerminationClass",
    "Workload",
    "WorkloadSpec",
    "build_workload",
    "compare_protocols",
    "derive_from_read_write_sets",
    "figure1_trace",
    "has_correct_termination",
    "is_prefix_reducible",
    "is_process_recoverable",
    "is_reducible",
    "run_workload",
    "schedule_of",
    "worst_case_cost",
    "__version__",
]
