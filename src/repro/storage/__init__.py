"""Durable persistence for the process-locking system.

The paper assumes the bottom-layer subsystems are real transactional
systems that survive crashes; this package makes the reproduction live
up to that.  A pluggable :class:`~repro.storage.facade.Store` (append-
only CRC32-framed log, sqlite, or volatile memory — see
:mod:`repro.storage.backend`) persists the subsystem write-ahead logs,
the subsystem record stores, and the process manager's state as a
logical redo journal with periodic snapshots; the
:class:`~repro.storage.plane.PersistencePlane` replays all of it
through the existing crash-recovery machinery on restart, so a
``kill -9``'d server comes back and drives every in-flight process to
commit or compensation.

Configure with the ``REPRO_STORE*`` knobs (:mod:`repro.config`) or
``repro serve --store``; inspect with ``repro store``.
"""

from repro.storage.backend import (
    FSYNC_POLICIES,
    AppendLogBackend,
    MemoryBackend,
    SqliteBackend,
    open_backend,
)
from repro.storage.codec import ScanResult, encode_frame, scan_frames
from repro.storage.facade import FrameRepository, Store
from repro.storage.journal import JournalTracer, ProgramCodec
from repro.storage.plane import PersistencePlane, RecoveryInfo

__all__ = [
    "FSYNC_POLICIES",
    "AppendLogBackend",
    "FrameRepository",
    "JournalTracer",
    "MemoryBackend",
    "PersistencePlane",
    "ProgramCodec",
    "RecoveryInfo",
    "ScanResult",
    "SqliteBackend",
    "Store",
    "encode_frame",
    "open_backend",
    "scan_frames",
]
