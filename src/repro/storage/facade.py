"""The durable store facade: one repository per persistence concern.

:class:`Store` owns a backend (:mod:`repro.storage.backend`) and hands
out narrow repositories over it:

* :class:`MetaRepository` — the store's identity document (protocol,
  workload spec, seed, format version), written once and verified on
  every reopen so a server cannot replay a journal produced by a
  different world.
* :class:`JournalRepository` — the scheduler's logical redo journal:
  one JSON record per submission, terminal outcome, lock grant, Wcc
  classification, or retry-budget event, in emit order.
* :class:`SnapshotRepository` — a single-slot checkpoint document
  (atomic whole-namespace replace), holding the serialized crash image
  plus the journal watermark it covers.
* :class:`FrameRepository` — ordered JSON records in one namespace;
  the per-subsystem WAL (``sswal/<name>``) and redo data
  (``ssdata/<name>``) repositories are instances of it.

JSON is canonical (sorted keys, compact separators) so identical
logical records are identical bytes — the torn-tail property tests
rely on byte-stable frames.
"""

from __future__ import annotations

import json
import os
import tempfile

from repro import config as repro_config
from repro.errors import StorageError, WalCorruptionError
from repro.storage.backend import open_backend

#: Bumped when the on-disk record formats change shape.
FORMAT_VERSION = 1

META_NS = "meta"
JOURNAL_NS = "journal"
SNAPSHOT_NS = "snapshot"
SUBSYSTEM_WAL_PREFIX = "sswal/"
SUBSYSTEM_DATA_PREFIX = "ssdata/"


def dumps(record: dict) -> bytes:
    """Canonical JSON bytes for one record."""
    return json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def loads(payload: bytes, namespace: str = "") -> dict:
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WalCorruptionError(
            f"undecodable record: {exc}", namespace=namespace
        ) from None


class FrameRepository:
    """Ordered JSON records in one backend namespace."""

    def __init__(self, backend, namespace: str) -> None:
        self._backend = backend
        self.namespace = namespace

    def append(self, record: dict) -> None:
        self._backend.append(self.namespace, dumps(record))

    def records(self) -> list[dict]:
        return [
            loads(payload, self.namespace)
            for payload in self._backend.read_all(self.namespace)
        ]

    def rewrite(self, records: list[dict]) -> None:
        self._backend.replace(
            self.namespace, [dumps(record) for record in records]
        )

    def __len__(self) -> int:
        return len(self._backend.read_all(self.namespace))


class JournalRepository(FrameRepository):
    """The scheduler's redo journal; LSN = record index."""

    def __init__(self, backend) -> None:
        super().__init__(backend, JOURNAL_NS)
        #: Records appended through this handle (gauge fodder; the
        #: authoritative count is ``len(self)``).
        self.appended = 0

    def append(self, record: dict) -> None:
        super().append(record)
        self.appended += 1


class SnapshotRepository:
    """Single-slot checkpoint document, swapped atomically."""

    def __init__(self, backend) -> None:
        self._backend = backend

    def save(self, document: dict) -> None:
        self._backend.replace(SNAPSHOT_NS, [dumps(document)])

    def load(self) -> dict | None:
        payloads = self._backend.read_all(SNAPSHOT_NS)
        if not payloads:
            return None
        return loads(payloads[-1], SNAPSHOT_NS)


class MetaRepository:
    """The store's identity document."""

    def __init__(self, backend) -> None:
        self._backend = backend

    def load(self) -> dict | None:
        payloads = self._backend.read_all(META_NS)
        if not payloads:
            return None
        return loads(payloads[-1], META_NS)

    def ensure(self, expected: dict) -> dict:
        """Write ``expected`` on first open; verify compatibility after.

        Raises :class:`StorageError` when the store on disk was written
        by a different world (protocol/spec/seed/format mismatch) —
        replaying such a journal would be silent nonsense.
        """
        expected = dict(expected, format=FORMAT_VERSION)
        current = self.load()
        if current is None:
            self._backend.replace(META_NS, [dumps(expected)])
            return expected
        mismatched = {
            key: (current.get(key), value)
            for key, value in expected.items()
            if current.get(key) != value
        }
        if mismatched:
            detail = "; ".join(
                f"{key}: store has {have!r}, caller wants {want!r}"
                for key, (have, want) in sorted(mismatched.items())
            )
            raise StorageError(
                f"store metadata mismatch ({detail}); refusing to "
                "replay a journal written by a different configuration"
            )
        return current


class Store:
    """Facade over one durable backend; repository per concern."""

    def __init__(self, backend) -> None:
        self.backend = backend
        self.meta = MetaRepository(backend)
        self.journal = JournalRepository(backend)
        self.snapshots = SnapshotRepository(backend)
        #: Namespaces healed at open: ``{namespace: dropped_bytes}``.
        self.healed: dict[str, int] = backend.heal()

    # -- construction --------------------------------------------------
    @classmethod
    def open(
        cls,
        kind: str | None = None,
        path: str | None = None,
        fsync: str | None = None,
        sync_every: int | None = None,
    ) -> "Store":
        """Open a store, resolving every argument via ``REPRO_STORE_*``.

        With no path configured anywhere, a fresh temporary directory
        is used — durable within the process lifetime only, which is
        what ambient durability under the test suite wants.
        """
        kind = repro_config.store_kind(kind)
        if kind is None:
            raise StorageError(
                "no store backend configured: pass kind= or set "
                "REPRO_STORE to 'log', 'sqlite', or 'memory'"
            )
        path = repro_config.store_path(path)
        if path is None:
            path = tempfile.mkdtemp(prefix="repro-store-")
        backend = open_backend(
            kind,
            path,
            fsync=repro_config.store_fsync(fsync),
            sync_every=repro_config.store_sync_every(sync_every),
        )
        return cls(backend)

    # -- subsystem repositories ----------------------------------------
    def subsystem_wal(self, name: str) -> FrameRepository:
        return FrameRepository(self.backend, SUBSYSTEM_WAL_PREFIX + name)

    def subsystem_data(self, name: str) -> FrameRepository:
        return FrameRepository(
            self.backend, SUBSYSTEM_DATA_PREFIX + name
        )

    def subsystem_names(self) -> list[str]:
        return [
            namespace[len(SUBSYSTEM_WAL_PREFIX):]
            for namespace in self.backend.namespaces()
            if namespace.startswith(SUBSYSTEM_WAL_PREFIX)
        ]

    # -- maintenance ---------------------------------------------------
    def flush(self) -> None:
        self.backend.flush()

    def close(self) -> None:
        self.backend.close()

    def stats(self) -> dict:
        return {
            "kind": self.backend.kind,
            "path": getattr(
                self.backend, "root", getattr(self.backend, "path", "")
            ),
            "fsync": getattr(self.backend, "fsync", "n/a"),
            "appends": self.backend.appends,
            "fsyncs": self.backend.fsyncs,
            "bytes_written": self.backend.bytes_written,
            "healed": dict(self.healed),
        }

    def verify(self) -> dict:
        """Walk every namespace; report decodability and corruption.

        Returns ``{"ok": bool, "namespaces": {ns: {...}},
        "corrupt": [...]}`` without raising — the CLI maps ``corrupt``
        to exit code 2.
        """
        report: dict = {"ok": True, "namespaces": {}, "corrupt": []}
        for namespace in self.backend.namespaces():
            entry: dict = {"records": 0, "error": None}
            try:
                payloads = self.backend.read_all(namespace)
                entry["records"] = len(payloads)
                for payload in payloads:
                    loads(payload, namespace)
            except WalCorruptionError as exc:
                entry["error"] = str(exc)
                report["corrupt"].append(namespace)
                report["ok"] = False
            report["namespaces"][namespace] = entry
        report["healed"] = dict(self.healed)
        return report

    def describe(self) -> dict:
        """Inspection summary: meta, snapshot, journal, subsystems."""
        snapshot = self.snapshots.load()
        journal = self.journal.records()
        kinds: dict[str, int] = {}
        for record in journal:
            kind = record.get("kind", "?")
            kinds[kind] = kinds.get(kind, 0) + 1
        return {
            "meta": self.meta.load(),
            "stats": self.stats(),
            "journal": {"records": len(journal), "kinds": kinds},
            "snapshot": None
            if snapshot is None
            else {
                "journal_lsn": snapshot.get("journal_lsn"),
                "crashed_at": snapshot.get("crashed_at"),
                "processes": len(snapshot.get("processes", [])),
                "max_pid": snapshot.get("max_pid"),
            },
            "subsystems": {
                name: {
                    "wal_records": len(self.subsystem_wal(name)),
                    "data_records": len(self.subsystem_data(name)),
                }
                for name in self.subsystem_names()
            },
        }

    def compact(self) -> dict:
        """Drop records the next recovery can no longer need.

        * journal — keeps pre-watermark submissions that are still
          undecided (no terminal record, not live in the snapshot:
          exactly the pending-initiation processes) plus everything
          past the snapshot watermark; with no snapshot the journal is
          untouched.
        * subsystem WALs — keep only the write records of loser
          transactions (no terminal record yet); winners' undo
          information is dead weight.
        * subsystem data — last-write-wins rewrite, one record per
          live key.
        """
        before = {
            namespace: len(self.backend.read_all(namespace))
            for namespace in self.backend.namespaces()
        }
        snapshot = self.snapshots.load()
        if snapshot is not None:
            watermark = int(snapshot.get("journal_lsn", 0))
            live_pids = {
                entry["pid"] for entry in snapshot.get("processes", [])
            }
            journal = self.journal.records()
            head, tail = journal[:watermark], journal[watermark:]
            terminal_pids = {
                record["pid"]
                for record in head
                if record.get("kind") == "terminal"
            }
            kept_head = [
                record
                for record in head
                if record.get("kind") == "submit"
                and record["pid"] not in terminal_pids
                and record["pid"] not in live_pids
            ]
            self.journal.rewrite(kept_head + tail)
            snapshot = dict(snapshot, journal_lsn=len(kept_head))
            self.snapshots.save(snapshot)
        for name in self.subsystem_names():
            wal_repo = self.subsystem_wal(name)
            records = wal_repo.records()
            terminated = {
                record["txn_id"]
                for record in records
                if record.get("kind") != "write"
            }
            wal_repo.rewrite(
                [
                    record
                    for record in records
                    if record.get("kind") == "write"
                    and record["txn_id"] not in terminated
                ]
            )
            data_repo = self.subsystem_data(name)
            state: dict[str, dict] = {}
            for record in data_repo.records():
                if record.get("deleted"):
                    state.pop(record["key"], None)
                else:
                    state[record["key"]] = record
            data_repo.rewrite(
                [state[key] for key in sorted(state)]
            )
        after = {
            namespace: len(self.backend.read_all(namespace))
            for namespace in self.backend.namespaces()
        }
        return {
            "before": before,
            "after": after,
            "dropped": {
                namespace: before.get(namespace, 0)
                - after.get(namespace, 0)
                for namespace in before
            },
        }


def default_store_dir() -> str:
    """A stable default path for CLI flows that want one."""
    return os.path.join(os.getcwd(), "repro-store")
