"""The persistence plane: snapshot + redo-journal recovery for a manager.

:class:`PersistencePlane` sits between a durable
:class:`~repro.storage.facade.Store` and one
:class:`~repro.scheduler.manager.ProcessManager` (usually the one
inside :class:`~repro.server.service.ProcessLockingService`) and owns
the durability protocol:

* every accepted submission is journaled (``submit`` records) *before*
  the client is acknowledged;
* every terminal outcome is journaled (``terminal`` records, carrying
  the final :class:`~repro.scheduler.events.ProcessRecord`) at the next
  quiescent point;
* once enough journal records accumulate, a **snapshot** — the
  existing :func:`repro.scheduler.recovery.crash` image, serialized —
  is swapped in atomically.

Restart recovery composes the pieces: heal torn tails, load the
snapshot, rebuild the crash image, run it through the *existing*
:func:`repro.scheduler.recovery.recover` machinery (locks re-acquired
in sharing order, processes adopted mid-flight), then walk the journal
— terminal records restore finished processes without re-execution,
and undecided submissions are re-scheduled under their original pids.

Semantics (documented in ``docs/persistence.md``): process *outcomes*
are exactly-once — a journaled terminal is never re-run — while
activity *executions* between the last snapshot and a crash are
at-least-once, because live processes restart from their snapshot
state.  The spliced trace stays CT/P-RC-checkable end to end, which is
what the kill-9 tests assert.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import config as repro_config
from repro.activities.activity import ensure_uid_floor
from repro.obs.events import StoreRecovered, StoreSnapshot, StoreTornTail
from repro.scheduler.events import ProcessRecord
from repro.scheduler.recovery import CrashImage, crash, recover
from repro.storage.journal import (
    ProgramCodec,
    image_from_dict,
    image_to_dict,
    record_from_dict,
    record_to_dict,
)


@dataclass
class RecoveryInfo:
    """What a restart found and did."""

    #: Live processes adopted from the snapshot (resume mid-flight).
    adopted: int = 0
    #: Journaled submissions re-scheduled under their original pids.
    resubmitted: int = 0
    #: Finished processes restored from terminal records (not re-run).
    restored: int = 0
    journal_records: int = 0
    snapshot_lsn: int = 0
    #: Pids whose terminal outcome was a client cancel (the service
    #: re-seeds its cancelled set from this).
    cancelled_pids: set[int] = field(default_factory=set)
    #: Torn tails truncated at open: ``{namespace: dropped_bytes}``.
    healed: dict[str, int] = field(default_factory=dict)
    seconds: float = 0.0

    @property
    def recovered_anything(self) -> bool:
        return bool(self.adopted or self.resubmitted or self.restored)


class PersistencePlane:
    """Drives one durable store for one manager lifecycle."""

    def __init__(
        self,
        store,
        catalog,
        snapshot_every: int | None = None,
    ) -> None:
        self.store = store
        self.codec = ProgramCodec(catalog)
        self.snapshot_every = repro_config.store_snapshot_every(
            snapshot_every
        )
        #: Journal length found on disk at open (appends via
        #: ``store.journal.appended`` count from here).
        self._base_len = len(self.store.journal)
        self._snapshot_lsn = 0
        self._journaled_terminal: set[int] = set()
        self.last_recovery: RecoveryInfo | None = None

    # ------------------------------------------------------------------
    # identity & state probes
    # ------------------------------------------------------------------
    def ensure_meta(self, **identity) -> None:
        """Write-or-verify the store's identity document."""
        self.store.meta.ensure(identity)

    def has_state(self) -> bool:
        return (
            self._base_len > 0
            or self.store.snapshots.load() is not None
        )

    @property
    def journal_len(self) -> int:
        return self._base_len + self.store.journal.appended

    # ------------------------------------------------------------------
    # startup recovery
    # ------------------------------------------------------------------
    def recover(
        self,
        protocol,
        config=None,
        subsystems=None,
        seed: int = 0,
        tracer=None,
    ):
        """Rebuild a manager from the store; ``(manager, info)``.

        ``protocol`` must be fresh (its lock table is rebuilt from the
        journal), exactly as :func:`repro.scheduler.recovery.recover`
        requires.
        """
        started = time.monotonic()
        info = RecoveryInfo(healed=dict(self.store.healed))
        document = self.store.snapshots.load()
        journal = self.store.journal.records()
        info.journal_records = len(journal)
        if document is not None:
            image = image_from_dict(document, self.codec)
            info.snapshot_lsn = int(document.get("journal_lsn", 0))
            self._snapshot_lsn = info.snapshot_lsn
        else:
            image = CrashImage(snapshots=[], trace_events=[])
        image_pids = {
            snapshot.pid for snapshot in image.snapshots
        }
        # Journal pass 1: the latest terminal record per pid.  A pid
        # that is live in the snapshot re-executes from its snapshot
        # state instead (its post-snapshot trace was lost with the
        # crash, so restoring the terminal would leave the spliced
        # schedule incomplete); its stale terminal record is ignored
        # and a fresh one is journaled when it finishes again.
        terminal: dict[int, dict] = {}
        max_pid = image.max_pid
        for record in journal:
            kind = record.get("kind")
            if kind in ("submit", "terminal"):
                max_pid = max(max_pid, int(record["pid"]))
            if kind == "terminal" and record["pid"] not in image_pids:
                terminal[record["pid"]] = record
        image.max_pid = max_pid
        if tracer is not None and tracer.enabled:
            # Keep stamped times monotone across incarnations.
            tracer.offset = (
                getattr(tracer, "offset", 0.0) + image.crashed_at
            )
        manager = recover(
            image,
            protocol,
            config=config,
            subsystems=subsystems,
            seed=seed,
            tracer=tracer,
        )
        # recover() floors the activity-uid counter over live ledgers;
        # after a *process* restart (counters reborn at 1) finished
        # processes' uids live only in the trace, so floor over those
        # too — a uid collision would corrupt compensation pairing in
        # the spliced schedule.
        ensure_uid_floor(
            max(
                (event.uid or 0 for event in image.trace_events),
                default=0,
            )
        )
        info.adopted = len(image.snapshots)
        # Journal pass 2: restore finished processes, re-schedule the
        # undecided remainder under their original pids.
        for pid in sorted(terminal):
            record = terminal[pid]
            stored = record.get("record")
            process_record = (
                record_from_dict(stored)
                if stored
                else ProcessRecord(pid=pid, submitted_at=0.0)
            )
            manager.records[pid] = process_record
            manager.stats.submitted += 1
            if process_record.committed_at is not None:
                manager.stats.committed += 1
            if record.get("outcome") == "cancelled":
                info.cancelled_pids.add(pid)
                manager.stats.cancellations += 1
            self._journaled_terminal.add(pid)
            info.restored += 1
        seen: set[int] = set()
        for record in journal:
            if record.get("kind") != "submit":
                continue
            pid = int(record["pid"])
            if pid in image_pids or pid in terminal or pid in seen:
                continue
            seen.add(pid)
            manager.submit_recovered(
                pid, self.codec.program_at(int(record["program"]))
            )
            info.resubmitted += 1
        info.seconds = time.monotonic() - started
        self.last_recovery = info
        if tracer is not None and tracer.enabled:
            for namespace, dropped in sorted(info.healed.items()):
                tracer.emit(
                    StoreTornTail(
                        namespace=namespace, dropped_bytes=dropped
                    )
                )
            tracer.emit(
                StoreRecovered(
                    backend=self.store.backend.kind,
                    adopted=info.adopted,
                    resubmitted=info.resubmitted,
                    restored=info.restored,
                    journal_records=info.journal_records,
                    healed_namespaces=len(info.healed),
                    seconds=round(info.seconds, 6),
                )
            )
        return manager, info

    # ------------------------------------------------------------------
    # runtime capture
    # ------------------------------------------------------------------
    def note_submit(
        self, pid: int, program_index: int, at: float = 0.0
    ) -> None:
        """Journal one accepted submission (before the client ack)."""
        self.store.journal.append(
            {
                "kind": "submit",
                "pid": pid,
                "program": program_index,
                "at": at,
            }
        )

    def note_cancel(self, pid: int) -> None:
        self.store.journal.append({"kind": "cancel", "pid": pid})

    def after_drain(
        self, manager, is_terminal, cancelled: set[int]
    ) -> bool:
        """Quiescent-point bookkeeping; returns True on a snapshot.

        Journals newly terminal processes, takes a snapshot when the
        journal has outgrown the cadence, and flushes so everything
        acknowledged after this point is durable.
        """
        for pid in sorted(manager.records):
            if pid in self._journaled_terminal or not is_terminal(pid):
                continue
            record = manager.records[pid]
            if record.committed_at is not None:
                outcome = "committed"
            elif pid in cancelled:
                outcome = "cancelled"
            else:
                outcome = "aborted"
            self.store.journal.append(
                {
                    "kind": "terminal",
                    "pid": pid,
                    "outcome": outcome,
                    "record": record_to_dict(record),
                }
            )
            self._journaled_terminal.add(pid)
        took = False
        if (
            self.journal_len - self._snapshot_lsn
            >= self.snapshot_every
        ):
            self.snapshot(manager)
            took = True
        self.store.flush()
        return took

    def snapshot(self, manager) -> int:
        """Serialize the manager's crash image; returns the watermark."""
        image = crash(manager)
        lsn = self.journal_len
        self.store.snapshots.save(
            image_to_dict(image, self.codec, journal_lsn=lsn)
        )
        self._snapshot_lsn = lsn
        tracer = manager.tracer
        if tracer.enabled:
            tracer.emit(
                StoreSnapshot(
                    processes=len(image.snapshots), journal_lsn=lsn
                )
            )
        return lsn

    def final(self, manager) -> None:
        """Drain-time checkpoint: snapshot the settled world and sync."""
        self.snapshot(manager)
        self.store.flush()
