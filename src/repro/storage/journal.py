"""Serialization between live scheduler state and durable records.

The persistence plane stores three shapes:

* **journal records** — flat dicts appended to
  :class:`~repro.storage.facade.JournalRepository`:
  ``submit`` / ``terminal`` / ``cancel`` drive recovery; ``grant``,
  ``wcc`` and ``retry-exhausted`` are informational redo detail
  captured by :class:`JournalTracer` (they make ``repro store
  inspect`` explain *why* the journal looks the way it does, and feed
  replay-progress metrics).
* **snapshot documents** — a serialized
  :class:`~repro.scheduler.recovery.CrashImage` plus the journal
  watermark (``journal_lsn``) the image covers.
* **process records** — :class:`~repro.scheduler.events.ProcessRecord`
  as a plain dict inside terminal journal records.

Programs are referenced by **catalog index**: the persistence plane is
always bound to a submission catalog (the workload's program list),
and the catalog is deterministically rebuilt from the workload spec on
restart — storing indexes keeps snapshots small and avoids pickling
program graphs.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.errors import StorageError
from repro.scheduler.events import ProcessRecord
from repro.scheduler.recovery import (
    CrashImage,
    LedgerRecord,
    ProcessSnapshot,
    ScopeRecord,
)
from repro.theory.schedule import EventKind, ScheduleEvent


class ProgramCodec:
    """Maps catalog programs to stable indexes and back."""

    def __init__(self, catalog) -> None:
        self.catalog = list(catalog)
        self._index = {
            id(program): index
            for index, program in enumerate(self.catalog)
        }

    def index_of(self, program) -> int:
        try:
            return self._index[id(program)]
        except KeyError:
            raise StorageError(
                "cannot persist a process whose program is not in the "
                "submission catalog"
            ) from None

    def program_at(self, index: int):
        try:
            return self.catalog[index]
        except IndexError:
            raise StorageError(
                f"snapshot references catalog program {index}, but the "
                f"catalog only has {len(self.catalog)} entries"
            ) from None


# ----------------------------------------------------------------------
# process snapshots
# ----------------------------------------------------------------------
def snapshot_to_dict(
    snapshot: ProcessSnapshot, codec: ProgramCodec
) -> dict:
    return {
        "pid": snapshot.pid,
        "timestamp": snapshot.timestamp,
        "incarnation": snapshot.incarnation,
        "program": codec.index_of(snapshot.program),
        "state": snapshot.state,
        "wcc": snapshot.wcc,
        "next_seq": snapshot.next_seq,
        "current_node_id": snapshot.current_node_id,
        "pending_launch": list(snapshot.pending_launch),
        "unwinding": snapshot.unwinding,
        "ledger": [asdict(record) for record in snapshot.ledger],
        "scopes": [asdict(record) for record in snapshot.scopes],
        "pivot_treated": snapshot.pivot_treated,
    }


def snapshot_from_dict(data: dict, codec: ProgramCodec) -> ProcessSnapshot:
    return ProcessSnapshot(
        pid=data["pid"],
        timestamp=data["timestamp"],
        incarnation=data["incarnation"],
        program=codec.program_at(data["program"]),
        state=data["state"],
        wcc=data["wcc"],
        next_seq=data["next_seq"],
        current_node_id=data["current_node_id"],
        pending_launch=tuple(data["pending_launch"]),
        unwinding=data["unwinding"],
        ledger=tuple(
            LedgerRecord(**record) for record in data["ledger"]
        ),
        scopes=tuple(
            ScopeRecord(**record) for record in data["scopes"]
        ),
        pivot_treated=data["pivot_treated"],
    )


# ----------------------------------------------------------------------
# trace events (the splice)
# ----------------------------------------------------------------------
def trace_event_to_dict(event: ScheduleEvent) -> dict:
    return {
        "position": event.position,
        "process": list(event.process),
        "kind": event.kind.value,
        "name": event.name,
        "uid": event.uid,
        "compensates": event.compensates,
        "compensatable": event.compensatable,
        "point_of_no_return": event.point_of_no_return,
    }


def trace_event_from_dict(data: dict) -> ScheduleEvent:
    return ScheduleEvent(
        position=data["position"],
        process=tuple(data["process"]),
        kind=EventKind(data["kind"]),
        name=data["name"],
        uid=data["uid"],
        compensates=data["compensates"],
        compensatable=data["compensatable"],
        point_of_no_return=data["point_of_no_return"],
    )


# ----------------------------------------------------------------------
# process records
# ----------------------------------------------------------------------
def record_to_dict(record: ProcessRecord) -> dict:
    return asdict(record)


def record_from_dict(data: dict) -> ProcessRecord:
    return ProcessRecord(**data)


# ----------------------------------------------------------------------
# the whole crash image
# ----------------------------------------------------------------------
def image_to_dict(
    image: CrashImage, codec: ProgramCodec, journal_lsn: int
) -> dict:
    return {
        "journal_lsn": journal_lsn,
        "crashed_at": image.crashed_at,
        "max_pid": image.max_pid,
        "processes": [
            snapshot_to_dict(snapshot, codec)
            for snapshot in image.snapshots
        ],
        "trace": [
            trace_event_to_dict(event) for event in image.trace_events
        ],
        "records": {
            str(pid): record_to_dict(record)
            for pid, record in image.records.items()
        },
    }


def image_from_dict(data: dict, codec: ProgramCodec) -> CrashImage:
    return CrashImage(
        snapshots=[
            snapshot_from_dict(entry, codec)
            for entry in data["processes"]
        ],
        trace_events=[
            trace_event_from_dict(entry) for entry in data["trace"]
        ],
        records={
            int(pid): record_from_dict(record)
            for pid, record in data["records"].items()
        },
        crashed_at=data["crashed_at"],
        max_pid=data["max_pid"],
    )


# ----------------------------------------------------------------------
# journal tee
# ----------------------------------------------------------------------
class JournalTracer:
    """A tracer-protocol sink that journals decision events.

    Installed next to the bus bridge in the service's
    :class:`~repro.obs.metrics.MetricsTracer` sink tuple; it receives
    every event the engine emits and appends the durability-relevant
    subset — lock grants, Wcc classifications, exhausted retry budgets
    — as informational journal records.  Emits can arrive from shard
    workers; the backend serializes appends internally.
    """

    enabled = True

    def __init__(self, journal) -> None:
        self._journal = journal
        self.offset = 0.0
        self._clock = lambda: 0.0

    def bind_clock(self, clock) -> None:
        self._clock = clock

    def bind_sampler(self, sampler) -> None:
        pass

    def emit(self, event) -> None:
        kind = getattr(event, "kind", "")
        if kind == "lock.grant":
            self._journal.append(
                {
                    "kind": "grant",
                    "t": self._clock() + self.offset,
                    "pid": event.pid,
                    "name": event.activity,
                    "mode": event.mode,
                    "position": event.position,
                }
            )
        elif kind == "wcc.classify":
            self._journal.append(
                {
                    "kind": "wcc",
                    "t": self._clock() + self.offset,
                    "pid": event.pid,
                    "name": event.activity,
                    "mode": event.mode,
                    "wcc": event.wcc,
                    "pseudo_pivot": event.pseudo_pivot,
                }
            )
        elif kind == "retry.budget_exhausted":
            self._journal.append(
                {
                    "kind": "retry-exhausted",
                    "t": self._clock() + self.offset,
                    "pid": event.pid,
                    "name": event.activity,
                    "attempts": event.attempts,
                }
            )
