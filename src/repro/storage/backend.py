"""Storage backends: where durable frames physically live.

A backend stores ordered opaque payloads per **namespace** (one logical
log: the scheduler journal, a snapshot slot, one subsystem's WAL, ...).
Three implementations share the same five-method surface:

* :class:`AppendLogBackend` — one append-only file of CRC32-framed
  records (:mod:`repro.storage.codec`) per namespace, with an fsync
  policy (``always`` / ``batch`` / ``never``).  Torn tails are healed
  (truncated) at open; CRC mismatches raise
  :class:`~repro.errors.WalCorruptionError`.
* :class:`SqliteBackend` — one ``frames`` table in a single database
  file; appends become inserts, the fsync policy maps onto sqlite's
  journaling pragmas, and the stored CRC32 is re-verified on read.
* :class:`MemoryBackend` — a dict of lists; persists nothing and
  exists so benchmarks can price durability against a true no-op and
  tests can exercise the facade without touching disk.

All mutating calls are serialized by one lock per backend: the journal
tee can emit from shard workers while the engine thread appends.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import zlib

from repro.errors import StorageError, WalCorruptionError
from repro.storage.codec import encode_frame, scan_frames

FSYNC_POLICIES = ("always", "batch", "never")


def _check_policy(fsync: str) -> str:
    if fsync not in FSYNC_POLICIES:
        raise StorageError(
            f"unknown fsync policy {fsync!r}; "
            f"expected one of {FSYNC_POLICIES}"
        )
    return fsync


class MemoryBackend:
    """Frames in process memory — the durability no-op baseline."""

    kind = "memory"

    def __init__(self, fsync: str = "batch", sync_every: int = 64) -> None:
        _check_policy(fsync)
        self._frames: dict[str, list[bytes]] = {}
        self._mutex = threading.Lock()
        self.appends = 0
        self.fsyncs = 0
        self.bytes_written = 0

    def append(self, namespace: str, payload: bytes) -> None:
        with self._mutex:
            self._frames.setdefault(namespace, []).append(bytes(payload))
            self.appends += 1
            self.bytes_written += len(payload)

    def replace(self, namespace: str, payloads: list[bytes]) -> None:
        with self._mutex:
            self._frames[namespace] = [bytes(p) for p in payloads]
            self.bytes_written += sum(len(p) for p in payloads)

    def read_all(self, namespace: str) -> list[bytes]:
        with self._mutex:
            return list(self._frames.get(namespace, []))

    def namespaces(self) -> list[str]:
        with self._mutex:
            return sorted(self._frames)

    def heal(self) -> dict[str, int]:
        """Nothing to heal in memory."""
        return {}

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class AppendLogBackend:
    """One CRC32-framed append-only file per namespace.

    ``root`` is a directory; namespace ``a/b`` maps to file ``a@b.log``
    (namespaces never contain ``@``).  Appends write straight through
    to the OS (unbuffered), so a killed *process* loses nothing; only a
    machine crash can lose the un-fsynced suffix, which is exactly what
    the ``batch``/``never`` policies trade for speed.
    """

    kind = "log"
    _SUFFIX = ".log"

    def __init__(
        self, root: str, fsync: str = "batch", sync_every: int = 64
    ) -> None:
        self.root = str(root)
        self.fsync = _check_policy(fsync)
        self.sync_every = max(1, int(sync_every))
        os.makedirs(self.root, exist_ok=True)
        self._files: dict[str, object] = {}
        self._unsynced: dict[str, int] = {}
        self._mutex = threading.Lock()
        self.appends = 0
        self.fsyncs = 0
        self.bytes_written = 0

    # -- namespace <-> filename ----------------------------------------
    def _path(self, namespace: str) -> str:
        if "@" in namespace or namespace.startswith("."):
            raise StorageError(f"illegal namespace {namespace!r}")
        return os.path.join(
            self.root, namespace.replace("/", "@") + self._SUFFIX
        )

    def namespaces(self) -> list[str]:
        found = []
        for entry in os.listdir(self.root):
            if entry.endswith(self._SUFFIX):
                found.append(
                    entry[: -len(self._SUFFIX)].replace("@", "/")
                )
        return sorted(found)

    def _handle(self, namespace: str):
        handle = self._files.get(namespace)
        if handle is None:
            handle = open(self._path(namespace), "ab", buffering=0)
            self._files[namespace] = handle
        return handle

    # -- writes --------------------------------------------------------
    def append(self, namespace: str, payload: bytes) -> None:
        frame = encode_frame(payload)
        with self._mutex:
            handle = self._handle(namespace)
            handle.write(frame)
            self.appends += 1
            self.bytes_written += len(frame)
            if self.fsync == "always":
                os.fsync(handle.fileno())
                self.fsyncs += 1
            elif self.fsync == "batch":
                pending = self._unsynced.get(namespace, 0) + 1
                if pending >= self.sync_every:
                    os.fsync(handle.fileno())
                    self.fsyncs += 1
                    pending = 0
                self._unsynced[namespace] = pending

    def replace(self, namespace: str, payloads: list[bytes]) -> None:
        """Atomically swap a namespace's whole content (tmp + rename)."""
        path = self._path(namespace)
        tmp = path + ".tmp"
        with self._mutex:
            handle = self._files.pop(namespace, None)
            if handle is not None:
                handle.close()
            with open(tmp, "wb") as out:
                for payload in payloads:
                    frame = encode_frame(payload)
                    out.write(frame)
                    self.bytes_written += len(frame)
                out.flush()
                if self.fsync != "never":
                    os.fsync(out.fileno())
                    self.fsyncs += 1
            os.replace(tmp, path)
            if self.fsync != "never":
                self._fsync_dir()
            self._unsynced.pop(namespace, None)

    def _fsync_dir(self) -> None:
        fd = os.open(self.root, os.O_RDONLY)
        try:
            os.fsync(fd)
            self.fsyncs += 1
        finally:
            os.close(fd)

    # -- reads & recovery ----------------------------------------------
    def read_all(self, namespace: str) -> list[bytes]:
        path = self._path(namespace)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return []
        return scan_frames(data, namespace=namespace).payloads

    def heal(self) -> dict[str, int]:
        """Truncate every torn tail; ``{namespace: dropped_bytes}``.

        Corrupt (complete but CRC-failing) frames are *not* healed —
        they raise, because silently dropping acknowledged records
        would turn bit rot into data loss.
        """
        healed: dict[str, int] = {}
        with self._mutex:
            for namespace in self.namespaces():
                path = self._path(namespace)
                with open(path, "rb") as handle:
                    data = handle.read()
                result = scan_frames(data, namespace=namespace)
                if result.torn:
                    handle = self._files.pop(namespace, None)
                    if handle is not None:
                        handle.close()
                    with open(path, "r+b") as out:
                        out.truncate(result.good_bytes)
                        out.flush()
                        os.fsync(out.fileno())
                        self.fsyncs += 1
                    healed[namespace] = result.torn_bytes
        return healed

    # -- lifecycle -----------------------------------------------------
    def flush(self) -> None:
        with self._mutex:
            if self.fsync == "never":
                return
            for namespace, handle in self._files.items():
                if self.fsync == "always":
                    continue
                if self._unsynced.get(namespace, 0):
                    os.fsync(handle.fileno())
                    self.fsyncs += 1
                    self._unsynced[namespace] = 0

    def close(self) -> None:
        self.flush()
        with self._mutex:
            for handle in self._files.values():
                handle.close()
            self._files.clear()


class SqliteBackend:
    """Every namespace as rows of one ``frames`` table.

    The stored CRC32 is verified again on every read, so a corrupted
    payload surfaces as :class:`~repro.errors.WalCorruptionError`
    exactly like a corrupt log frame.  The fsync policy maps onto
    sqlite: ``always`` commits (synchronous=FULL) per append, ``batch``
    commits every ``sync_every`` appends (synchronous=NORMAL), and
    ``never`` commits only at flush points (synchronous=OFF).
    """

    kind = "sqlite"
    _PRAGMAS = {"always": "FULL", "batch": "NORMAL", "never": "OFF"}

    def __init__(
        self, path: str, fsync: str = "batch", sync_every: int = 64
    ) -> None:
        self.path = str(path)
        self.fsync = _check_policy(fsync)
        self.sync_every = max(1, int(sync_every))
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute(
            f"PRAGMA synchronous={self._PRAGMAS[self.fsync]}"
        )
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS frames ("
            " ns TEXT NOT NULL,"
            " seq INTEGER NOT NULL,"
            " crc INTEGER NOT NULL,"
            " payload BLOB NOT NULL,"
            " PRIMARY KEY (ns, seq))"
        )
        self._conn.commit()
        self._next_seq: dict[str, int] = {}
        self._uncommitted = 0
        self._mutex = threading.Lock()
        self.appends = 0
        self.fsyncs = 0
        self.bytes_written = 0

    def _seq(self, namespace: str) -> int:
        seq = self._next_seq.get(namespace)
        if seq is None:
            row = self._conn.execute(
                "SELECT COALESCE(MAX(seq), 0) FROM frames WHERE ns = ?",
                (namespace,),
            ).fetchone()
            seq = int(row[0]) + 1
        self._next_seq[namespace] = seq + 1
        return seq

    def append(self, namespace: str, payload: bytes) -> None:
        with self._mutex:
            self._conn.execute(
                "INSERT INTO frames (ns, seq, crc, payload) "
                "VALUES (?, ?, ?, ?)",
                (
                    namespace,
                    self._seq(namespace),
                    zlib.crc32(payload),
                    sqlite3.Binary(payload),
                ),
            )
            self.appends += 1
            self.bytes_written += len(payload)
            self._uncommitted += 1
            if self.fsync == "always" or (
                self.fsync == "batch"
                and self._uncommitted >= self.sync_every
            ):
                self._conn.commit()
                self.fsyncs += 1
                self._uncommitted = 0

    def replace(self, namespace: str, payloads: list[bytes]) -> None:
        with self._mutex:
            self._conn.execute(
                "DELETE FROM frames WHERE ns = ?", (namespace,)
            )
            for seq, payload in enumerate(payloads, start=1):
                self._conn.execute(
                    "INSERT INTO frames (ns, seq, crc, payload) "
                    "VALUES (?, ?, ?, ?)",
                    (
                        namespace,
                        seq,
                        zlib.crc32(payload),
                        sqlite3.Binary(payload),
                    ),
                )
                self.bytes_written += len(payload)
            self._next_seq[namespace] = len(payloads) + 1
            self._conn.commit()
            self.fsyncs += 1
            self._uncommitted = 0

    def read_all(self, namespace: str) -> list[bytes]:
        with self._mutex:
            rows = self._conn.execute(
                "SELECT seq, crc, payload FROM frames "
                "WHERE ns = ? ORDER BY seq",
                (namespace,),
            ).fetchall()
        payloads = []
        for seq, crc, payload in rows:
            payload = bytes(payload)
            if zlib.crc32(payload) != crc:
                raise WalCorruptionError(
                    f"row {seq} fails its CRC32 check",
                    namespace=namespace,
                    offset=seq,
                )
            payloads.append(payload)
        return payloads

    def namespaces(self) -> list[str]:
        with self._mutex:
            rows = self._conn.execute(
                "SELECT DISTINCT ns FROM frames ORDER BY ns"
            ).fetchall()
        return [row[0] for row in rows]

    def heal(self) -> dict[str, int]:
        """Sqlite commits are atomic; there is no torn tail to heal."""
        return {}

    def flush(self) -> None:
        with self._mutex:
            if self._conn is not None and self._uncommitted:
                self._conn.commit()
                self.fsyncs += 1
                self._uncommitted = 0

    def close(self) -> None:
        with self._mutex:
            if self._conn is None:
                return
            self._conn.commit()
            self._conn.close()
            self._conn = None


BACKENDS = {
    "memory": MemoryBackend,
    "log": AppendLogBackend,
    "sqlite": SqliteBackend,
}


def open_backend(
    kind: str, path: str, fsync: str = "batch", sync_every: int = 64
):
    """Construct the backend for ``kind`` rooted at ``path``."""
    if kind == "memory":
        return MemoryBackend(fsync=fsync, sync_every=sync_every)
    if kind == "log":
        return AppendLogBackend(
            path, fsync=fsync, sync_every=sync_every
        )
    if kind == "sqlite":
        # A directory (the usual ``--store-path``) gets a conventional
        # database file inside it, so log and sqlite stores can share
        # path handling; an explicit ``*.db`` path is used verbatim.
        if not path.endswith(".db"):
            os.makedirs(path, exist_ok=True)
            path = os.path.join(path, "repro.db")
        return SqliteBackend(path, fsync=fsync, sync_every=sync_every)
    raise StorageError(
        f"unknown store backend {kind!r}; "
        f"expected one of {sorted(BACKENDS)}"
    )
