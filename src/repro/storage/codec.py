"""Binary framing for the append-only log backend.

Every record is stored as one self-validating frame::

    +----------------+----------------+===========+
    | length (u32 BE)| crc32 (u32 BE) |  payload  |
    +----------------+----------------+===========+

``length`` counts payload bytes only; ``crc32`` is over the payload.
The frame shape gives crash recovery a clean split:

* a **torn tail** — fewer bytes on disk than the last frame claims
  (header cut short, or payload cut short) — is the signature of a
  crash mid-append.  :func:`scan_frames` reports where the good prefix
  ends so the caller can truncate deterministically; every byte-level
  prefix truncation of a valid log lands here, never in corruption.
* a **corrupt frame** — a *complete* frame whose CRC32 does not match
  its payload — can only come from bit rot or tampering, never from an
  interrupted append, and raises
  :class:`~repro.errors.WalCorruptionError`.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

from repro.errors import WalCorruptionError

#: Frame header: payload length and payload CRC32, both big-endian u32.
_HEADER = struct.Struct(">II")
HEADER_SIZE = _HEADER.size

#: Refuse absurd frame lengths outright — a header claiming gigabytes
#: is corruption (or an attempt to make recovery allocate one), not a
#: record this system ever wrote.
MAX_FRAME_PAYLOAD = 64 * 1024 * 1024


def encode_frame(payload: bytes) -> bytes:
    """One durable frame for ``payload``."""
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise WalCorruptionError(
            f"refusing to encode a {len(payload)}-byte frame "
            f"(cap {MAX_FRAME_PAYLOAD})"
        )
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class ScanResult:
    """Outcome of walking a byte string frame by frame."""

    payloads: list[bytes] = field(default_factory=list)
    #: Bytes covered by complete, CRC-valid frames (the truncation
    #: point when the tail is torn).
    good_bytes: int = 0
    #: Bytes past ``good_bytes`` belonging to an incomplete last frame.
    torn_bytes: int = 0

    @property
    def torn(self) -> bool:
        return self.torn_bytes > 0


def scan_frames(data: bytes, namespace: str = "") -> ScanResult:
    """Decode every complete frame of ``data``.

    Raises
    ------
    WalCorruptionError
        On a complete frame whose CRC32 does not match, or whose header
        claims an impossible length while enough bytes follow for the
        header itself.  An incomplete frame at the very end is reported
        as a torn tail instead.
    """
    result = ScanResult()
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < HEADER_SIZE:
            result.torn_bytes = total - offset
            return result
        length, crc = _HEADER.unpack_from(data, offset)
        if length > MAX_FRAME_PAYLOAD:
            raise WalCorruptionError(
                f"frame at offset {offset} claims {length} payload "
                f"bytes (cap {MAX_FRAME_PAYLOAD})",
                namespace=namespace,
                offset=offset,
            )
        end = offset + HEADER_SIZE + length
        if end > total:
            result.torn_bytes = total - offset
            return result
        payload = data[offset + HEADER_SIZE : end]
        if zlib.crc32(payload) != crc:
            raise WalCorruptionError(
                f"frame at offset {offset} fails its CRC32 check "
                f"({length} payload bytes)",
                namespace=namespace,
                offset=offset,
            )
        result.payloads.append(payload)
        offset = end
        result.good_bytes = offset
    return result
