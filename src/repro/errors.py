"""Exception hierarchy for the process-locking reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish model errors (bad process programs, invalid
activity definitions) from runtime errors (protocol violations, subsystem
failures).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ActivityModelError(ReproError):
    """An activity definition violates the constraints of Table 1.

    Examples: a pivot activity declared with a compensating activity, a
    retriable activity with a non-zero failure probability, or a
    non-positive execution cost.
    """


class UnknownActivityError(ActivityModelError):
    """An activity type name was not found in the registry."""


class CommutativityError(ReproError):
    """The conflict relation is malformed.

    Raised when a conflict matrix references unknown activity types, is not
    symmetric, relates activities of different subsystems, or violates the
    perfect-commutativity assumption required by the protocol.
    """


class ProcessProgramError(ReproError):
    """A process program violates structural well-formedness.

    This covers violations of the guaranteed-termination property
    (Section 2.2 of the paper): alternatives hanging off non-pivot nodes,
    pivot nodes whose last alternative is not an assured termination tree,
    pivots inside parallel nodes, and similar shape errors.
    """


class ProcessStateError(ReproError):
    """An operation was attempted in an illegal process state.

    For example committing an aborting process, or aborting a process that
    has already passed its point of no return.
    """


class SchedulerError(ReproError):
    """The process manager reached an inconsistent internal state."""


class ProtocolError(ReproError):
    """The locking protocol detected an unrecoverable violation.

    Under a correct implementation this is only raised for genuinely
    unresolvable situations, e.g. a wait-for cycle consisting solely of
    processes that may not be aborted.
    """


class StarvationError(SchedulerError):
    """A process exceeded the resubmission bound.

    Process locking resubmits cascade-abort victims with their original
    timestamp so that they eventually become the oldest process and win all
    conflicts; a resubmission count past the configured bound therefore
    indicates a livelock bug rather than expected behaviour.
    """


class SubsystemError(ReproError):
    """Base class for errors raised by the transactional subsystems."""


class TransactionAborted(SubsystemError):
    """A subsystem transaction was aborted (explicitly or by deadlock)."""


class DataDeadlockAvoided(TransactionAborted):
    """A data-level lock request was refused by the wait-die policy."""


class RecordLockTimeout(SubsystemError):
    """A data-level lock could not be acquired within the wait budget."""


class SubsystemWouldBlock(SubsystemError):
    """A data-level lock request must wait for older transactions.

    Raised by the stepwise transaction interface so that test drivers can
    reschedule the blocked operation; the atomic execution path used by the
    simulator never surfaces this.
    """

    def __init__(self, holders: frozenset[int]):
        super().__init__(f"blocked by transactions {sorted(holders)}")
        self.holders = holders


class ScheduleError(ReproError):
    """A process schedule object is malformed (theory layer)."""


class StorageError(ReproError):
    """Base class for errors raised by the durable storage layer.

    Covers configuration problems (unknown backend kind, missing store
    path, metadata mismatch between a store and the service opening it)
    as well as I/O-level failures surfaced by a backend.
    """


class WalCorruptionError(StorageError):
    """A durable log holds a record that fails validation.

    Raised when a complete frame's CRC32 does not match its payload,
    when a frame's payload is not decodable, or when
    :func:`repro.subsystems.wal.recover_store` meets a structurally
    malformed WAL record.  A *torn tail* — an incomplete frame at the
    end of a log, the signature of a crash mid-append — is **not**
    corruption: recovery detects it and truncates deterministically.
    """

    def __init__(
        self, message: str, namespace: str = "", offset: int | None = None
    ):
        super().__init__(message)
        #: Store namespace (log name) the bad record lives in.
        self.namespace = namespace
        #: Byte offset (append-log) or sequence number (sqlite) of the
        #: offending record, when known.
        self.offset = offset
