"""Electronic-commerce payment processes.

The paper repeatedly motivates process locking with e-commerce payment
processing (Section 2.2: "compensatable steps followed by a pivot step as
point-of-no-return (the commit decision) and subsequent retriable steps,
the latter being arranged in two alternatives for successful or
unsuccessful outcomes").  This module builds exactly that shape on top of
three concrete subsystems (shop inventory, payment gateway, shipping
desk), with grounded transaction programs so the conflict relation is
derived rather than postulated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.activities.commutativity import (
    ConflictMatrix,
    derive_from_read_write_sets,
)
from repro.activities.registry import ActivityRegistry
from repro.process.builder import ProgramBuilder
from repro.process.program import ProcessProgram
from repro.subsystems.programs import (
    Operation,
    TransactionProgram,
    inverse_program,
)
from repro.subsystems.subsystem import SubsystemPool


@dataclass
class Scenario:
    """A ready-to-run domain scenario."""

    name: str
    registry: ActivityRegistry
    conflicts: ConflictMatrix
    programs: list[ProcessProgram]
    data_programs: dict[str, TransactionProgram] = field(
        default_factory=dict
    )

    def make_subsystems(self) -> SubsystemPool:
        pool = SubsystemPool()
        for activity_type in self.registry:
            pool.get_or_create(activity_type.subsystem)
        for name, program in self.data_programs.items():
            subsystem = pool.get(self.registry.get(name).subsystem)
            subsystem.register_program(name, program)
        return pool


def payment_scenario(
    customers: int = 6,
    items: int = 4,
    failure_probability: float = 0.05,
    wcc_threshold: float = math.inf,
) -> Scenario:
    """``customers`` concurrent purchase processes over ``items`` SKUs.

    Each process: check cart → reserve stock (compensatable) → authorize
    payment (compensatable) → **charge card** (pivot: money moves) →
    preferred fulfilment (express shipping) with standard shipping as the
    assured fallback.
    """
    registry = ActivityRegistry()
    data: dict[str, TransactionProgram] = {}

    def grounded_compensatable(
        name: str,
        subsystem: str,
        cost: float,
        comp_cost: float,
        ops: list[Operation],
        p: float = 0.0,
    ) -> None:
        registry.define_compensatable(
            name,
            subsystem,
            cost=cost,
            compensation_cost=comp_cost,
            failure_probability=p,
        )
        program = TransactionProgram(name=name, operations=tuple(ops))
        data[name] = program
        data[f"{name}^-1"] = inverse_program(program)

    for item in range(items):
        sku = f"sku{item}"
        grounded_compensatable(
            f"reserve_{sku}",
            "shop",
            cost=2.0,
            comp_cost=1.0,
            ops=[
                Operation.read(f"shop:stock_{sku}"),
                Operation.write(f"shop:reserved_{sku}"),
            ],
            p=failure_probability,
        )
    grounded_compensatable(
        "authorize_payment",
        "gateway",
        cost=1.5,
        comp_cost=0.5,
        ops=[Operation.write("gateway:auth_log")],
        p=failure_probability,
    )
    registry.define_pivot(
        "charge_card",
        "gateway",
        cost=1.0,
        failure_probability=failure_probability / 2,
    )
    data["charge_card"] = TransactionProgram(
        name="charge_card",
        operations=(Operation.write("gateway:ledger"),),
    )
    # The preferred fulfilment may fail (the courier can refuse the job);
    # its booking is compensatable so the alternative can take over.
    grounded_compensatable(
        "ship_express",
        "shipping",
        cost=3.0,
        comp_cost=0.5,
        ops=[Operation.write("shipping:express_queue")],
        p=max(failure_probability, 0.05),
    )
    registry.define_retriable("ship_standard", "shipping", cost=2.0)
    data["ship_standard"] = TransactionProgram(
        name="ship_standard",
        operations=(Operation.write("shipping:standard_queue"),),
    )
    registry.define_compensatable(
        "check_cart",
        "shop",
        cost=0.5,
        compensation_cost=0.0,
        failure_probability=0.0,
    )
    data["check_cart"] = TransactionProgram(
        name="check_cart", operations=(Operation.read("shop:catalog"),)
    )
    data["check_cart^-1"] = TransactionProgram(
        name="check_cart^-1", operations=()
    )

    access = {
        name: (program.read_set, program.write_set)
        for name, program in data.items()
        if not registry.get(name).is_compensation
    }
    conflicts = derive_from_read_write_sets(registry, access)

    programs = []
    for customer in range(customers):
        sku = f"sku{customer % items}"
        program = (
            ProgramBuilder(
                f"purchase[{customer}:{sku}]",
                registry,
                wcc_threshold=wcc_threshold,
            )
            .step("check_cart")
            .step(f"reserve_{sku}")
            .step("authorize_payment")
            .pivot("charge_card")
            .alternatives(
                lambda b: b.step("ship_express"),
                lambda b: b.step("ship_standard"),
            )
            .build()
        )
        programs.append(program)
    return Scenario(
        name="ecommerce-payment",
        registry=registry,
        conflicts=conflicts,
        programs=programs,
        data_programs=data,
    )
