"""Computer-integrated manufacturing: subsystem coordination.

The paper's CIM application coordinates autonomous shop-floor systems —
stock, a machining cell, an assembly cell, and quality assurance.  Work
orders reserve material and book machine slots (compensatable), cut the
material (pivot: the raw block is gone), then assemble and file QA
records (assured).

The scenario is conflict-heavy by construction: every order competes for
the same machine calendar, making it a good stress test for ordered
sharing (E1 uses it as the high-contention datapoint).
"""

from __future__ import annotations

import math

from repro.activities.commutativity import derive_from_read_write_sets
from repro.activities.registry import ActivityRegistry
from repro.process.builder import ProgramBuilder
from repro.subsystems.programs import (
    Operation,
    TransactionProgram,
    inverse_program,
)
from repro.workloads.ecommerce import Scenario


def manufacturing_scenario(
    orders: int = 6,
    machines: int = 2,
    failure_probability: float = 0.07,
    wcc_threshold: float = math.inf,
) -> Scenario:
    """``orders`` concurrent work orders over ``machines`` machining cells."""
    registry = ActivityRegistry()
    data: dict[str, TransactionProgram] = {}

    def compensatable(
        name: str,
        subsystem: str,
        cost: float,
        comp_cost: float,
        keys: list[str],
        p: float = 0.0,
    ) -> None:
        registry.define_compensatable(
            name,
            subsystem,
            cost=cost,
            compensation_cost=comp_cost,
            failure_probability=p,
        )
        program = TransactionProgram(
            name=name,
            operations=tuple(Operation.write(k) for k in keys),
        )
        data[name] = program
        data[f"{name}^-1"] = inverse_program(program)

    compensatable(
        "reserve_material",
        "stock",
        cost=2.0,
        comp_cost=1.0,
        keys=["stock:raw_blocks"],
        p=failure_probability,
    )
    for machine in range(machines):
        compensatable(
            f"book_machine_{machine}",
            "machining",
            cost=3.0,
            comp_cost=1.0,
            keys=[f"machining:calendar_m{machine}", "machining:load"],
            p=failure_probability,
        )
    compensatable(
        "stage_tooling",
        "machining",
        cost=1.5,
        comp_cost=0.5,
        keys=["machining:tool_crib"],
        p=failure_probability,
    )
    compensatable(
        "premium_finish",
        "assembly",
        cost=2.0,
        comp_cost=0.5,
        keys=["assembly:finishing_line"],
        p=max(failure_probability, 0.05),
    )
    registry.define_pivot(
        "cut_material",
        "machining",
        cost=4.0,
        failure_probability=failure_probability / 2,
    )
    data["cut_material"] = TransactionProgram(
        name="cut_material",
        operations=(Operation.write("machining:load"),),
    )
    registry.define_retriable("assemble", "assembly", cost=3.0)
    data["assemble"] = TransactionProgram(
        name="assemble",
        operations=(Operation.write("assembly:line"),),
    )
    registry.define_retriable("file_qa_record", "qa", cost=1.0)
    data["file_qa_record"] = TransactionProgram(
        name="file_qa_record",
        operations=(Operation.write("qa:records"),),
    )

    access = {
        name: (program.read_set, program.write_set)
        for name, program in data.items()
        if not registry.get(name).is_compensation
    }
    conflicts = derive_from_read_write_sets(registry, access)

    programs = []
    for order in range(orders):
        machine = f"book_machine_{order % machines}"
        programs.append(
            ProgramBuilder(
                f"work-order[{order}]",
                registry,
                wcc_threshold=wcc_threshold,
            )
            .step("reserve_material")
            .step(machine)
            .step("stage_tooling")
            .pivot("cut_material")
            .alternatives(
                lambda b: b.sequence("premium_finish", "assemble"),
                lambda b: b.sequence("assemble", "file_qa_record"),
            )
            .build()
        )
    return Scenario(
        name="manufacturing-cim",
        registry=registry,
        conflicts=conflicts,
        programs=programs,
        data_programs=data,
    )
