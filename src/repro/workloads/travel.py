"""Travel booking: the classic flexible-transaction example.

A trip books a flight and a hotel (compensatable, may run in parallel),
optionally a rental car, then issues the non-refundable ticket (pivot).
Afterwards the process confirms the preferred itinerary; if confirmation
fails, it falls back to the assured notification path.

The scenario deliberately shares hotels and flights across trips to
generate cross-process conflicts.
"""

from __future__ import annotations

import math

from repro.activities.commutativity import (
    derive_from_read_write_sets,
)
from repro.activities.registry import ActivityRegistry
from repro.process.builder import ProgramBuilder
from repro.subsystems.programs import (
    Operation,
    TransactionProgram,
    inverse_program,
)
from repro.workloads.ecommerce import Scenario


def travel_scenario(
    trips: int = 6,
    hotels: int = 2,
    flights: int = 2,
    parallel_booking: bool = True,
    failure_probability: float = 0.08,
    wcc_threshold: float = math.inf,
) -> Scenario:
    """``trips`` concurrent trip-booking processes."""
    registry = ActivityRegistry()
    data: dict[str, TransactionProgram] = {}

    def compensatable(
        name: str,
        subsystem: str,
        cost: float,
        comp_cost: float,
        keys: list[str],
        p: float,
    ) -> None:
        registry.define_compensatable(
            name,
            subsystem,
            cost=cost,
            compensation_cost=comp_cost,
            failure_probability=p,
        )
        program = TransactionProgram(
            name=name,
            operations=tuple(Operation.write(k) for k in keys),
        )
        data[name] = program
        data[f"{name}^-1"] = inverse_program(program)

    for flight in range(flights):
        compensatable(
            f"book_flight_{flight}",
            "airline",
            cost=3.0,
            comp_cost=1.5,
            keys=[f"airline:seats_f{flight}"],
            p=failure_probability,
        )
    for hotel in range(hotels):
        compensatable(
            f"book_hotel_{hotel}",
            "hotel",
            cost=2.5,
            comp_cost=1.0,
            keys=[f"hotel:rooms_h{hotel}"],
            p=failure_probability,
        )
    compensatable(
        "book_car",
        "rental",
        cost=1.5,
        comp_cost=0.5,
        keys=["rental:fleet"],
        p=failure_probability,
    )
    compensatable(
        "confirm_itinerary",
        "airline",
        cost=1.0,
        comp_cost=0.2,
        keys=["airline:confirmations"],
        p=max(failure_probability, 0.05),
    )
    registry.define_pivot(
        "issue_ticket",
        "airline",
        cost=1.0,
        failure_probability=failure_probability / 2,
    )
    data["issue_ticket"] = TransactionProgram(
        name="issue_ticket",
        operations=(Operation.write("airline:tickets"),),
    )
    registry.define_retriable("send_itinerary_mail", "notify", cost=0.5)
    data["send_itinerary_mail"] = TransactionProgram(
        name="send_itinerary_mail",
        operations=(Operation.write("notify:outbox"),),
    )

    access = {
        name: (program.read_set, program.write_set)
        for name, program in data.items()
        if not registry.get(name).is_compensation
    }
    conflicts = derive_from_read_write_sets(registry, access)

    programs = []
    for trip in range(trips):
        flight = f"book_flight_{trip % flights}"
        hotel = f"book_hotel_{trip % hotels}"
        builder = ProgramBuilder(
            f"trip[{trip}]", registry, wcc_threshold=wcc_threshold
        )
        if parallel_booking:
            builder.parallel(flight, hotel)
        else:
            builder.sequence(flight, hotel)
        programs.append(
            builder.step("book_car")
            .pivot("issue_ticket")
            .alternatives(
                lambda b: b.step("confirm_itinerary"),
                lambda b: b.step("send_itinerary_mail"),
            )
            .build()
        )
    return Scenario(
        name="travel-booking",
        registry=registry,
        conflicts=conflicts,
        programs=programs,
        data_programs=data,
    )
