"""Hospital information system flows (paper Section 6, [Schuler et al.]).

Clinical order-entry processes coordinate several departmental systems:
the patient record, the laboratory, the pharmacy, and the billing office.
Administering medication is the point of no return — a drug cannot be
un-administered — which makes the workload a natural fit for process
locking's pivot semantics; everything before it (orders, lab bookings,
pharmacy reservations) is compensatable paperwork.

These processes are *long-running and expensive* compared to payment
processes, which is why the cost-based extension matters here: the
scenario marks lab work as expensive so a finite ``Wcc*`` shields
half-finished clinical processes from cascading aborts.
"""

from __future__ import annotations

import math

from repro.activities.commutativity import derive_from_read_write_sets
from repro.activities.registry import ActivityRegistry
from repro.process.builder import ProgramBuilder
from repro.subsystems.programs import (
    Operation,
    TransactionProgram,
    inverse_program,
)
from repro.workloads.ecommerce import Scenario

#: Execution cost of a laboratory panel — the "expensive activity" whose
#: compensation the cost-based extension is meant to avoid.
LAB_PANEL_COST = 25.0


def hospital_scenario(
    patients: int = 5,
    wards: int = 2,
    failure_probability: float = 0.06,
    wcc_threshold: float = math.inf,
) -> Scenario:
    """``patients`` concurrent clinical order-entry processes.

    Pass a finite ``wcc_threshold`` (e.g. ``LAB_PANEL_COST``) to protect
    processes from cascades once their accumulated worst-case cost covers
    the lab panel.
    """
    registry = ActivityRegistry()
    data: dict[str, TransactionProgram] = {}

    def compensatable(
        name: str,
        subsystem: str,
        cost: float,
        comp_cost: float,
        keys: list[str],
        p: float = 0.0,
        reads: list[str] | None = None,
    ) -> None:
        registry.define_compensatable(
            name,
            subsystem,
            cost=cost,
            compensation_cost=comp_cost,
            failure_probability=p,
        )
        ops = [Operation.read(k) for k in (reads or [])]
        ops += [Operation.write(k) for k in keys]
        program = TransactionProgram(name=name, operations=tuple(ops))
        data[name] = program
        data[f"{name}^-1"] = inverse_program(program)

    for ward in range(wards):
        compensatable(
            f"admit_ward_{ward}",
            "records",
            cost=2.0,
            comp_cost=1.0,
            keys=[f"records:ward_{ward}_census"],
            p=failure_probability,
        )
    for ward in range(wards):
        # One lab worklist per ward: panels of different wards commute,
        # so the cross-process conflicts come from the shared pharmacy
        # and records systems — the situation in which an expensive,
        # already-committed panel can fall victim to a cascading abort.
        compensatable(
            f"order_lab_panel_w{ward}",
            "lab",
            cost=LAB_PANEL_COST,
            comp_cost=8.0,
            keys=[f"lab:worklist_w{ward}"],
            p=failure_probability,
        )
    compensatable(
        "reserve_medication",
        "pharmacy",
        cost=3.0,
        comp_cost=1.0,
        keys=["pharmacy:stock"],
        p=failure_probability,
    )
    compensatable(
        "schedule_follow_up",
        "records",
        cost=1.0,
        comp_cost=0.2,
        keys=["records:appointments"],
        p=max(failure_probability, 0.05),
    )
    registry.define_pivot(
        "administer_medication",
        "pharmacy",
        cost=2.0,
        failure_probability=failure_probability / 2,
    )
    data["administer_medication"] = TransactionProgram(
        name="administer_medication",
        operations=(
            Operation.read("pharmacy:stock"),
            Operation.write("pharmacy:administered"),
        ),
    )
    registry.define_retriable("file_billing", "billing", cost=1.0)
    data["file_billing"] = TransactionProgram(
        name="file_billing",
        operations=(Operation.write("billing:claims"),),
    )
    registry.define_retriable("notify_physician", "records", cost=0.5)
    data["notify_physician"] = TransactionProgram(
        name="notify_physician",
        operations=(Operation.write("records:inbox"),),
    )

    access = {
        name: (program.read_set, program.write_set)
        for name, program in data.items()
        if not registry.get(name).is_compensation
    }
    conflicts = derive_from_read_write_sets(registry, access)

    programs = []
    for patient in range(patients):
        ward = f"admit_ward_{patient % wards}"
        panel = f"order_lab_panel_w{patient % wards}"
        programs.append(
            ProgramBuilder(
                f"order-entry[{patient}]",
                registry,
                wcc_threshold=wcc_threshold,
            )
            .step(ward)
            .step(panel)
            .step("reserve_medication")
            .pivot("administer_medication")
            .alternatives(
                lambda b: b.sequence("schedule_follow_up", "file_billing"),
                lambda b: b.sequence("notify_physician", "file_billing"),
            )
            .build()
        )
    return Scenario(
        name="hospital-order-entry",
        registry=registry,
        conflicts=conflicts,
        programs=programs,
        data_programs=data,
    )
