"""Domain scenarios from the paper's application claims (Section 6)."""

from repro.workloads.ecommerce import Scenario, payment_scenario
from repro.workloads.hospital import LAB_PANEL_COST, hospital_scenario
from repro.workloads.manufacturing import manufacturing_scenario
from repro.workloads.travel import travel_scenario

__all__ = [
    "LAB_PANEL_COST",
    "Scenario",
    "hospital_scenario",
    "manufacturing_scenario",
    "payment_scenario",
    "travel_scenario",
]
