"""Witness extraction for correctness violations.

The boolean criteria checkers answer *whether* a schedule is reducible
or recoverable; this module answers *why not*, producing concrete
witnesses for debugging protocol variants:

* :func:`explain_irreducibility` — the serialization-graph cycle among
  surviving activities, plus any compensation pairs stuck behind
  conflicting in-between activities;
* :func:`first_bad_prefix` — the shortest prefix that already violates
  reducibility (dynamic schedulers must keep every prefix reducible).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.deadlock import find_cycle_edges
from repro.theory.graphs import serialization_graph
from repro.theory.reduction import reduce_schedule
from repro.theory.schedule import (
    ProcessKey,
    ProcessSchedule,
    ScheduleEvent,
)


@dataclass
class StuckPair:
    """A compensation pair that cannot cancel."""

    regular: ScheduleEvent
    compensation: ScheduleEvent
    blockers: list[ScheduleEvent] = field(default_factory=list)

    def describe(self) -> str:
        blocked_by = ", ".join(str(b) for b in self.blockers)
        return (
            f"pair ({self.regular}, {self.compensation}) blocked by "
            f"[{blocked_by}]"
        )


@dataclass
class IrreducibilityWitness:
    """Everything needed to understand a reducibility failure."""

    cycle: list[ProcessKey]
    cycle_edges: list[tuple[ScheduleEvent, ScheduleEvent]]
    stuck_pairs: list[StuckPair]

    def describe(self) -> str:
        lines = ["schedule is not reducible"]
        if self.cycle:
            names = " -> ".join(
                f"P{pid}" if inc == 0 else f"P{pid}.{inc}"
                for pid, inc in self.cycle
            )
            lines.append(f"  serialization cycle: {names}")
            for first, second in self.cycle_edges:
                lines.append(f"    {first} <_S {second} (conflict)")
        for pair in self.stuck_pairs:
            lines.append(f"  {pair.describe()}")
        return "\n".join(lines)


def explain_irreducibility(
    schedule: ProcessSchedule,
) -> IrreducibilityWitness | None:
    """Witness for a reducibility failure, or ``None`` if reducible."""
    survivors = reduce_schedule(schedule)
    graph = serialization_graph(survivors, schedule.conflict)
    cycle_edges_raw = find_cycle_edges(graph)
    if cycle_edges_raw is None:
        return None
    cycle = [edge[0] for edge in cycle_edges_raw]
    cycle_edges = []
    for source, target in ((e[0], e[1]) for e in cycle_edges_raw):
        pair = _witness_conflict(
            survivors, schedule, source, target
        )
        if pair is not None:
            cycle_edges.append(pair)
    return IrreducibilityWitness(
        cycle=cycle,
        cycle_edges=cycle_edges,
        stuck_pairs=_stuck_pairs(schedule, survivors),
    )


def _witness_conflict(
    survivors: list[ScheduleEvent],
    schedule: ProcessSchedule,
    source: ProcessKey,
    target: ProcessKey,
) -> tuple[ScheduleEvent, ScheduleEvent] | None:
    for i, first in enumerate(survivors):
        if first.process != source:
            continue
        for second in survivors[i + 1:]:
            if second.process != target:
                continue
            if schedule.conflict(first.name, second.name):
                return (first, second)
    return None


def _stuck_pairs(
    schedule: ProcessSchedule, survivors: list[ScheduleEvent]
) -> list[StuckPair]:
    surviving_uids = {event.uid for event in survivors}
    by_uid = {event.uid: event for event in schedule.activities}
    order = {
        event.uid: index
        for index, event in enumerate(schedule.activities)
    }
    pairs = []
    for event in schedule.activities:
        if event.compensates is None:
            continue
        if event.uid not in surviving_uids:
            continue  # cancelled fine
        regular = by_uid.get(event.compensates)
        if regular is None:
            continue
        lo, hi = order[regular.uid], order[event.uid]
        blockers = [
            between
            for between in schedule.activities[lo + 1: hi]
            if between.uid in surviving_uids
            and (
                between.process == regular.process
                or schedule.conflict(between.name, regular.name)
            )
        ]
        pairs.append(
            StuckPair(
                regular=regular, compensation=event, blockers=blockers
            )
        )
    return pairs


def first_bad_prefix(schedule: ProcessSchedule) -> int | None:
    """Length of the shortest irreducible prefix, or ``None``.

    A dynamic scheduler must keep every prefix reducible (P-RED); the
    returned length pinpoints the first decision that broke it.
    """
    from repro.theory.reduction import poly_is_reducible

    for cut in range(1, len(schedule.events) + 1):
        if not poly_is_reducible(schedule.prefix(cut)):
            return cut
    return None
