"""Process schedules (paper Definition 3).

A :class:`ProcessSchedule` records the observed execution order ``<_S`` of
activities as a totally ordered event list (the simulator commits at most
one activity per virtual instant, so the observed partial order is a total
order — the common case for dynamic schedulers).  Besides regular and
compensating activities the event list contains the termination events
``C_i`` / ``A_i`` of each process, which Definition 7 (P-RC) refers to.

Process identity is ``(pid, incarnation)``: a resubmitted process is
formally a new process that shares the original's timestamp.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.errors import ScheduleError

ProcessKey = tuple[int, int]
ConflictFn = Callable[[str, str], bool]


class EventKind(enum.Enum):
    """Kinds of entries in the observed schedule."""

    ACTIVITY = "activity"
    COMMIT = "commit"
    ABORT = "abort"


@dataclass(frozen=True)
class ScheduleEvent:
    """One entry of the observed execution order ``<_S``.

    Parameters
    ----------
    position:
        Index in the total observed order.
    process:
        ``(pid, incarnation)`` of the owning process.
    kind:
        Activity, process commit (``C_i``) or process abort (``A_i``).
    name:
        Activity type name (empty for terminal events).
    uid:
        Globally unique activity invocation id (0 for terminal events).
    compensates:
        For compensating activities, the uid of the regular activity
        undone; ``None`` otherwise.
    compensatable:
        Whether the activity type has a compensating counterpart.
    point_of_no_return:
        Whether committing this activity forecloses compensation (pivot or
        retriable non-compensatable activity).
    """

    position: int
    process: ProcessKey
    kind: EventKind
    name: str = ""
    uid: int = 0
    compensates: int | None = None
    compensatable: bool = False
    point_of_no_return: bool = False

    @property
    def is_activity(self) -> bool:
        return self.kind is EventKind.ACTIVITY

    @property
    def is_compensation(self) -> bool:
        return self.compensates is not None

    @property
    def is_regular(self) -> bool:
        return self.is_activity and not self.is_compensation

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        pid, inc = self.process
        owner = f"P{pid}" if inc == 0 else f"P{pid}.{inc}"
        if self.kind is EventKind.COMMIT:
            return f"C({owner})"
        if self.kind is EventKind.ABORT:
            return f"A({owner})"
        return f"{self.name}({owner})"


class ProcessSchedule:
    """The observed schedule ``S = (P_S, A_S, ≺_S, <_S)``.

    Parameters
    ----------
    events:
        Events in observed order; positions must be 0..n-1 and increasing.
    conflict:
        Type-level conflict test ``CON`` (symmetric, perfect commutativity
        assumed).
    """

    def __init__(
        self, events: Sequence[ScheduleEvent], conflict: ConflictFn
    ) -> None:
        self.events = list(events)
        self.conflict = conflict
        for index, event in enumerate(self.events):
            if event.position != index:
                raise ScheduleError(
                    f"event {event} has position {event.position}, "
                    f"expected {index}"
                )
        self._terminal: dict[ProcessKey, ScheduleEvent] = {}
        for event in self.events:
            if event.kind is not EventKind.ACTIVITY:
                if event.process in self._terminal:
                    raise ScheduleError(
                        f"process {event.process} terminates twice"
                    )
                self._terminal[event.process] = event

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def activities(self) -> list[ScheduleEvent]:
        """Only the activity events, in observed order."""
        return [e for e in self.events if e.is_activity]

    @property
    def processes(self) -> list[ProcessKey]:
        """All processes appearing in the schedule (stable order)."""
        seen: dict[ProcessKey, None] = {}
        for event in self.events:
            seen.setdefault(event.process, None)
        return list(seen)

    def events_of(self, process: ProcessKey) -> list[ScheduleEvent]:
        return [e for e in self.events if e.process == process]

    def terminal_event(self, process: ProcessKey) -> ScheduleEvent | None:
        """The ``C_i`` / ``A_i`` event of ``process``, if present."""
        return self._terminal.get(process)

    @property
    def is_complete(self) -> bool:
        """Whether every process has terminated (Definition 3)."""
        return all(p in self._terminal for p in self.processes)

    def prefix(self, length: int) -> "ProcessSchedule":
        """The prefix of the first ``length`` events, re-wrapped."""
        return ProcessSchedule(self.events[:length], self.conflict)

    # ------------------------------------------------------------------
    # conflict helpers
    # ------------------------------------------------------------------
    def conflicting_activity_pairs(
        self,
    ) -> list[tuple[ScheduleEvent, ScheduleEvent]]:
        """Ordered cross-process conflicting activity pairs ``(a, b)``.

        ``a`` precedes ``b`` in ``<_S`` and ``CON(a, b)`` holds.
        """
        acts = self.activities
        pairs = []
        for i, first in enumerate(acts):
            for second in acts[i + 1:]:
                if first.process == second.process:
                    continue
                if self.conflict(first.name, second.name):
                    pairs.append((first, second))
        return pairs

    def next_point_of_no_return(
        self, process: ProcessKey, after_position: int
    ) -> ScheduleEvent | None:
        """``a_i*``: the process's next no-return event after a position.

        Returns the first point-of-no-return activity of ``process``
        following ``after_position`` in the observed order, or its commit
        event, or ``None`` if neither has been observed yet (partial
        schedule).
        """
        for event in self.events[after_position + 1:]:
            if event.process != process:
                continue
            if event.is_activity and event.point_of_no_return:
                return event
            if event.kind is EventKind.COMMIT:
                return event
        return None

    def __len__(self) -> int:
        return len(self.events)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return " ".join(str(e) for e in self.events)
