"""Correctness theory: schedules, reduction, and the RED/CT/P-RC criteria."""

from repro.theory.criteria import (
    RecoverabilityReport,
    RecoverabilityViolation,
    check_all_prefixes_recoverable,
    check_process_recoverability,
    has_correct_termination,
    is_prefix_reducible,
    is_process_recoverable,
    is_reducible,
)
from repro.theory.explain import (
    IrreducibilityWitness,
    StuckPair,
    explain_irreducibility,
    first_bad_prefix,
)
from repro.theory.graphs import (
    is_conflict_serializable,
    serialization_graph,
    serialization_order,
)
from repro.theory.reduction import (
    deciders_agree,
    exact_is_reducible,
    poly_is_reducible,
    reduce_schedule,
)
from repro.theory.schedule import (
    EventKind,
    ProcessSchedule,
    ScheduleEvent,
)

__all__ = [
    "EventKind",
    "IrreducibilityWitness",
    "ProcessSchedule",
    "StuckPair",
    "explain_irreducibility",
    "first_bad_prefix",
    "RecoverabilityReport",
    "RecoverabilityViolation",
    "ScheduleEvent",
    "check_all_prefixes_recoverable",
    "check_process_recoverability",
    "deciders_agree",
    "exact_is_reducible",
    "has_correct_termination",
    "is_conflict_serializable",
    "is_prefix_reducible",
    "is_process_recoverable",
    "is_reducible",
    "poly_is_reducible",
    "reduce_schedule",
    "serialization_graph",
    "serialization_order",
]
