"""Reducibility of process schedules (paper Definition 4).

A process schedule is *reducible* (RED) when finitely many applications of

* the **commutativity rule** — adjacent commuting activities of different
  processes may swap — and
* the **compensation rule** — an adjacent pair ``(a, a⁻¹)`` of the same
  process may be removed —

transform it into a *serial* schedule (each process's surviving activities
contiguous).  Two independent deciders are provided:

:func:`exact_is_reducible`
    A memoized breadth-first search over literal rule applications.
    Complete but exponential; intended for schedules of at most a dozen
    activities (property tests cross-validate the polynomial decider
    against it).

:func:`poly_is_reducible`
    A polynomial decision procedure: greedily cancel compensated pairs
    whose open interval contains no surviving conflicting activity of
    another process and no surviving activity of the same process, then
    test acyclicity of the process-level serialization graph over the
    survivors.  Cancelling a removable pair only ever deletes conflict
    edges and unblocks other pairs, so the greedy fixpoint is confluent
    and the procedure is exact under perfect commutativity.

Both deciders deliberately refrain from intra-process swaps (rule 1,
case ``i = j``): the observed order of one process's activities is treated
as required.  This is conservative — it can only under-approximate
reducibility — and the protocol's schedules pass without intra-process
swaps, which keeps the two deciders comparable.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.theory.graphs import is_conflict_serializable
from repro.theory.schedule import ConflictFn, ProcessSchedule, ScheduleEvent


def _activity_list(schedule: ProcessSchedule) -> list[ScheduleEvent]:
    return schedule.activities


# ----------------------------------------------------------------------
# exact decider (search)
# ----------------------------------------------------------------------
def exact_is_reducible(
    schedule: ProcessSchedule, max_states: int = 200_000
) -> bool:
    """Decide RED by exhaustive rule application (small schedules only).

    Raises
    ------
    RuntimeError
        If the search frontier exceeds ``max_states`` states — callers
        should fall back to :func:`poly_is_reducible` for big inputs.
    """
    events = _activity_list(schedule)
    conflict = schedule.conflict
    initial = tuple(e.uid for e in events)
    info = {e.uid: e for e in events}

    def is_serial(state: tuple[int, ...]) -> bool:
        seen: list = []
        last = None
        for uid in state:
            proc = info[uid].process
            if proc != last:
                if proc in seen:
                    return False
                seen.append(proc)
                last = proc
        return True

    frontier = [initial]
    visited = {initial}
    while frontier:
        state = frontier.pop()
        if is_serial(state):
            return True
        if len(visited) > max_states:
            raise RuntimeError(
                "exact reducibility search exceeded the state budget; "
                "use poly_is_reducible for schedules this large"
            )
        for succ in _successors(state, info, conflict):
            if succ not in visited:
                visited.add(succ)
                frontier.append(succ)
    return False


def _successors(state, info, conflict):
    for i in range(len(state) - 1):
        first = info[state[i]]
        second = info[state[i + 1]]
        if (
            first.process != second.process
            and not conflict(first.name, second.name)
        ):
            swapped = list(state)
            swapped[i], swapped[i + 1] = swapped[i + 1], swapped[i]
            yield tuple(swapped)
        if (
            first.process == second.process
            and second.compensates == first.uid
        ):
            yield state[:i] + state[i + 2:]


# ----------------------------------------------------------------------
# polynomial decider
# ----------------------------------------------------------------------
def poly_is_reducible(schedule: ProcessSchedule) -> bool:
    """Decide RED in polynomial time (see module docstring)."""
    survivors = reduce_schedule(schedule)
    return is_conflict_serializable(survivors, schedule.conflict)


def reduce_schedule(
    schedule: ProcessSchedule,
) -> list[ScheduleEvent]:
    """Apply the compensation rule to a fixpoint; return the survivors.

    A compensated pair ``(a, a⁻¹)`` is cancelled when the events observed
    strictly between them that are still surviving contain neither an
    activity conflicting with ``a`` from another process nor any activity
    of ``a``'s own process (same-process activities cannot be swapped out
    of the interval, so they must cancel first).
    """
    events = _activity_list(schedule)
    conflict = schedule.conflict
    order = {e.uid: idx for idx, e in enumerate(events)}
    by_uid = {e.uid: e for e in events}
    pairs: list[tuple[ScheduleEvent, ScheduleEvent]] = []
    for event in events:
        if event.compensates is not None:
            regular = by_uid.get(event.compensates)
            if regular is not None:
                pairs.append((regular, event))
    removed: set[int] = set()

    changed = True
    while changed:
        changed = False
        for regular, comp in pairs:
            if regular.uid in removed or comp.uid in removed:
                continue
            lo, hi = order[regular.uid], order[comp.uid]
            if lo > hi:
                continue  # malformed: compensation observed first
            blocked = False
            for between in events[lo + 1: hi]:
                if between.uid in removed:
                    continue
                if between.process == regular.process:
                    blocked = True
                    break
                if conflict(between.name, regular.name):
                    blocked = True
                    break
            if not blocked:
                removed.add(regular.uid)
                removed.add(comp.uid)
                changed = True
    return [e for e in events if e.uid not in removed]


def deciders_agree(
    schedule: ProcessSchedule,
) -> tuple[bool, bool]:
    """Run both deciders; returns ``(exact, polynomial)`` verdicts."""
    return exact_is_reducible(schedule), poly_is_reducible(schedule)
