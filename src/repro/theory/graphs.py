"""Serialization-graph utilities for process schedules.

Built on the pure-Python :class:`repro.core.deadlock.Digraph`; the
networkx equivalents survive only as oracles in
:mod:`repro.core.reference`.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.deadlock import Digraph, has_cycle, topological_order
from repro.theory.schedule import ConflictFn, ProcessKey, ScheduleEvent


def serialization_graph(
    activities: Iterable[ScheduleEvent], conflict: ConflictFn
) -> Digraph:
    """Process-level conflict graph over the given activity events.

    Nodes are process keys; an edge ``P_i -> P_j`` is added whenever some
    activity of ``P_i`` precedes a conflicting activity of ``P_j`` in the
    observed order.  Compensating activities participate like regular ones
    (perfect commutativity makes their conflict behaviour identical to
    their regular activity's).
    """
    events = sorted(activities, key=lambda e: e.position)
    graph = Digraph()
    for event in events:
        graph.add_node(event.process)
    for i, first in enumerate(events):
        for second in events[i + 1:]:
            if first.process == second.process:
                continue
            if conflict(first.name, second.name):
                graph.add_edge(first.process, second.process)
    return graph


def is_conflict_serializable(
    activities: Iterable[ScheduleEvent], conflict: ConflictFn
) -> bool:
    """Acyclicity of the process-level serialization graph."""
    return not has_cycle(
        serialization_graph(activities, conflict).adj
    )


def serialization_order(
    activities: Iterable[ScheduleEvent], conflict: ConflictFn
) -> list[ProcessKey] | None:
    """A topological process order witnessing serializability, if any."""
    graph = serialization_graph(activities, conflict)
    if has_cycle(graph.adj):
        return None
    return topological_order(graph)
