"""Serialization-graph utilities for process schedules."""

from __future__ import annotations

from collections.abc import Iterable

import networkx as nx

from repro.theory.schedule import ConflictFn, ProcessKey, ScheduleEvent


def serialization_graph(
    activities: Iterable[ScheduleEvent], conflict: ConflictFn
) -> "nx.DiGraph":
    """Process-level conflict graph over the given activity events.

    Nodes are process keys; an edge ``P_i -> P_j`` is added whenever some
    activity of ``P_i`` precedes a conflicting activity of ``P_j`` in the
    observed order.  Compensating activities participate like regular ones
    (perfect commutativity makes their conflict behaviour identical to
    their regular activity's).
    """
    events = sorted(activities, key=lambda e: e.position)
    graph: nx.DiGraph = nx.DiGraph()
    for event in events:
        graph.add_node(event.process)
    for i, first in enumerate(events):
        for second in events[i + 1:]:
            if first.process == second.process:
                continue
            if conflict(first.name, second.name):
                graph.add_edge(first.process, second.process)
    return graph


def is_conflict_serializable(
    activities: Iterable[ScheduleEvent], conflict: ConflictFn
) -> bool:
    """Acyclicity of the process-level serialization graph."""
    return nx.is_directed_acyclic_graph(
        serialization_graph(activities, conflict)
    )


def serialization_order(
    activities: Iterable[ScheduleEvent], conflict: ConflictFn
) -> list[ProcessKey] | None:
    """A topological process order witnessing serializability, if any."""
    graph = serialization_graph(activities, conflict)
    if not nx.is_directed_acyclic_graph(graph):
        return None
    return list(nx.topological_sort(graph))
