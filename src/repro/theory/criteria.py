"""Correctness criteria for process schedules (paper Definitions 4–7).

* :func:`is_reducible` — RED (Definition 4), polynomial decider.
* :func:`is_prefix_reducible` — P-RED (Definition 5): every prefix RED.
* :func:`has_correct_termination` — CT (Definition 6): the *complete*
  schedule is P-RED.  The simulator always runs workloads to quiescence,
  so completed schedules are directly available; checking a partial
  schedule for CT is a caller error.
* :func:`is_process_recoverable` — P-RC (Definition 7): no completing
  process ever depends on a running one.

All functions take a :class:`~repro.theory.schedule.ProcessSchedule`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ScheduleError
from repro.theory.reduction import poly_is_reducible
from repro.theory.schedule import (
    EventKind,
    ProcessSchedule,
    ScheduleEvent,
)


def is_reducible(schedule: ProcessSchedule) -> bool:
    """RED: the schedule can be transformed into a serial one."""
    return poly_is_reducible(schedule)


def is_prefix_reducible(
    schedule: ProcessSchedule, stride: int = 1
) -> bool:
    """P-RED: every prefix of the schedule is reducible.

    ``stride`` samples prefixes for large schedules (the full schedule is
    always included); use the default of 1 for exhaustive checking.
    """
    length = len(schedule.events)
    checked: set[int] = set()
    for cut in range(1, length + 1, max(1, stride)):
        checked.add(cut)
    checked.add(length)
    for cut in sorted(checked):
        if not poly_is_reducible(schedule.prefix(cut)):
            return False
    return True


def has_correct_termination(
    schedule: ProcessSchedule, stride: int = 1
) -> bool:
    """CT: the completed schedule is prefix-reducible (Definition 6)."""
    if not schedule.is_complete:
        raise ScheduleError(
            "correct termination is defined over complete schedules; "
            "complete the schedule (terminate all processes) first"
        )
    return is_prefix_reducible(schedule, stride=stride)


@dataclass
class RecoverabilityViolation:
    """A witness that Definition 7 is violated."""

    earlier: ScheduleEvent
    later: ScheduleEvent
    reason: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"P-RC violation between {self.earlier} and {self.later}: "
            f"{self.reason}"
        )


@dataclass
class RecoverabilityReport:
    """Outcome of a P-RC check, with violation witnesses."""

    violations: list[RecoverabilityViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def check_process_recoverability(
    schedule: ProcessSchedule,
) -> RecoverabilityReport:
    """Evaluate Definition 7 and collect all violations.

    For every cross-process conflicting pair ``a_ik^c <_S a_jm`` where
    ``a_ik`` is compensatable and neither its compensation nor its
    process's next point of no return precedes ``a_jm``:

    1. if ``a_jm`` is compensatable and ``a_j*`` has been observed, then
       ``a_i* <_S a_j*`` must hold;
    2. if ``a_jm`` is not compensatable, then ``a_i* <_S a_jm`` must hold.
    """
    report = RecoverabilityReport()
    comp_pos: dict[int, int] = {}
    for event in schedule.events:
        if event.is_activity and event.compensates is not None:
            comp_pos[event.compensates] = event.position

    for earlier, later in schedule.conflicting_activity_pairs():
        if not earlier.compensatable or earlier.is_compensation:
            continue
        if later.is_compensation:
            # Compensations are protocol-generated; their ordering
            # constraints are captured by the C⁻¹-Rule and checked via
            # reducibility, not via Definition 7.
            continue
        undo = comp_pos.get(earlier.uid)
        if undo is not None and undo < later.position:
            continue  # a_ik⁻¹ <_S a_jm: the dependency was dissolved
        i_star = schedule.next_point_of_no_return(
            earlier.process, earlier.position
        )
        if i_star is not None and i_star.position < later.position:
            continue  # a_i* <_S a_jm: P_i already committed past a_ik
        if later.compensatable:
            j_star = schedule.next_point_of_no_return(
                later.process, later.position
            )
            if j_star is None:
                continue  # a_j* not in S: no constraint yet
            if i_star is None or i_star.position >= j_star.position:
                report.violations.append(
                    RecoverabilityViolation(
                        earlier,
                        later,
                        "the reader's point of no return "
                        f"{j_star} precedes the writer's "
                        f"({i_star})",
                    )
                )
        else:
            if i_star is None or i_star.position >= later.position:
                report.violations.append(
                    RecoverabilityViolation(
                        earlier,
                        later,
                        "a non-compensatable activity executed before "
                        "the conflicting writer reached its point of "
                        "no return",
                    )
                )
    return report


def is_process_recoverable(schedule: ProcessSchedule) -> bool:
    """P-RC: Definition 7 holds (boolean form)."""
    return check_process_recoverability(schedule).ok


def check_all_prefixes_recoverable(schedule: ProcessSchedule) -> bool:
    """Whether every prefix of the schedule is P-RC.

    Definition 7 is monotone in the following sense only: new events can
    *create* violations but can also *discharge* the ``a_j* in S`` guard,
    so prefix checking is genuinely stronger and is what a dynamic
    scheduler must guarantee.
    """
    for cut in range(1, len(schedule.events) + 1):
        if not is_process_recoverable(schedule.prefix(cut)):
            return False
    return True
