"""Command-line interface.

Exposes the library's main entry points without writing Python::

    python -m repro exhibits
    python -m repro run --processes 12 --density 0.4 --check
    python -m repro compare --protocols serial s2pl process-locking
    python -m repro scenario hospital --protocol process-locking
    python -m repro sweep-threshold --thresholds 0 10 40 inf
    python -m repro trace --seed 7 --out trace-out
    python -m repro explain 12 --trace trace-out

Every command prints plain-text tables (see
:mod:`repro.analysis.tables`) and exits non-zero if a requested
correctness check fails.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from collections.abc import Sequence

from repro import config as repro_config
from repro.analysis.exhibits import all_exhibits_text
from repro.analysis.export import rows_to_json
from repro.analysis.tables import render_dict_table
from repro.analysis.timeline import render_timeline
from repro.core.conformance import run_conformance
from repro.scheduler.manager import ManagerConfig, make_manager
from repro.sim.metrics import summarize
from repro.sim.runner import (
    PROTOCOL_FACTORIES,
    make_protocol,
    run_workload,
    schedule_of,
)
from repro.sim.workload import WorkloadSpec, build_workload
from repro.theory.criteria import (
    has_correct_termination,
    is_process_recoverable,
)
from repro.workloads import (
    hospital_scenario,
    manufacturing_scenario,
    payment_scenario,
    travel_scenario,
)

SCENARIOS = {
    "payment": payment_scenario,
    "travel": travel_scenario,
    "hospital": hospital_scenario,
    "manufacturing": manufacturing_scenario,
}


def _nonneg_int(raw: str) -> int:
    """argparse type: an integer >= 0, with a one-line error."""
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {raw!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected an integer >= 0, got {value}"
        )
    return value


def _positive_int(raw: str) -> int:
    """argparse type: an integer >= 1, with a one-line error."""
    value = _nonneg_int(raw)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected an integer >= 1, got {value}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Process locking (PODS 2001) — run exhibits, workloads, "
            "and protocol comparisons"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "exhibits",
        help="regenerate the paper's exhibits (Tables 1-2, Figure 1)",
    )

    run = sub.add_parser(
        "run", help="run a synthetic workload under one protocol"
    )
    _add_workload_args(run)
    run.add_argument(
        "--protocol",
        default="process-locking",
        choices=sorted(PROTOCOL_FACTORIES),
    )
    run.add_argument(
        "--check",
        action="store_true",
        help="verify CT and P-RC on the observed schedule",
    )
    run.add_argument(
        "--trace",
        action="store_true",
        help="print the observed schedule",
    )
    run.add_argument(
        "--timeline",
        action="store_true",
        help="print an ASCII per-process timeline of the schedule",
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="emit the metrics row as JSON instead of a table",
    )

    compare = sub.add_parser(
        "compare", help="run one workload under several protocols"
    )
    _add_workload_args(compare)
    compare.add_argument(
        "--protocols",
        nargs="+",
        default=["serial", "s2pl", "osl-pure", "process-locking"],
        choices=sorted(PROTOCOL_FACTORIES),
    )
    compare.add_argument(
        "--json",
        action="store_true",
        help="emit the metric rows as JSON instead of a table",
    )

    trace = sub.add_parser(
        "trace",
        help=(
            "run a workload with decision-level tracing and export "
            "JSONL + Perfetto JSON + wait-for DOT + series"
        ),
    )
    _add_workload_args(trace, trace_out=False)
    trace.add_argument(
        "--protocol",
        default="process-locking",
        choices=sorted(PROTOCOL_FACTORIES),
    )
    trace.add_argument(
        "--out",
        default="trace-out",
        help="output directory for the trace artifacts",
    )

    explain = sub.add_parser(
        "explain",
        help=(
            "replay a JSONL trace into a causal account of one "
            "process (why it deferred, who aborted it, how it ended)"
        ),
    )
    explain.add_argument(
        "pid",
        type=int,
        nargs="?",
        default=None,
        help=(
            "process id to explain; omitted, lists the deferred "
            "processes most-deferred first"
        ),
    )
    explain.add_argument(
        "--trace",
        default="trace-out",
        help=(
            "trace to read: an events.jsonl file or the directory "
            "containing it (default: trace-out)"
        ),
    )

    scenario = sub.add_parser(
        "scenario", help="run a domain scenario end to end"
    )
    scenario.add_argument("name", choices=sorted(SCENARIOS))
    scenario.add_argument(
        "--protocol",
        default="process-locking",
        choices=sorted(PROTOCOL_FACTORIES),
    )
    scenario.add_argument("--seed", type=int, default=0)
    _add_parallel_args(scenario)
    scenario.add_argument(
        "--trace-out",
        default=None,
        metavar="DIR",
        help="trace the run and write the export artifacts to DIR",
    )

    conformance = sub.add_parser(
        "conformance",
        help="run the rule-conformance checklist against a protocol",
    )
    conformance.add_argument(
        "protocol",
        nargs="?",
        default=None,
        choices=sorted(PROTOCOL_FACTORIES),
        help="protocol to check (default: all)",
    )

    sweep = sub.add_parser(
        "sweep-threshold",
        help="cost-threshold sweep (the Section-4 spectrum)",
    )
    _add_workload_args(sweep)
    sweep.add_argument(
        "--thresholds",
        nargs="+",
        default=["0", "10", "40", "inf"],
        help="Wcc* values ('inf' allowed)",
    )

    chaos = sub.add_parser(
        "chaos",
        help=(
            "deterministic fault-injection campaign (plans × workloads "
            "× protocols) asserting termination, CT, P-RC, trace "
            "splicing, and WAL recovery per run"
        ),
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--quick",
        action="store_true",
        help="trimmed campaign for CI smoke runs",
    )
    chaos.add_argument(
        "--protocols",
        nargs="+",
        default=None,
        choices=sorted(PROTOCOL_FACTORIES),
        help="protocols to sweep (default: the CT-guaranteeing set)",
    )
    chaos.add_argument(
        "--verbose",
        action="store_true",
        help="print the per-run table even when everything passes",
    )
    chaos.add_argument(
        "--json",
        action="store_true",
        help="emit per-run rows as JSON instead of tables",
    )
    chaos.add_argument(
        "--dump-schedules",
        action="store_true",
        help="print each plan's compiled fault schedule (canonical form)",
    )
    chaos.add_argument(
        "--durability",
        action="store_true",
        help=(
            "run the durability chaos campaign instead: torn tails, "
            "checksum corruption, and partial-fsync loss against an "
            "on-disk store, asserting recovery never applies a "
            "partial record"
        ),
    )

    soak = sub.add_parser(
        "soak",
        help=(
            "long-horizon soak campaign: rotating workloads × fault "
            "families with circuit breakers and periodic audits "
            "(exits non-zero unless every round passes and the event "
            "floor is met)"
        ),
    )
    soak.add_argument("--seed", type=int, default=0)
    soak.add_argument("--rounds", type=int, default=8)
    soak.add_argument("--processes", type=int, default=16)
    soak.add_argument("--threshold", type=float, default=25.0)
    soak.add_argument(
        "--protocol",
        default="process-locking",
        choices=sorted(PROTOCOL_FACTORIES),
    )
    soak.add_argument(
        "--audit-every",
        type=int,
        default=16,
        help="structural-audit sampling cadence (1 = every event)",
    )
    soak.add_argument(
        "--min-events",
        type=int,
        default=1000,
        help="fail unless at least this many events were processed",
    )
    soak.add_argument(
        "--no-resilience",
        action="store_true",
        help="run without the circuit-breaker resilience layer",
    )
    soak.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report instead of tables",
    )
    _add_parallel_args(soak)

    serve = sub.add_parser(
        "serve",
        help=(
            "run the process-locking service: a JSON-lines TCP front "
            "door for SUBMIT/STATUS/CANCEL/SUBSCRIBE/STATS/CHECK/DRAIN "
            "(see docs/service.md)"
        ),
    )
    serve.add_argument(
        "--host",
        default=None,
        help="bind address (default: REPRO_SERVE_HOST or 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=_nonneg_int,
        default=None,
        help="TCP port, 0 = ephemeral (default: REPRO_SERVE_PORT)",
    )
    serve.add_argument(
        "--protocol",
        default="process-locking",
        choices=sorted(PROTOCOL_FACTORIES),
    )
    serve.add_argument(
        "--processes",
        type=_positive_int,
        default=8,
        help="catalog size: programs clients can SUBMIT by index",
    )
    serve.add_argument("--density", type=float, default=0.3)
    serve.add_argument("--failure-prob", type=float, default=0.05)
    serve.add_argument("--threshold", type=float, default=math.inf)
    serve.add_argument("--seed", type=int, default=0)
    _add_parallel_args(serve)
    serve.add_argument(
        "--time-scale",
        type=float,
        default=0.0,
        help=(
            "virtual-time units per wall second; 0 (default) drains "
            "eagerly after each command batch (deterministic), > 0 "
            "paces the simulation against the wall clock"
        ),
    )
    serve.add_argument(
        "--backlog",
        type=_positive_int,
        default=None,
        help=(
            "submission backlog before SUBMITs are shed at the socket "
            "(default: REPRO_SERVE_BACKLOG)"
        ),
    )
    serve.add_argument(
        "--metrics-port",
        type=_nonneg_int,
        default=None,
        help=(
            "HTTP /metrics sidecar port, 0 = ephemeral (default: "
            "REPRO_SERVE_METRICS_PORT; unset = no sidecar)"
        ),
    )
    serve.add_argument(
        "--store",
        default=None,
        choices=("log", "sqlite", "memory"),
        help=(
            "durable persistence backend; submissions and outcomes "
            "survive kill -9 and replay on restart (default: "
            "REPRO_STORE; unset = in-memory only)"
        ),
    )
    serve.add_argument(
        "--store-path",
        default=None,
        metavar="DIR",
        help=(
            "store directory (default: REPRO_STORE_PATH, else a "
            "fresh temporary directory)"
        ),
    )
    serve.add_argument(
        "--store-fsync",
        default=None,
        choices=("always", "batch", "never"),
        help="fsync policy (default: REPRO_STORE_FSYNC, batch)",
    )
    serve.add_argument(
        "--snapshot-every",
        type=_positive_int,
        default=None,
        help=(
            "journal records between snapshots (default: "
            "REPRO_STORE_SNAPSHOT_EVERY)"
        ),
    )

    store = sub.add_parser(
        "store",
        help=(
            "inspect, verify, or compact a durable store written by "
            "`repro serve --store` (see docs/persistence.md)"
        ),
    )
    store.add_argument(
        "action",
        choices=("inspect", "verify", "compact"),
        help=(
            "inspect = summarize meta/journal/snapshot/subsystems; "
            "verify = walk every frame, exit 2 on corruption; "
            "compact = drop records recovery can no longer need"
        ),
    )
    store.add_argument(
        "--store",
        default=None,
        choices=("log", "sqlite", "memory"),
        help="backend kind (default: REPRO_STORE, else log)",
    )
    store.add_argument(
        "--path",
        default=None,
        metavar="DIR",
        help="store directory (default: REPRO_STORE_PATH)",
    )
    store.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of text",
    )

    top = sub.add_parser(
        "top",
        help=(
            "live terminal dashboard for a running `repro serve`: "
            "polls stats + metrics over the wire protocol"
        ),
    )
    top.add_argument(
        "--host",
        default="127.0.0.1",
        help="service address (default: 127.0.0.1)",
    )
    top.add_argument(
        "--port",
        type=_nonneg_int,
        default=7453,
        help="service TCP port (default: 7453)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between polls (default: 1.0)",
    )
    top.add_argument(
        "--iterations",
        type=_nonneg_int,
        default=0,
        help="frames to render before exiting (0 = until Ctrl-C)",
    )
    top.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of redrawing in place",
    )

    config = sub.add_parser(
        "config",
        help=(
            "show every REPRO_* knob: effective value, origin "
            "(override/env/default), and what it does"
        ),
    )
    config.add_argument(
        "--json",
        action="store_true",
        help="emit the knob table as JSON instead of text",
    )

    profile = sub.add_parser(
        "profile",
        help=(
            "run one workload with phase-level wall-clock attribution "
            "(grant/park/wake/deadlock/trace-emit shares)"
        ),
    )
    _add_workload_args(profile, trace_out=False)
    profile.add_argument(
        "--protocol",
        default="process-locking",
        choices=sorted(PROTOCOL_FACTORIES),
    )
    profile.add_argument(
        "--traced",
        action="store_true",
        help=(
            "profile with decision-level tracing enabled, so the "
            "trace-emit phase is exercised (events stay in memory)"
        ),
    )
    profile.add_argument(
        "--json",
        action="store_true",
        help="emit the phase breakdown as JSON instead of a table",
    )
    profile.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also write the JSON phase breakdown to FILE",
    )
    return parser


def _add_workload_args(
    parser: argparse.ArgumentParser, trace_out: bool = True
) -> None:
    """Workload parameters shared by every workload-driven subcommand.

    Defined once so `run`, `compare`, `sweep-threshold`, and `trace`
    cannot drift apart in their defaults.  ``trace_out=False`` skips the
    ``--trace-out`` flag (the `trace` subcommand always traces and names
    its directory via ``--out``).
    """
    parser.add_argument("--processes", type=int, default=8)
    parser.add_argument("--activity-types", type=int, default=12)
    parser.add_argument("--density", type=float, default=0.3)
    parser.add_argument("--failure-prob", type=float, default=0.05)
    parser.add_argument("--threshold", type=float, default=math.inf)
    parser.add_argument("--seed", type=int, default=0)
    _add_parallel_args(parser)
    parser.add_argument(
        "--grounded",
        action="store_true",
        help="back activities with real subsystem transaction programs",
    )
    if trace_out:
        parser.add_argument(
            "--trace-out",
            default=None,
            metavar="DIR",
            help=(
                "enable decision-level tracing and write the export "
                "artifacts (events.jsonl, trace.perfetto.json, "
                "waitfor.dot, series.json) to DIR"
            ),
        )


def _add_parallel_args(parser: argparse.ArgumentParser) -> None:
    """Parallel-execution knobs (shared; schedules stay byte-identical)."""
    parser.add_argument(
        "--workers",
        type=_nonneg_int,
        default=0,
        help=(
            "shard worker threads (0 = sequential manager; N >= 1 "
            "selects the thread-per-shard manager, byte-identical "
            "schedules)"
        ),
    )
    parser.add_argument(
        "--batch-k",
        type=_positive_int,
        default=1,
        help=(
            "batch lock-acquisition depth: upcoming activities "
            "pre-declared per shard visit (parallel manager only)"
        ),
    )


def _parallel_config(args: argparse.Namespace, **kwargs) -> ManagerConfig:
    """A ManagerConfig carrying the CLI's parallel knobs."""
    return ManagerConfig(
        workers=getattr(args, "workers", 0),
        batch_k=getattr(args, "batch_k", 1),
        **kwargs,
    )


def _make_tracer(args: argparse.Namespace):
    """A live tracer when ``--trace-out`` was given, else ``None``."""
    if getattr(args, "trace_out", None) is None:
        return None
    from repro.obs import Tracer

    return Tracer()


def _export_trace(tracer, out_dir: str) -> None:
    if tracer is None:
        return
    from repro.obs import export_all

    paths = export_all(tracer, out_dir)
    names = ", ".join(path.name for path in paths.values())
    print(f"trace: {len(tracer)} events -> {out_dir}/ ({names})")


def _spec_from(args: argparse.Namespace) -> WorkloadSpec:
    return WorkloadSpec(
        n_processes=args.processes,
        n_activity_types=args.activity_types,
        conflict_density=args.density,
        failure_probability=args.failure_prob,
        wcc_threshold=args.threshold,
        grounded=args.grounded,
        seed=args.seed,
    )


def _metrics_rows(named_metrics) -> str:
    return render_dict_table([m.as_row() for m in named_metrics])


def cmd_exhibits(args: argparse.Namespace) -> int:
    print(all_exhibits_text())
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    workload = build_workload(_spec_from(args))
    tracer = _make_tracer(args)
    result = run_workload(
        workload, args.protocol, seed=args.seed,
        config=_parallel_config(args, audit=True),
        tracer=tracer,
    )
    metrics = summarize(args.protocol, result)
    if args.json:
        print(rows_to_json([metrics]))
    else:
        print(_metrics_rows([metrics]))
    _export_trace(tracer, args.trace_out)
    if args.timeline:
        print()
        print(render_timeline(schedule_of(workload, result)))
    if args.trace:
        print()
        print("observed schedule:")
        print(" ", " ".join(str(e) for e in result.trace.events))
    if args.check:
        schedule = schedule_of(workload, result)
        ct = has_correct_termination(schedule, stride=2)
        prc = is_process_recoverable(schedule)
        print()
        print(f"CT   (Theorem 1): {ct}")
        print(f"P-RC (Theorem 2): {prc}")
        if not (ct and prc):
            return 1
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    workload = build_workload(_spec_from(args))
    metrics = []
    for name in args.protocols:
        tracer = _make_tracer(args)
        result = run_workload(
            workload, name, seed=args.seed,
            config=_parallel_config(args), tracer=tracer,
        )
        metrics.append(summarize(name, result))
        if tracer is not None:
            _export_trace(tracer, f"{args.trace_out}/{name}")
    if args.json:
        print(rows_to_json(metrics))
    else:
        print(_metrics_rows(metrics))
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    scenario = SCENARIOS[args.name]()
    factory = PROTOCOL_FACTORIES[args.protocol]
    protocol = factory(scenario.registry, scenario.conflicts)
    tracer = _make_tracer(args)
    manager = make_manager(
        protocol,
        subsystems=scenario.make_subsystems(),
        config=_parallel_config(args, audit=True),
        seed=args.seed,
        tracer=tracer,
    )
    for program in scenario.programs:
        manager.submit(program)
    result = manager.run()
    print(f"scenario: {scenario.name} under {args.protocol}")
    print(_metrics_rows([summarize(args.protocol, result)]))
    _export_trace(tracer, args.trace_out)
    schedule = result.trace.to_schedule(scenario.conflicts.conflict)
    print()
    print(f"CT   (Theorem 1): {has_correct_termination(schedule)}")
    print(f"P-RC (Theorem 2): {is_process_recoverable(schedule)}")
    return 0


def cmd_sweep_threshold(args: argparse.Namespace) -> int:
    rows = []
    for raw in args.thresholds:
        threshold = math.inf if raw in ("inf", "Inf") else float(raw)
        spec = _spec_from(args).with_(wcc_threshold=threshold)
        workload = build_workload(spec)
        tracer = _make_tracer(args)
        result = run_workload(
            workload, "process-locking", seed=args.seed,
            config=_parallel_config(args), tracer=tracer,
        )
        if tracer is not None:
            _export_trace(tracer, f"{args.trace_out}/wcc-{raw}")
        metrics = summarize("process-locking", result)
        rows.append(
            {
                "Wcc*": raw,
                "committed": metrics.committed,
                "cascades": metrics.cascade_victims,
                "comp_cost": round(metrics.compensated_cost, 1),
                "concurrency": round(metrics.mean_concurrency, 2),
                "makespan": round(metrics.makespan, 1),
            }
        )
    print(render_dict_table(rows, title="Wcc* sweep"))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import Tracer, deferred_pids, export_all

    workload = build_workload(_spec_from(args))
    tracer = Tracer()
    result = run_workload(
        workload, args.protocol, seed=args.seed,
        config=_parallel_config(args), tracer=tracer,
    )
    metrics = summarize(args.protocol, result)
    print(_metrics_rows([metrics]))
    paths = export_all(tracer, args.out)
    print()
    print(f"traced {len(tracer)} events:")
    for name, path in sorted(paths.items()):
        print(f"  {name:<10} {path}")
    pids = deferred_pids(tracer.records())
    if pids:
        shown = ", ".join(f"P{pid}" for pid in pids[:8])
        print()
        print(
            f"deferred processes (most deferred first): {shown}\n"
            f"inspect one with: repro explain {pids[0]} "
            f"--trace {args.out}"
        )
    print(
        f"open {args.out}/trace.perfetto.json at https://ui.perfetto.dev"
    )
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs import deferred_pids, explain_process, read_jsonl

    source = Path(args.trace)
    if source.is_dir():
        source = source / "events.jsonl"
    if not source.exists():
        print(
            f"no trace at {source}; produce one with `repro trace` or "
            f"any workload command's --trace-out DIR",
            file=sys.stderr,
        )
        return 2
    try:
        records = read_jsonl(source)
    except (OSError, UnicodeDecodeError, ValueError) as error:
        print(f"unreadable trace {source}: {error}", file=sys.stderr)
        return 2
    if args.pid is None:
        pids = deferred_pids(records)
        if not pids:
            print("no deferred processes in this trace")
            return 0
        print("deferred processes (most deferred first):")
        for pid in pids:
            print(f"  {pid}")
        return 0
    try:
        print(explain_process(records, args.pid))
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.analysis.faults import campaign_json, render_campaign
    from repro.faults import run_campaign

    if args.durability:
        from repro.faults import run_durability_campaign

        report = run_durability_campaign(
            seed=args.seed, quick=args.quick
        )
        if args.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(report.describe())
        return 0 if report.ok else 1
    report = run_campaign(
        seed=args.seed,
        quick=args.quick,
        protocols=tuple(args.protocols) if args.protocols else None,
    )
    if args.json:
        print(json.dumps(campaign_json(report), indent=2))
    else:
        print(render_campaign(report, verbose=args.verbose))
    if args.dump_schedules:
        printed: set[str] = set()
        print()
        for run in report.runs:
            if run.plan in printed:
                continue
            printed.add(run.plan)
            print(f"{run.plan}: {run.schedule_canonical}")
    return 0 if report.ok else 1


def cmd_soak(args: argparse.Namespace) -> int:
    from repro.analysis.faults import render_soak, soak_json
    from repro.faults import SoakPlan, run_soak

    plan = SoakPlan(
        seed=args.seed,
        rounds=args.rounds,
        processes=args.processes,
        wcc_threshold=args.threshold,
        protocol=args.protocol,
        audit_every=args.audit_every,
        resilience=not args.no_resilience,
        min_events=args.min_events,
        workers=args.workers,
        batch_k=args.batch_k,
    )
    report = run_soak(plan)
    if args.json:
        print(json.dumps(soak_json(report), indent=2))
    else:
        print(render_soak(report))
    return 0 if report.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.server.net import run_server
    from repro.server.service import ServiceConfig

    spec = WorkloadSpec(
        n_processes=args.processes,
        conflict_density=args.density,
        failure_probability=args.failure_prob,
        wcc_threshold=args.threshold,
        seed=args.seed,
    )
    service_config = ServiceConfig(
        protocol=args.protocol,
        spec=spec,
        seed=args.seed,
        workers=args.workers,
        batch_k=args.batch_k,
        max_backlog=args.backlog,
        time_scale=args.time_scale,
        store=args.store,
        store_path=args.store_path,
        store_fsync=args.store_fsync,
        snapshot_every=args.snapshot_every,
    )
    run_server(
        service_config,
        host=args.host,
        port=args.port,
        metrics_port=args.metrics_port,
    )
    return 0


def cmd_store(args: argparse.Namespace) -> int:
    from repro.errors import StorageError, WalCorruptionError
    from repro.storage import Store

    kind = args.store or repro_config.store_kind() or "log"
    try:
        store = Store.open(kind, args.path)
    except WalCorruptionError as error:
        print(f"store corrupt: {error}", file=sys.stderr)
        return 2
    except (StorageError, OSError) as error:
        print(f"cannot open store: {error}", file=sys.stderr)
        return 2
    try:
        if args.action == "verify":
            report = store.verify()
            if args.json:
                print(json.dumps(report, indent=2))
            else:
                for name in sorted(report["namespaces"]):
                    entry = report["namespaces"][name]
                    status = entry["error"] or "ok"
                    print(
                        f"{name}: {entry['records']} records"
                        f" [{status}]"
                    )
                for name, dropped in sorted(
                    report["healed"].items()
                ):
                    print(f"healed torn tail: {name} -{dropped}B")
            return 0 if report["ok"] else 2
        if args.action == "compact":
            report = store.compact()
            if args.json:
                print(json.dumps(report, indent=2))
            else:
                for name, row in sorted(report.items()):
                    print(f"{name}: {row}")
            return 0
        print(json.dumps(store.describe(), indent=2))
        return 0
    except WalCorruptionError as error:
        print(f"store corrupt: {error}", file=sys.stderr)
        return 2
    except StorageError as error:
        print(f"store error: {error}", file=sys.stderr)
        return 2
    finally:
        store.close()


def cmd_top(args: argparse.Namespace) -> int:
    import time

    from repro.analysis.top import TopState, render_top
    from repro.client import ServiceClient

    try:
        client = ServiceClient(args.host, args.port)
    except OSError as error:
        print(
            f"cannot reach {args.host}:{args.port}: {error}",
            file=sys.stderr,
        )
        return 2
    state = TopState()
    frames = 0
    last_poll: float | None = None
    try:
        with client:
            while True:
                now = time.monotonic()
                elapsed = 0.0 if last_poll is None else now - last_poll
                stats = client.stats()
                metrics = client.metrics()
                frame = render_top(
                    stats,
                    metrics,
                    state if last_poll is not None else None,
                    elapsed,
                )
                if last_poll is None:
                    # Prime the rate baseline on the first poll.
                    state.committed = float(
                        stats["manager"].get("committed", 0)
                    )
                    state.submitted = float(
                        stats["manager"].get("submitted", 0)
                    )
                    state.events = float(
                        stats["engine"].get("events_processed", 0)
                    )
                last_poll = now
                if not args.no_clear and sys.stdout.isatty():
                    print("\x1b[2J\x1b[H", end="")
                print(frame, flush=True)
                frames += 1
                if args.iterations and frames >= args.iterations:
                    break
                time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    except (ConnectionError, OSError) as error:
        print(f"connection lost: {error}", file=sys.stderr)
        return 1
    return 0


def cmd_config(args: argparse.Namespace) -> int:
    rows = repro_config.describe()
    if args.json:
        print(json.dumps(rows, indent=2))
    else:
        print(
            render_dict_table(
                rows, title="REPRO_* environment knobs"
            )
        )
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.obs.profiling import run_profiled_workload

    workload = build_workload(_spec_from(args))
    tracer = None
    if args.traced:
        from repro.obs import Tracer

        tracer = Tracer()
    result, profiler = run_profiled_workload(
        workload,
        args.protocol,
        seed=args.seed,
        config=_parallel_config(args, audit=True),
        tracer=tracer,
    )
    report = profiler.report()
    report["protocol"] = args.protocol
    report["processes"] = args.processes
    report["events"] = len(result.trace.events)
    if args.out is not None:
        with open(args.out, "w") as handle:
            json_module.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"profile: wrote {args.out}")
    if args.json:
        print(json_module.dumps(report, indent=2, sort_keys=True))
        return 0
    rows = [
        {
            "phase": phase,
            "seconds": f"{data['seconds']:.4f}",
            "share": f"{data['share']:6.1%}",
            "calls": data["calls"],
        }
        for phase, data in report["phases"].items()
    ]
    print(
        f"profile: {args.protocol}, {args.processes} processes, "
        f"{report['events']} schedule events, "
        f"{report['total_s']:.3f}s wall"
    )
    print(render_dict_table(rows))
    return 0


def cmd_conformance(args: argparse.Namespace) -> int:
    names = (
        [args.protocol]
        if args.protocol is not None
        else sorted(PROTOCOL_FACTORIES)
    )
    fully = True
    for name in names:
        factory = PROTOCOL_FACTORIES[name]
        report = run_conformance(factory, name)
        print(report.describe())
        print()
        if name.startswith("process-locking"):
            fully = fully and report.fully_conformant
    return 0 if fully else 1


_COMMANDS = {
    "exhibits": cmd_exhibits,
    "chaos": cmd_chaos,
    "soak": cmd_soak,
    "conformance": cmd_conformance,
    "run": cmd_run,
    "compare": cmd_compare,
    "trace": cmd_trace,
    "explain": cmd_explain,
    "scenario": cmd_scenario,
    "sweep-threshold": cmd_sweep_threshold,
    "serve": cmd_serve,
    "store": cmd_store,
    "top": cmd_top,
    "config": cmd_config,
    "profile": cmd_profile,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; reopen
        # stdout on devnull so interpreter shutdown doesn't warn.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
