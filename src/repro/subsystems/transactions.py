"""Subsystem transactions: atomic units executed on behalf of activities.

A :class:`Transaction` provides the classic begin/read/write/commit/abort
interface over a :class:`~repro.subsystems.storage.RecordStore`, guarded by
the subsystem's :class:`~repro.subsystems.lock_manager.DataLockManager`.
Undo is physical (before-images); strict 2PL makes undo safe without
cascades.
"""

from __future__ import annotations

import enum
from collections.abc import Callable

from repro.errors import TransactionAborted
from repro.subsystems.lock_manager import DataLockManager, DataLockMode
from repro.subsystems.storage import RecordStore
from repro.subsystems.wal import WriteAheadLog


class TransactionState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One subsystem transaction under strict two-phase locking."""

    def __init__(
        self,
        txn_id: int,
        timestamp: int,
        store: RecordStore,
        locks: DataLockManager,
        history: list[tuple[int, str, str]] | None = None,
        wal: WriteAheadLog | None = None,
    ) -> None:
        self.txn_id = txn_id
        self.timestamp = timestamp
        self._store = store
        self._locks = locks
        self._undo: list[tuple[str, object]] = []
        self._history = history
        self._wal = wal
        self.state = TransactionState.ACTIVE
        self.reads: list[object] = []

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def read(self, key: str) -> object:
        """Read ``key`` under a shared lock; returns the committed value."""
        self._require_active()
        self._locks.acquire(
            self.txn_id, self.timestamp, key, DataLockMode.SHARED
        )
        value = self._store.read(key)
        self.reads.append(value)
        self._record("r", key)
        return value

    def write(
        self, key: str, update: Callable[[object], object]
    ) -> object:
        """Update ``key`` under an exclusive lock; returns the new value.

        ``update`` receives the current value and returns the new one; the
        before-image is retained for undo.
        """
        self._require_active()
        self._locks.acquire(
            self.txn_id, self.timestamp, key, DataLockMode.EXCLUSIVE
        )
        old = self._store.read(key)
        new = update(old)
        if self._wal is not None:
            # WAL rule: the before-image hits the log before the write
            # hits the store.
            self._wal.log_write(self.txn_id, key, old)
        self._undo.append((key, old))
        self._store.write(key, new)
        self._record("w", key)
        return new

    # ------------------------------------------------------------------
    # termination
    # ------------------------------------------------------------------
    def commit(self) -> None:
        """Commit: release all locks, discard undo information."""
        self._require_active()
        self.state = TransactionState.COMMITTED
        self._undo.clear()
        if self._wal is not None:
            self._wal.log_commit(self.txn_id)
        self._locks.release_all(self.txn_id)
        self._record("c", "")

    def abort(self) -> None:
        """Abort: restore before-images in reverse order, release locks."""
        self._require_active()
        for key, old in reversed(self._undo):
            self._store.write(key, old)
        self._undo.clear()
        self.state = TransactionState.ABORTED
        if self._wal is not None:
            self._wal.log_abort(self.txn_id)
        self._locks.release_all(self.txn_id)
        self._record("a", "")

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _require_active(self) -> None:
        if self.state is not TransactionState.ACTIVE:
            raise TransactionAborted(
                f"txn {self.txn_id} is {self.state.value}; no further "
                "operations allowed"
            )

    def _record(self, op: str, key: str) -> None:
        if self._history is not None:
            self._history.append((self.txn_id, op, key))
