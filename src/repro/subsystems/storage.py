"""In-memory record store backing a transactional subsystem.

Records are keyed by string and hold arbitrary (usually numeric) values.
The store itself is oblivious to transactions; undo information is kept by
:class:`~repro.subsystems.transactions.Transaction` objects, and all
concurrency control happens in
:class:`~repro.subsystems.lock_manager.DataLockManager`.
"""

from __future__ import annotations

from collections.abc import Iterator


class RecordStore:
    """A flat key/value record store with a default value for misses."""

    def __init__(self, default: object = 0) -> None:
        self._records: dict[str, object] = {}
        self._default = default

    def read(self, key: str) -> object:
        """Return the committed value of ``key`` (default when absent)."""
        return self._records.get(key, self._default)

    def write(self, key: str, value: object) -> object:
        """Overwrite ``key`` and return the previous value."""
        previous = self._records.get(key, self._default)
        self._records[key] = value
        return previous

    def delete(self, key: str) -> None:
        """Remove ``key`` (restoring the default on future reads)."""
        self._records.pop(key, None)

    def keys(self) -> Iterator[str]:
        return iter(self._records)

    def snapshot(self) -> dict[str, object]:
        """A shallow copy of all records, for assertions in tests."""
        return dict(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records


class DurableRecordStore(RecordStore):
    """A record store whose committed state survives restarts.

    Every mutation appends a redo record (``{"key", "value"}``, or a
    ``deleted`` marker) to the backing repository; construction replays
    the existing redo log last-write-wins.  Undo-based crash recovery
    (:func:`~repro.subsystems.wal.recover_store`) works unchanged on
    top: the before-image writes it issues are themselves redo-logged,
    so the rolled-back state is what the next incarnation reloads.
    """

    def __init__(self, repository, default: object = 0) -> None:
        super().__init__(default=default)
        self._repository = repository
        for record in repository.records():
            if record.get("deleted"):
                self._records.pop(record["key"], None)
            else:
                self._records[record["key"]] = record["value"]

    def write(self, key: str, value: object) -> object:
        previous = super().write(key, value)
        self._repository.append({"key": key, "value": value})
        return previous

    def delete(self, key: str) -> None:
        super().delete(key)
        self._repository.append({"key": key, "deleted": True})
