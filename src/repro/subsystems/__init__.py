"""Transactional subsystems: the CPSR + ACA bottom layer of the model."""

from repro.subsystems.lock_manager import DataLockManager, DataLockMode
from repro.subsystems.programs import (
    Operation,
    OpKind,
    ProgramCatalog,
    TransactionProgram,
    inverse_program,
)
from repro.subsystems.storage import DurableRecordStore, RecordStore
from repro.subsystems.subsystem import SubsystemPool, TransactionalSubsystem
from repro.subsystems.transactions import Transaction, TransactionState
from repro.subsystems.wal import (
    DurableWriteAheadLog,
    WalKind,
    WalRecord,
    WriteAheadLog,
    recover_store,
    validate_wal,
)

__all__ = [
    "DataLockManager",
    "DataLockMode",
    "DurableRecordStore",
    "DurableWriteAheadLog",
    "Operation",
    "OpKind",
    "ProgramCatalog",
    "RecordStore",
    "SubsystemPool",
    "Transaction",
    "TransactionProgram",
    "TransactionState",
    "TransactionalSubsystem",
    "WalKind",
    "WalRecord",
    "WriteAheadLog",
    "inverse_program",
    "recover_store",
    "validate_wal",
]
