"""Write-ahead logging and crash recovery for subsystems.

The paper assumes the bottom-layer subsystems are real transactional
systems; real transactional systems survive crashes.  This module adds
undo-based WAL to the in-memory substrate:

* every write logs its before-image **before** applying (the WAL rule);
* commit/abort append terminal records;
* after a crash (all in-flight transactions and locks lost, the store —
  our "disk" — retains whatever was applied), :func:`recover_store`
  rolls back every *loser* (a transaction without a terminal record) by
  replaying its before-images in reverse log order.

Strict 2PL guarantees no two uncommitted transactions ever wrote the
same record concurrently, which is what makes reverse-order physical
undo correct.

:class:`WriteAheadLog` keeps the log in memory (the seed behaviour —
crashes are simulated inside one process image).
:class:`DurableWriteAheadLog` appends every record through a
:class:`~repro.storage.facade.FrameRepository` as well, so the log
survives a real process death and is reloaded on the next start;
:func:`recover_store` then rolls back the losers of the *previous*
incarnation from disk.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from repro.errors import WalCorruptionError
from repro.subsystems.storage import RecordStore


class WalKind(enum.Enum):
    WRITE = "write"
    COMMIT = "commit"
    ABORT = "abort"


@dataclass(frozen=True)
class WalRecord:
    """One log record."""

    lsn: int
    txn_id: int
    kind: WalKind
    key: str = ""
    before: object = None


class WriteAheadLog:
    """An append-only undo log."""

    def __init__(self) -> None:
        self._records: list[WalRecord] = []
        self._lsns = itertools.count(1)

    # ------------------------------------------------------------------
    # appends
    # ------------------------------------------------------------------
    def _append(self, record: WalRecord) -> None:
        """Store one record (durable subclasses write through here)."""
        self._records.append(record)

    def log_write(self, txn_id: int, key: str, before: object) -> int:
        """Record a before-image; returns the LSN."""
        record = WalRecord(
            lsn=next(self._lsns),
            txn_id=txn_id,
            kind=WalKind.WRITE,
            key=key,
            before=before,
        )
        self._append(record)
        return record.lsn

    def log_commit(self, txn_id: int) -> int:
        record = WalRecord(
            lsn=next(self._lsns), txn_id=txn_id, kind=WalKind.COMMIT
        )
        self._append(record)
        return record.lsn

    def log_abort(self, txn_id: int) -> int:
        record = WalRecord(
            lsn=next(self._lsns), txn_id=txn_id, kind=WalKind.ABORT
        )
        self._append(record)
        return record.lsn

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def records(self) -> list[WalRecord]:
        return list(self._records)

    def losers(self) -> set[int]:
        """Transactions with logged writes but no terminal record."""
        terminated = {
            record.txn_id
            for record in self._records
            if record.kind is not WalKind.WRITE
        }
        return {
            record.txn_id
            for record in self._records
            if record.kind is WalKind.WRITE
            and record.txn_id not in terminated
        }

    def __len__(self) -> int:
        return len(self._records)


class DurableWriteAheadLog(WriteAheadLog):
    """A write-ahead log that also lives on disk.

    Same :class:`WalRecord` protocol as the in-memory log; every append
    writes through to the backing repository (one JSON record per
    frame), and construction reloads whatever an earlier incarnation
    left behind — LSNs continue past the highest reloaded one, so the
    log stays globally ordered across restarts.
    """

    def __init__(self, repository) -> None:
        super().__init__()
        self._repository = repository
        for data in repository.records():
            self._records.append(_record_from_dict(data))
        if self._records:
            self._lsns = itertools.count(
                max(record.lsn for record in self._records) + 1
            )

    def _append(self, record: WalRecord) -> None:
        super()._append(record)
        self._repository.append(_record_to_dict(record))


def _record_to_dict(record: WalRecord) -> dict:
    return {
        "lsn": record.lsn,
        "txn_id": record.txn_id,
        "kind": record.kind.value,
        "key": record.key,
        "before": record.before,
    }


def _record_from_dict(data: dict) -> WalRecord:
    namespace = ""
    try:
        return WalRecord(
            lsn=int(data["lsn"]),
            txn_id=int(data["txn_id"]),
            kind=WalKind(data["kind"]),
            key=data.get("key", ""),
            before=data.get("before"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WalCorruptionError(
            f"malformed WAL record {data!r}: {exc}", namespace=namespace
        ) from None


def validate_wal(wal: WriteAheadLog) -> None:
    """Structural validation of a WAL before it is trusted for undo.

    Raises :class:`~repro.errors.WalCorruptionError` on records that
    can only come from a damaged log: wrong types, non-positive or
    non-increasing LSNs, or write records without a key.  (Byte-level
    damage — torn tails, CRC failures — is caught earlier by the
    storage codec; this guards the logical layer.)
    """
    last_lsn = 0
    for record in wal.records:
        if not isinstance(record, WalRecord):
            raise WalCorruptionError(
                f"not a WAL record: {record!r}"
            )
        if not isinstance(record.kind, WalKind):
            raise WalCorruptionError(
                f"record {record.lsn} has unknown kind "
                f"{record.kind!r}"
            )
        if not isinstance(record.lsn, int) or record.lsn <= last_lsn:
            raise WalCorruptionError(
                f"LSN {record.lsn!r} after {last_lsn} breaks the "
                "append order"
            )
        if not isinstance(record.txn_id, int) or record.txn_id <= 0:
            raise WalCorruptionError(
                f"record {record.lsn} has bad transaction id "
                f"{record.txn_id!r}"
            )
        if record.kind is WalKind.WRITE and not record.key:
            raise WalCorruptionError(
                f"write record {record.lsn} carries no key"
            )
        last_lsn = record.lsn


def recover_store(store: RecordStore, wal: WriteAheadLog) -> int:
    """Undo every loser transaction's writes; returns the undo count.

    The log is structurally validated first — a malformed record
    surfaces as a typed :class:`~repro.errors.WalCorruptionError`
    instead of whatever exception the undo loop would have tripped
    over.  Before-images are then applied in reverse LSN order, and an
    abort record is logged for each loser so the log reaches a
    terminal state for every transaction.
    """
    validate_wal(wal)
    losers = wal.losers()
    undone = 0
    for record in reversed(wal.records):
        if record.kind is WalKind.WRITE and record.txn_id in losers:
            store.write(record.key, record.before)
            undone += 1
    for txn_id in sorted(losers):
        wal.log_abort(txn_id)
    return undone
