"""Write-ahead logging and crash recovery for subsystems.

The paper assumes the bottom-layer subsystems are real transactional
systems; real transactional systems survive crashes.  This module adds
undo-based WAL to the in-memory substrate:

* every write logs its before-image **before** applying (the WAL rule);
* commit/abort append terminal records;
* after a crash (all in-flight transactions and locks lost, the store —
  our "disk" — retains whatever was applied), :func:`recover_store`
  rolls back every *loser* (a transaction without a terminal record) by
  replaying its before-images in reverse log order.

Strict 2PL guarantees no two uncommitted transactions ever wrote the
same record concurrently, which is what makes reverse-order physical
undo correct.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from repro.subsystems.storage import RecordStore


class WalKind(enum.Enum):
    WRITE = "write"
    COMMIT = "commit"
    ABORT = "abort"


@dataclass(frozen=True)
class WalRecord:
    """One log record."""

    lsn: int
    txn_id: int
    kind: WalKind
    key: str = ""
    before: object = None


class WriteAheadLog:
    """An append-only undo log."""

    def __init__(self) -> None:
        self._records: list[WalRecord] = []
        self._lsns = itertools.count(1)

    # ------------------------------------------------------------------
    # appends
    # ------------------------------------------------------------------
    def log_write(self, txn_id: int, key: str, before: object) -> int:
        """Record a before-image; returns the LSN."""
        record = WalRecord(
            lsn=next(self._lsns),
            txn_id=txn_id,
            kind=WalKind.WRITE,
            key=key,
            before=before,
        )
        self._records.append(record)
        return record.lsn

    def log_commit(self, txn_id: int) -> int:
        record = WalRecord(
            lsn=next(self._lsns), txn_id=txn_id, kind=WalKind.COMMIT
        )
        self._records.append(record)
        return record.lsn

    def log_abort(self, txn_id: int) -> int:
        record = WalRecord(
            lsn=next(self._lsns), txn_id=txn_id, kind=WalKind.ABORT
        )
        self._records.append(record)
        return record.lsn

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def records(self) -> list[WalRecord]:
        return list(self._records)

    def losers(self) -> set[int]:
        """Transactions with logged writes but no terminal record."""
        terminated = {
            record.txn_id
            for record in self._records
            if record.kind is not WalKind.WRITE
        }
        return {
            record.txn_id
            for record in self._records
            if record.kind is WalKind.WRITE
            and record.txn_id not in terminated
        }

    def __len__(self) -> int:
        return len(self._records)


def recover_store(store: RecordStore, wal: WriteAheadLog) -> int:
    """Undo every loser transaction's writes; returns the undo count.

    Before-images are applied in reverse LSN order, then an abort record
    is logged for each loser so the log reaches a terminal state for
    every transaction.
    """
    losers = wal.losers()
    undone = 0
    for record in reversed(wal.records):
        if record.kind is WalKind.WRITE and record.txn_id in losers:
            store.write(record.key, record.before)
            undone += 1
    for txn_id in sorted(losers):
        wal.log_abort(txn_id)
    return undone
