"""Data-level strict two-phase locking for subsystem transactions.

Each transactional subsystem guarantees serializability (CPSR) and
avoidance of cascading aborts (ACA) — the paper assumes exactly this of the
bottom layer (Section 2).  Strict 2PL with shared/exclusive record locks
delivers both: transactions read only committed data and hold every lock to
their end.

Deadlocks are prevented with the *wait-die* scheme [Rosenkrantz et al.]:
a requester may wait only for younger lock holders; an older holder makes
the requester die (abort), to be retried by its caller.  Wait-for edges
therefore always point from older waiters to younger holders, so wait-for
cycles are impossible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import DataDeadlockAvoided, SubsystemWouldBlock


class DataLockMode(enum.Enum):
    """Shared (read) or exclusive (write) record locks."""

    SHARED = "S"
    EXCLUSIVE = "X"


@dataclass(frozen=True)
class _Holder:
    txn_id: int
    timestamp: int
    mode: DataLockMode


class DataLockManager:
    """Record-granularity S/X lock table with wait-die deadlock prevention."""

    def __init__(self) -> None:
        self._locks: dict[str, dict[int, _Holder]] = {}

    def acquire(
        self, txn_id: int, timestamp: int, key: str, mode: DataLockMode
    ) -> None:
        """Acquire (or upgrade to) ``mode`` on ``key`` for ``txn_id``.

        Raises
        ------
        SubsystemWouldBlock
            The request conflicts with younger holders; the caller should
            retry once they release (wait leg of wait-die).
        DataDeadlockAvoided
            The request conflicts with an older holder; the requesting
            transaction must abort (die leg of wait-die).
        """
        holders = self._locks.setdefault(key, {})
        mine = holders.get(txn_id)
        if mine is not None and (
            mine.mode is DataLockMode.EXCLUSIVE
            or mode is DataLockMode.SHARED
        ):
            return  # already strong enough
        blockers = {
            holder
            for holder in holders.values()
            if holder.txn_id != txn_id
            and not _compatible(holder.mode, mode)
        }
        if blockers:
            older = {
                b.txn_id for b in blockers if b.timestamp <= timestamp
            }
            if older:
                raise DataDeadlockAvoided(
                    f"txn {txn_id} dies: {key!r} is held in an "
                    f"incompatible mode by older transactions "
                    f"{sorted(older)}"
                )
            raise SubsystemWouldBlock(
                frozenset(b.txn_id for b in blockers)
            )
        holders[txn_id] = _Holder(txn_id, timestamp, mode)

    def release_all(self, txn_id: int) -> None:
        """Release every lock of ``txn_id`` (commit or abort time)."""
        for key in list(self._locks):
            self._locks[key].pop(txn_id, None)
            if not self._locks[key]:
                del self._locks[key]

    def holders(self, key: str) -> dict[int, DataLockMode]:
        """Current holders of ``key`` and their modes."""
        return {
            holder.txn_id: holder.mode
            for holder in self._locks.get(key, {}).values()
        }

    def held_by(self, txn_id: int) -> set[str]:
        """Keys currently locked by ``txn_id``."""
        return {
            key
            for key, holders in self._locks.items()
            if txn_id in holders
        }

    @property
    def lock_count(self) -> int:
        return sum(len(holders) for holders in self._locks.values())


def _compatible(held: DataLockMode, requested: DataLockMode) -> bool:
    return held is DataLockMode.SHARED and requested is DataLockMode.SHARED
