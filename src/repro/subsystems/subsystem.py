"""Transactional subsystem facade (the paper's bottom layer).

A :class:`TransactionalSubsystem` bundles a record store, a data-level
strict-2PL lock manager, and a history recorder.  It offers two execution
paths:

* :meth:`execute_atomic` — run a whole transaction program in one step;
  this is what the process manager uses when an activity commits in the
  simulation (each activity is atomic by definition, Section 2);
* :meth:`begin` — hand out a stepwise :class:`Transaction` so tests can
  interleave operations of several transactions and verify that the
  subsystem really produces serializable (CPSR), cascade-free (ACA)
  histories.
"""

from __future__ import annotations

import itertools

from repro.core.deadlock import Digraph, has_cycle
from repro.errors import (
    DataDeadlockAvoided,
    SubsystemError,
    SubsystemWouldBlock,
)
from repro.subsystems.lock_manager import DataLockManager
from repro.subsystems.programs import ProgramCatalog, TransactionProgram
from repro.subsystems.storage import DurableRecordStore, RecordStore
from repro.subsystems.transactions import Transaction, TransactionState
from repro.subsystems.wal import (
    DurableWriteAheadLog,
    WriteAheadLog,
    recover_store,
)


class TransactionalSubsystem:
    """One independent transactional application (CPSR + ACA)."""

    def __init__(self, name: str, durable: bool = False) -> None:
        self.name = name
        self.store = RecordStore()
        self.locks = DataLockManager()
        self.catalog = ProgramCatalog()
        #: Undo write-ahead log; present when the subsystem is durable.
        self.wal: WriteAheadLog | None = (
            WriteAheadLog() if durable else None
        )
        self._active: list[Transaction] = []
        #: Flat operation history ``(txn_id, op, key)`` with op in
        #: ``{"r", "w", "c", "a"}``, used for serializability checking.
        self.history: list[tuple[int, str, str]] = []
        self._txn_ids = itertools.count(1)
        self.committed_count = 0
        self.aborted_count = 0
        #: Virtual time until which the subsystem is unavailable (fault
        #: injection); ``0.0`` means up.  See :meth:`begin_outage`.
        self.down_until: float = 0.0
        self.outages = 0

    # ------------------------------------------------------------------
    # availability (fault injection)
    # ------------------------------------------------------------------
    def begin_outage(self, until: float) -> None:
        """Mark the subsystem unavailable until virtual time ``until``.

        The process manager's fault injector turns activity completions
        on a down subsystem into failures (non-retriable) or transient
        retries (retriable); the subsystem itself keeps serving
        compensations, which the paper assumes always succeed.
        """
        self.down_until = max(self.down_until, until)
        self.outages += 1

    def end_outage(self) -> None:
        """Lift any outage immediately."""
        self.down_until = 0.0

    def is_down(self, now: float) -> bool:
        """Whether the subsystem is inside an outage window at ``now``."""
        return now < self.down_until

    # ------------------------------------------------------------------
    # durability (repro.storage)
    # ------------------------------------------------------------------
    def attach_store(self, store) -> int:
        """Back this subsystem with a durable store; returns undo count.

        Replaces the record store with a
        :class:`~repro.subsystems.storage.DurableRecordStore` (reloaded
        from the store's redo log) and the WAL with a
        :class:`~repro.subsystems.wal.DurableWriteAheadLog`, then runs
        :func:`~repro.subsystems.wal.recover_store` so any losers of a
        previous incarnation are rolled back before new work starts.
        Must be called before the first transaction begins — live
        transactions keep references to the stores they started with.
        """
        durable_store = DurableRecordStore(
            store.subsystem_data(self.name),
            default=self.store._default,
        )
        for key, value in self.store.snapshot().items():
            durable_store.write(key, value)
        self.store = durable_store
        self.wal = DurableWriteAheadLog(
            store.subsystem_wal(self.name)
        )
        return recover_store(self.store, self.wal)

    # ------------------------------------------------------------------
    # execution paths
    # ------------------------------------------------------------------
    def begin(self, timestamp: int | None = None) -> Transaction:
        """Start a stepwise transaction (mainly for substrate tests)."""
        txn_id = next(self._txn_ids)
        txn = Transaction(
            txn_id=txn_id,
            timestamp=timestamp if timestamp is not None else txn_id,
            store=self.store,
            locks=self.locks,
            history=self.history,
            wal=self.wal,
        )
        self._active = [
            t
            for t in self._active
            if t.state is TransactionState.ACTIVE
        ]
        self._active.append(txn)
        return txn

    def execute_atomic(
        self, program: TransactionProgram, timestamp: int | None = None
    ) -> list[object]:
        """Run ``program`` as one transaction, committing on success.

        The atomic path can never block: it starts with no locks held and
        releases everything before returning, so lock conflicts with other
        in-flight transactions cannot exist in simulator use (activities
        are applied at distinct virtual instants).

        Returns the list of values read by the program.
        """
        txn = self.begin(timestamp)
        try:
            results = program.run(txn)
        except (SubsystemWouldBlock, DataDeadlockAvoided):
            txn.abort()
            self.aborted_count += 1
            raise
        except Exception:
            txn.abort()
            self.aborted_count += 1
            raise
        txn.commit()
        self.committed_count += 1
        return results

    def execute_activity(
        self, activity_name: str, timestamp: int | None = None
    ) -> list[object]:
        """Run the transaction program registered for an activity type."""
        return self.execute_atomic(
            self.catalog.get(activity_name), timestamp
        )

    # ------------------------------------------------------------------
    # history analysis (substrate guarantees)
    # ------------------------------------------------------------------
    def serialization_graph(self) -> Digraph:
        """Conflict graph over committed transactions of the history.

        An edge ``i -> j`` means a committed operation of ``i`` precedes a
        conflicting committed operation of ``j``.
        """
        committed = {
            txn for txn, op, _ in self.history if op == "c"
        }
        graph = Digraph()
        for txn in committed:
            graph.add_node(txn)
        ops = [
            (txn, op, key)
            for txn, op, key in self.history
            if txn in committed and op in ("r", "w")
        ]
        for i, (txn_a, op_a, key_a) in enumerate(ops):
            for txn_b, op_b, key_b in ops[i + 1:]:
                if txn_a == txn_b or key_a != key_b:
                    continue
                if "w" in (op_a, op_b):
                    graph.add_edge(txn_a, txn_b)
        return graph

    def is_serializable(self) -> bool:
        """Whether the committed projection of the history is CPSR."""
        return not has_cycle(self.serialization_graph().adj)

    def avoids_cascading_aborts(self) -> bool:
        """ACA check: every read sees only already-committed writes.

        For each read of ``key`` by ``t``, any earlier write of ``key`` by
        another transaction must be followed by that transaction's commit
        before the read.
        """
        commit_pos: dict[int, int] = {}
        abort_pos: dict[int, int] = {}
        for pos, (txn, op, _) in enumerate(self.history):
            if op == "c":
                commit_pos[txn] = pos
            elif op == "a":
                abort_pos[txn] = pos
        for pos, (reader, op, key) in enumerate(self.history):
            if op != "r":
                continue
            for wpos, (writer, wop, wkey) in enumerate(
                self.history[:pos]
            ):
                if wop != "w" or wkey != key or writer == reader:
                    continue
                terminated = (
                    commit_pos.get(writer, len(self.history)) < pos
                    or abort_pos.get(writer, len(self.history)) < pos
                )
                if not terminated:
                    return False
        return True

    def simulate_crash_and_recover(self) -> int:
        """Crash the subsystem and run WAL recovery; returns undo count.

        A crash loses every in-flight transaction and every lock; the
        store (our "disk", written in place — a steal policy) keeps
        whatever was applied.  Recovery rolls the losers back via their
        logged before-images, restoring a committed-only state.  Only
        available on durable subsystems.

        In-flight :class:`Transaction` handles become unusable (their
        state is forced to aborted); callers must begin new ones.
        """
        if self.wal is None:
            raise SubsystemError(
                f"subsystem {self.name!r} is not durable; construct it "
                "with durable=True to get WAL recovery"
            )
        losers = 0
        for txn in self._active:
            if txn.state is TransactionState.ACTIVE:
                txn.state = TransactionState.ABORTED
                self.history.append((txn.txn_id, "a", ""))
                losers += 1
        self._active = []
        self.locks = DataLockManager()
        undone = recover_store(self.store, self.wal)
        self.aborted_count += losers
        return undone

    def register_program(
        self, activity_name: str, program: TransactionProgram
    ) -> None:
        """Bind an activity type name to its transaction program."""
        self.catalog.register(activity_name, program)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TransactionalSubsystem({self.name!r}, "
            f"{len(self.store)} records, "
            f"{self.committed_count} commits)"
        )


class SubsystemPool:
    """The universe of available subsystems, keyed by name.

    A pool may be backed by a durable :class:`repro.storage.Store`
    (``store=`` or a later :meth:`attach_store`): every subsystem —
    existing and future — then persists its WAL and record store
    through it.  :func:`~repro.scheduler.manager.make_manager` attaches
    the store configured on :class:`ManagerConfig` (or ambiently via
    the ``REPRO_STORE`` knob) exactly once per pool.
    """

    def __init__(self, store=None) -> None:
        self._subsystems: dict[str, TransactionalSubsystem] = {}
        self.store = None
        if store is not None:
            self.attach_store(store)

    def attach_store(self, store) -> int:
        """Back every subsystem with ``store``; returns total undos.

        Idempotent for the same store object; re-attaching a
        *different* store is refused — half the history in one place
        and half in another would make neither recoverable.
        """
        if self.store is store:
            return 0
        if self.store is not None:
            raise SubsystemError(
                "subsystem pool is already attached to a store"
            )
        self.store = store
        return sum(
            subsystem.attach_store(store)
            for subsystem in self._subsystems.values()
        )

    def create(
        self, name: str, durable: bool = False
    ) -> TransactionalSubsystem:
        if name in self._subsystems:
            raise SubsystemError(f"subsystem {name!r} already exists")
        subsystem = TransactionalSubsystem(name, durable=durable)
        self._subsystems[name] = subsystem
        if self.store is not None:
            subsystem.attach_store(self.store)
        return subsystem

    def get(self, name: str) -> TransactionalSubsystem:
        try:
            return self._subsystems[name]
        except KeyError:
            raise SubsystemError(f"unknown subsystem {name!r}") from None

    def get_or_create(
        self, name: str, durable: bool = False
    ) -> TransactionalSubsystem:
        if name not in self._subsystems:
            return self.create(name, durable=durable)
        return self._subsystems[name]

    def __iter__(self):
        return iter(self._subsystems.values())

    def __len__(self) -> int:
        return len(self._subsystems)

    def __contains__(self, name: str) -> bool:
        return name in self._subsystems
