"""Transaction programs: the concrete implementations behind activities.

Every activity type maps to a :class:`TransactionProgram` — a fixed list of
read and write operations against the records of one subsystem.  This is
the "black box" the process manager never looks inside; the library uses
the programs to (a) actually mutate subsystem state during simulation and
(b) *derive* the type-level conflict matrix ``CON`` from read/write sets
instead of postulating it.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import SubsystemError
from repro.subsystems.transactions import Transaction


class OpKind(enum.Enum):
    READ = "read"
    WRITE = "write"


def _increment(value: object) -> object:
    return (value or 0) + 1  # type: ignore[operator]


def _decrement(value: object) -> object:
    return (value or 0) - 1  # type: ignore[operator]


@dataclass(frozen=True)
class Operation:
    """One read or write step of a transaction program."""

    kind: OpKind
    key: str
    update: Callable[[object], object] = field(
        default=_increment, compare=False
    )

    @staticmethod
    def read(key: str) -> "Operation":
        return Operation(OpKind.READ, key)

    @staticmethod
    def write(
        key: str, update: Callable[[object], object] = _increment
    ) -> "Operation":
        return Operation(OpKind.WRITE, key, update)


@dataclass(frozen=True)
class TransactionProgram:
    """A named, fixed sequence of operations on one subsystem."""

    name: str
    operations: tuple[Operation, ...]

    def run(self, txn: Transaction) -> list[object]:
        """Execute all operations within ``txn``; returns read values."""
        results: list[object] = []
        for op in self.operations:
            if op.kind is OpKind.READ:
                results.append(txn.read(op.key))
            else:
                txn.write(op.key, op.update)
        return results

    @property
    def read_set(self) -> frozenset[str]:
        return frozenset(
            op.key for op in self.operations if op.kind is OpKind.READ
        )

    @property
    def write_set(self) -> frozenset[str]:
        return frozenset(
            op.key for op in self.operations if op.kind is OpKind.WRITE
        )

    def conflicts_with(self, other: "TransactionProgram") -> bool:
        """Data-level conflict test: one writes what the other touches."""
        return bool(
            self.write_set & (other.read_set | other.write_set)
            or other.write_set & (self.read_set | self.write_set)
        )


def inverse_program(
    program: TransactionProgram, name: str | None = None
) -> TransactionProgram:
    """Build a compensating program touching the same records.

    Writes are replaced by decrements (the semantic inverse of the default
    increment), reads are dropped — compensation of a pure read is a no-op,
    mirroring the paper's remark that compensation cost may be zero.
    """
    ops = tuple(
        Operation.write(op.key, _decrement)
        for op in program.operations
        if op.kind is OpKind.WRITE
    )
    return TransactionProgram(
        name=name or f"{program.name}^-1", operations=ops
    )


class ProgramCatalog:
    """Registry mapping activity type names to transaction programs."""

    def __init__(self) -> None:
        self._programs: dict[str, TransactionProgram] = {}

    def register(self, activity_name: str, program: TransactionProgram) -> None:
        if activity_name in self._programs:
            raise SubsystemError(
                f"activity {activity_name!r} already has a transaction "
                "program"
            )
        self._programs[activity_name] = program

    def get(self, activity_name: str) -> TransactionProgram:
        try:
            return self._programs[activity_name]
        except KeyError:
            raise SubsystemError(
                f"no transaction program registered for activity "
                f"{activity_name!r}"
            ) from None

    def __contains__(self, activity_name: str) -> bool:
        return activity_name in self._programs

    def access_map(
        self,
    ) -> dict[str, tuple[frozenset[str], frozenset[str]]]:
        """``{activity: (read_set, write_set)}`` for conflict derivation."""
        return {
            name: (program.read_set, program.write_set)
            for name, program in self._programs.items()
        }
