"""Process execution instances (paper Definition 2).

A :class:`Process` is the execution of a process program: it walks the
program tree, keeps the ledger of executed activities, tracks the scope
stack opened by committed points of no return, plans compensation runs when
activities fail or the process is aborted by the protocol, and owns the
process state machine.

The class is purely a *model*: it never blocks, samples randomness, or
talks to the lock manager — those concerns live in
:mod:`repro.scheduler.manager`.  This keeps the execution semantics
independently testable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.activities.activity import Activity
from repro.errors import ProcessProgramError, ProcessStateError, SchedulerError
from repro.process.program import ProcessProgram, ProgramNode
from repro.process.state import ProcessState, check_transition


class Resolution(enum.Enum):
    """How a failed activity is resolved (paper Section 2.2)."""

    RETRY = "retry"
    ABORT_SUBPROCESS = "abort-subprocess"
    ABORT_PROCESS = "abort-process"


@dataclass
class LedgerEntry:
    """One committed activity of this process execution."""

    activity: Activity
    node: ProgramNode
    compensated: bool = False

    @property
    def compensatable(self) -> bool:
        return self.activity.activity_type.compensatable


@dataclass
class FailurePlan:
    """Compensation work required to resolve a failure or an abort.

    ``compensations`` lists the ledger entries to compensate, already in
    reverse execution order.  For :attr:`Resolution.ABORT_SUBPROCESS`, once
    every compensation committed the manager calls
    :meth:`Process.start_next_branch`.
    """

    resolution: Resolution
    compensations: list[LedgerEntry] = field(default_factory=list)


@dataclass
class _Scope:
    """A failure scope opened by a committed point of no return."""

    node: ProgramNode
    branch_index: int
    ledger_start: int


class Process:
    """Execution state of one process (one incarnation).

    Parameters
    ----------
    pid:
        Process identifier; stable across resubmissions.
    program:
        The process program being executed.
    timestamp:
        Unique protocol timestamp, assigned at (first) initiation and kept
        across resubmissions to avoid starvation.
    incarnation:
        0 for the first submission, incremented by :meth:`resubmit`.
    """

    def __init__(
        self,
        pid: int,
        program: ProcessProgram,
        timestamp: int,
        incarnation: int = 0,
    ) -> None:
        self.pid = pid
        self.program = program
        self.timestamp = timestamp
        self.incarnation = incarnation
        self.state = ProcessState.RUNNING
        self.ledger: list[LedgerEntry] = []
        #: Worst-case cost accumulated so far (Equation 1); maintained by
        #: the cost-based scheduler via :meth:`charge_wcc`.
        self.wcc: float = 0.0
        self._seq = 0
        self._scopes: list[_Scope] = []
        self._current: ProgramNode | None = program.root
        self._to_launch: list[str] = list(program.root.activities)
        self._outstanding = 0
        self._node_commits = 0
        self._unwinding = False
        self._committed_pnr_count = 0

    # ------------------------------------------------------------------
    # identity & bookkeeping
    # ------------------------------------------------------------------
    @property
    def key(self) -> tuple[int, int]:
        """Schedule-level identity: ``(pid, incarnation)``.

        A resubmitted execution is formally a new process that happens to
        share the original's timestamp, so correctness checking treats the
        incarnations as distinct processes.
        """
        return (self.pid, self.incarnation)

    @property
    def registry(self):
        return self.program.registry

    def resubmit(self) -> "Process":
        """Create the next incarnation after a protocol-induced abort.

        The new instance keeps the pid and — crucially — the original
        timestamp, the paper's starvation-avoidance measure.
        """
        if self.state is not ProcessState.ABORTED:
            raise ProcessStateError(
                f"P{self.pid}: only aborted processes can be resubmitted "
                f"(state is {self.state.value})"
            )
        return Process(
            pid=self.pid,
            program=self.program,
            timestamp=self.timestamp,
            incarnation=self.incarnation + 1,
        )

    def charge_wcc(self, amount: float) -> None:
        """Add ``c(a) + c(a⁻¹)`` to the worst-case cost (Equation 2)."""
        self.wcc += amount

    # ------------------------------------------------------------------
    # forward execution
    # ------------------------------------------------------------------
    def ready_activities(self) -> list[str]:
        """Activity type names ready to be launched right now."""
        if self._unwinding or not self.state.is_active:
            return []
        return list(self._to_launch)

    def launch(self, name: str) -> Activity:
        """Mark ``name`` as launched and mint its activity invocation."""
        if name not in self._to_launch:
            raise SchedulerError(
                f"P{self.pid}: activity {name!r} is not ready to launch"
            )
        self._to_launch.remove(name)
        self._outstanding += 1
        activity = Activity(
            activity_type=self.registry.get(name),
            process_id=self.pid,
            seq=self._next_seq(),
        )
        return activity

    def on_committed(self, activity: Activity) -> bool:
        """Record a committed regular activity; advance when node done.

        Returns
        -------
        bool
            ``True`` iff this commit was a point of no return that moved
            the process from *running* to *completing* (the primary
            pivot) — the caller must then inform the lock manager.
        """
        if self._current is None:
            raise SchedulerError(
                f"P{self.pid}: commit of {activity} with no current node"
            )
        node = self._current
        self.ledger.append(LedgerEntry(activity=activity, node=node))
        self._outstanding -= 1
        self._node_commits += 1
        became_completing = False
        if self._node_commits == len(node.activities):
            became_completing = self._advance(node)
        return became_completing

    def _advance(self, finished: ProgramNode) -> bool:
        """Move past ``finished``; open a scope on points of no return."""
        became_completing = False
        if self.program.is_point_of_no_return(finished):
            self._committed_pnr_count += 1
            self._scopes.append(
                _Scope(
                    node=finished,
                    branch_index=0,
                    ledger_start=len(self.ledger),
                )
            )
            if self.state is ProcessState.RUNNING:
                check_transition(self.state, ProcessState.COMPLETING)
                self.state = ProcessState.COMPLETING
                became_completing = True
        self._enter(finished.children[0] if finished.children else None)
        return became_completing

    def _enter(self, node: ProgramNode | None) -> None:
        self._current = node
        self._node_commits = 0
        self._to_launch = list(node.activities) if node is not None else []

    def abandon(self, activity: Activity) -> None:
        """Withdraw a launched activity that will never commit.

        Used when the process is chosen as a cascade victim (its in-flight
        activities and parked lock requests are cancelled) and when a
        parallel-node failure cancels parked sibling requests.
        """
        if self._outstanding <= 0:
            raise SchedulerError(
                f"P{self.pid}: abandon({activity}) with no outstanding "
                "activities"
            )
        self._outstanding -= 1

    @property
    def finished(self) -> bool:
        """Whether the program ran to its end (ready to commit)."""
        return (
            self._current is None
            and self._outstanding == 0
            and not self._unwinding
            and self.state.is_active
        )

    @property
    def outstanding(self) -> int:
        """Number of launched-but-unresolved activities."""
        return self._outstanding

    @property
    def unwinding(self) -> bool:
        """Whether a compensation run is pending for this process."""
        return self._unwinding

    @property
    def committed_points_of_no_return(self) -> int:
        return self._committed_pnr_count

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def on_failed(self, activity: Activity) -> FailurePlan:
        """Resolve the failure of a launched regular activity.

        Retriable activities simply retry.  Otherwise the innermost failure
        scope aborts: its executed activities are compensated in reverse
        order and, when the scope belongs to a committed pivot, the next
        ⊲-alternative is tried; with no committed point of no return the
        whole process aborts (intrinsic abort).
        """
        if activity.activity_type.retriable:
            return FailurePlan(resolution=Resolution.RETRY)
        self._outstanding -= 1
        if self._outstanding > 0:
            raise SchedulerError(
                f"P{self.pid}: failure resolution requested while "
                f"{self._outstanding} sibling activities are in flight; "
                "the manager must drain the parallel node first"
            )
        if self._scopes:
            scope = self._scopes[-1]
            if scope.branch_index + 1 >= len(scope.node.children):
                raise ProcessProgramError(
                    f"P{self.pid}: the assured branch of pivot "
                    f"{scope.node} failed; the program violates "
                    "guaranteed termination"
                )
            self._unwinding = True
            return FailurePlan(
                resolution=Resolution.ABORT_SUBPROCESS,
                compensations=self._compensation_plan(scope.ledger_start),
            )
        self._unwinding = True
        self.begin_abort()
        return FailurePlan(
            resolution=Resolution.ABORT_PROCESS,
            compensations=self._compensation_plan(0),
        )

    def plan_protocol_abort(self) -> FailurePlan:
        """Plan the abort of this (running) process on behalf of the protocol.

        Used for cascading aborts and timestamp-order violations.  Only
        running processes can be aborted this way; completing processes are
        shielded by the protocol itself.
        """
        if self.state is not ProcessState.RUNNING:
            raise ProcessStateError(
                f"P{self.pid}: protocol abort requested in state "
                f"{self.state.value}; only running processes are abortable"
            )
        if self._outstanding > 0:
            raise SchedulerError(
                f"P{self.pid}: protocol abort requested while "
                f"{self._outstanding} activities are in flight"
            )
        self._unwinding = True
        self.begin_abort()
        return FailurePlan(
            resolution=Resolution.ABORT_PROCESS,
            compensations=self._compensation_plan(0),
        )

    def _compensation_plan(self, ledger_start: int) -> list[LedgerEntry]:
        plan = [
            entry
            for entry in reversed(self.ledger[ledger_start:])
            if not entry.compensated and not entry.activity.is_compensation
        ]
        for entry in plan:
            if not entry.compensatable:
                raise SchedulerError(
                    f"P{self.pid}: compensation plan includes the "
                    f"non-compensatable activity {entry.activity}; a "
                    "point of no return leaked into an abortable scope"
                )
        return plan

    def resume_abort_plan(self) -> FailurePlan:
        """Remaining compensations of an interrupted abort (recovery).

        A crashed process manager finds aborting processes mid-way
        through their abort-process execution; the plan below finishes
        the job (compensations are idempotent at the ledger level: only
        uncompensated entries are included).
        """
        if self.state is not ProcessState.ABORTING:
            raise ProcessStateError(
                f"P{self.pid}: resume_abort_plan() in state "
                f"{self.state.value}"
            )
        self._unwinding = True
        return FailurePlan(
            resolution=Resolution.ABORT_PROCESS,
            compensations=self._compensation_plan(0),
        )

    def resume_subprocess_plan(self) -> FailurePlan:
        """Remaining compensations of an interrupted alternative abort."""
        if not self._scopes or not self._unwinding:
            raise ProcessStateError(
                f"P{self.pid}: resume_subprocess_plan() without an "
                "interrupted subprocess abort"
            )
        return FailurePlan(
            resolution=Resolution.ABORT_SUBPROCESS,
            compensations=self._compensation_plan(
                self._scopes[-1].ledger_start
            ),
        )

    def make_compensation(self, entry: LedgerEntry) -> Activity:
        """Mint the compensating activity ``a⁻¹`` for a ledger entry."""
        comp_type = self.registry.compensation_of(entry.activity.name)
        return Activity(
            activity_type=comp_type,
            process_id=self.pid,
            seq=self._next_seq(),
            compensates=entry.activity.uid,
        )

    def on_compensated(self, entry: LedgerEntry, activity: Activity) -> None:
        """Record the committed compensation of ``entry``."""
        if activity.compensates != entry.activity.uid:
            raise SchedulerError(
                f"P{self.pid}: compensation {activity} does not match "
                f"ledger entry {entry.activity}"
            )
        entry.compensated = True
        self.ledger.append(LedgerEntry(activity=activity, node=entry.node))

    def start_next_branch(self) -> None:
        """After a subprocess abort, move to the pivot's next alternative."""
        if not self._unwinding or not self._scopes:
            raise SchedulerError(
                f"P{self.pid}: start_next_branch() without a pending "
                "subprocess abort"
            )
        scope = self._scopes[-1]
        scope.branch_index += 1
        scope.ledger_start = len(self.ledger)
        self._unwinding = False
        self._enter(scope.node.children[scope.branch_index])

    # ------------------------------------------------------------------
    # termination
    # ------------------------------------------------------------------
    def begin_abort(self) -> None:
        check_transition(self.state, ProcessState.ABORTING)
        self.state = ProcessState.ABORTING
        self._to_launch = []
        self._current = None

    def finish_abort(self) -> None:
        check_transition(self.state, ProcessState.ABORTED)
        self.state = ProcessState.ABORTED
        self._unwinding = False

    def finish_commit(self) -> None:
        if not self.finished:
            raise ProcessStateError(
                f"P{self.pid}: commit requested before the program finished"
            )
        check_transition(self.state, ProcessState.COMMITTED)
        self.state = ProcessState.COMMITTED

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Process(P{self.pid}.{self.incarnation} ts={self.timestamp} "
            f"{self.state.value} wcc={self.wcc:g})"
        )
