"""Process programs ``PP = (A, <, ⊲)`` as trees (paper Section 2.2).

A process program is represented as a tree of :class:`ProgramNode` objects:

* each node carries one or more activity type names; a multi-activity node
  groups activities that may execute concurrently (they are ``<``-ordered
  with respect to preceding and succeeding nodes but unordered among
  themselves);
* a node's ``children`` tuple lists its ⊲-ordered continuations.  Ordinary
  nodes have at most one child (plain precedence).  A *point-of-no-return*
  node (an activity without compensation) may have several children: these
  are the alternative subprocess programs tried in preference order after
  the pivot commits, the last of which must be an *assured termination
  tree* consisting solely of retriable activities.

Programs are immutable; use :class:`~repro.process.builder.ProgramBuilder`
to construct them and
:func:`~repro.process.validation.validate_guaranteed_termination` (called by
:meth:`ProcessProgram.validate`) to check well-formedness.
"""

from __future__ import annotations

import math
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.activities.registry import ActivityRegistry
from repro.errors import ProcessProgramError


@dataclass(frozen=True)
class ProgramNode:
    """One node of a process program tree.

    Parameters
    ----------
    activities:
        Activity type names executed (concurrently) at this node.
    children:
        ⊲-ordered continuations; alternatives when the node is a point of
        no return, otherwise a single plain successor (or none).
    node_id:
        Identifier unique within the program; assigned by the builder.
    """

    activities: tuple[str, ...]
    children: tuple["ProgramNode", ...] = ()
    node_id: int = 0

    def __post_init__(self) -> None:
        if not self.activities:
            raise ProcessProgramError("a program node needs >= 1 activity")

    @property
    def is_parallel(self) -> bool:
        """Whether this is a multi-activity (parallel) node."""
        return len(self.activities) > 1

    def iter_subtree(self) -> Iterator["ProgramNode"]:
        """Yield this node and all its descendants, preorder."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = "|".join(self.activities)
        return f"<{label}>" if self.is_parallel else label


@dataclass(frozen=True)
class ProcessProgram:
    """An immutable, named process program.

    Parameters
    ----------
    name:
        Program name (used in traces and reports).
    root:
        Root node of the program tree.
    registry:
        The activity registry the program's activity names refer to.
    wcc_threshold:
        Cost threshold ``Wcc*(PP)`` for cost-based scheduling (Section 4).
        ``math.inf`` disables the cost-based extension for this program;
        ``0`` makes every activity a pseudo pivot.
    """

    name: str
    root: ProgramNode
    registry: ActivityRegistry = field(repr=False)
    wcc_threshold: float = math.inf

    def __post_init__(self) -> None:
        if self.wcc_threshold < 0:
            raise ProcessProgramError(
                f"program {self.name!r}: Wcc* must be >= 0 "
                f"(got {self.wcc_threshold!r})"
            )

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def iter_nodes(self) -> Iterator[ProgramNode]:
        """All nodes of the program, preorder."""
        return self.root.iter_subtree()

    def activity_names(self) -> set[str]:
        """All activity type names referenced by the program."""
        return {
            name for node in self.iter_nodes() for name in node.activities
        }

    def has_pivot(self) -> bool:
        """Whether any reachable activity is a point of no return."""
        return any(
            self.registry.get(name).point_of_no_return
            for name in self.activity_names()
        )

    def node_count(self) -> int:
        """Number of nodes in the program tree."""
        return sum(1 for _ in self.iter_nodes())

    def is_point_of_no_return(self, node: ProgramNode) -> bool:
        """Whether ``node`` is a point-of-no-return (pivot-like) node."""
        return len(node.activities) == 1 and self.registry.get(
            node.activities[0]
        ).point_of_no_return

    def preferred_path_cost(self) -> float:
        """Execution cost of the preferred (first-alternative) path."""
        cost = 0.0
        node: ProgramNode | None = self.root
        while node is not None:
            cost += sum(
                self.registry.get(name).cost for name in node.activities
            )
            node = node.children[0] if node.children else None
        return cost

    def validate(self) -> None:
        """Check guaranteed termination; see :mod:`repro.process.validation`."""
        from repro.process.validation import (
            validate_guaranteed_termination,
        )

        validate_guaranteed_termination(self)

    def describe(self, indent: str = "  ") -> str:
        """Render the program tree as an indented multi-line string."""
        lines: list[str] = [f"program {self.name!r} (Wcc*="
                            f"{self.wcc_threshold})"]

        def render(node: ProgramNode, depth: int, tag: str) -> None:
            classes = "/".join(
                str(self.registry.get(n).termination_class)
                for n in node.activities
            )
            lines.append(f"{indent * depth}{tag}{node} [{classes}]")
            for index, child in enumerate(node.children):
                child_tag = (
                    f"alt{index}: " if len(node.children) > 1 else ""
                )
                render(child, depth + 1, child_tag)

        render(self.root, 1, "")
        return "\n".join(lines)
