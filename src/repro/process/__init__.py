"""Process model: programs, validation, builder, and execution instances."""

from repro.process.builder import ProgramBuilder
from repro.process.instance import (
    FailurePlan,
    LedgerEntry,
    Process,
    Resolution,
)
from repro.process.program import ProcessProgram, ProgramNode
from repro.process.state import ProcessState, check_transition
from repro.process.validation import (
    is_assured_subtree,
    validate_guaranteed_termination,
)

__all__ = [
    "FailurePlan",
    "LedgerEntry",
    "Process",
    "ProcessProgram",
    "ProcessState",
    "ProgramBuilder",
    "ProgramNode",
    "Resolution",
    "check_transition",
    "is_assured_subtree",
    "validate_guaranteed_termination",
]
