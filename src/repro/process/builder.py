"""Fluent construction of process programs.

:class:`ProgramBuilder` assembles a linear chain of nodes and lets pivot
nodes branch into alternative subprograms, each built by a callback that
receives a nested builder::

    program = (
        ProgramBuilder("payment", registry)
        .sequence("check_cart", "reserve_stock")
        .step("notify_warehouse", "notify_billing")   # parallel node
        .pivot("charge_card")
        .alternatives(
            lambda b: b.sequence("ship_express", "send_invoice"),
            lambda b: b.sequence("ship_standard"),     # assured branch
        )
        .build()
    )

``build()`` validates the result (guaranteed termination) unless asked not
to, making it impossible to accidentally run a malformed program.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Callable

from repro.activities.registry import ActivityRegistry
from repro.errors import ProcessProgramError
from repro.process.program import ProcessProgram, ProgramNode

BranchFn = Callable[["ProgramBuilder"], object]


class ProgramBuilder:
    """Builds a :class:`~repro.process.program.ProcessProgram` step by step."""

    def __init__(
        self,
        name: str,
        registry: ActivityRegistry,
        wcc_threshold: float = math.inf,
        _node_ids: itertools.count | None = None,
    ) -> None:
        self._name = name
        self._registry = registry
        self._wcc_threshold = wcc_threshold
        self._node_ids = _node_ids if _node_ids is not None else (
            itertools.count(1)
        )
        # Each step is (activities, alternatives-or-None); alternatives are
        # already-built subtree roots and may only be set on the last step.
        self._steps: list[tuple[tuple[str, ...], tuple[ProgramNode, ...]]] = []
        self._closed = False

    # ------------------------------------------------------------------
    # chain construction
    # ------------------------------------------------------------------
    def step(self, *activity_names: str) -> "ProgramBuilder":
        """Append one node; several names make it a parallel node."""
        self._ensure_open()
        if not activity_names:
            raise ProcessProgramError("step() needs at least one activity")
        for name in activity_names:
            self._registry.get(name)  # fail fast on unknown names
        self._steps.append((tuple(activity_names), ()))
        return self

    def sequence(self, *activity_names: str) -> "ProgramBuilder":
        """Append one singleton node per name, in order."""
        for name in activity_names:
            self.step(name)
        return self

    def parallel(self, *activity_names: str) -> "ProgramBuilder":
        """Append a single multi-activity (parallel) node."""
        if len(activity_names) < 2:
            raise ProcessProgramError(
                "parallel() needs at least two activities; use step() for "
                "singleton nodes"
            )
        return self.step(*activity_names)

    def pivot(self, activity_name: str) -> "ProgramBuilder":
        """Append a pivot node (must be a point-of-no-return activity)."""
        activity = self._registry.get(activity_name)
        if not activity.point_of_no_return:
            raise ProcessProgramError(
                f"pivot() requires a non-compensatable activity, but "
                f"{activity_name!r} is {activity.termination_class}"
            )
        return self.step(activity_name)

    def alternatives(self, *branches: BranchFn) -> "ProgramBuilder":
        """Attach ⊲-ordered alternative subprograms to the last step.

        The last step must be a point of no return.  Each ``branches``
        callback receives a fresh nested builder and populates it; the
        ⊲-last branch must form an assured termination tree (checked at
        :meth:`build` time).  After calling this the chain is closed —
        continuations belong inside the branches.
        """
        self._ensure_open()
        if not self._steps:
            raise ProcessProgramError(
                "alternatives() requires a preceding pivot step"
            )
        if not branches:
            raise ProcessProgramError(
                "alternatives() needs at least one branch"
            )
        built: list[ProgramNode] = []
        for branch_fn in branches:
            nested = ProgramBuilder(
                self._name,
                self._registry,
                self._wcc_threshold,
                _node_ids=self._node_ids,
            )
            branch_fn(nested)
            built.append(nested._build_root())
        activities, existing = self._steps[-1]
        if existing:
            raise ProcessProgramError(
                "alternatives() may only be called once per pivot"
            )
        self._steps[-1] = (activities, tuple(built))
        self._closed = True
        return self

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------
    def build(self, validate: bool = True) -> ProcessProgram:
        """Fold the chain into an immutable program and validate it."""
        program = ProcessProgram(
            name=self._name,
            root=self._build_root(),
            registry=self._registry,
            wcc_threshold=self._wcc_threshold,
        )
        if validate:
            program.validate()
        return program

    def _build_root(self) -> ProgramNode:
        if not self._steps:
            raise ProcessProgramError(
                f"program {self._name!r} has no steps"
            )
        node: ProgramNode | None = None
        for activities, alternatives in reversed(self._steps):
            if alternatives:
                children: tuple[ProgramNode, ...] = alternatives
            elif node is not None:
                children = (node,)
            else:
                children = ()
            node = ProgramNode(
                activities=activities,
                children=children,
                node_id=next(self._node_ids),
            )
        assert node is not None
        return node

    def _ensure_open(self) -> None:
        if self._closed:
            raise ProcessProgramError(
                "this builder chain was closed by alternatives(); "
                "continuations belong inside the branches"
            )
