"""Structural validation of process programs: guaranteed termination.

Section 2.2 of the paper requires process programs to be *inherently
correct*: one execution path must always be able to complete while all
other paths leave no effects behind.  For tree-structured programs this is
the case when at least one child of every pivot activity is an *assured
termination tree* — a subtree consisting solely of retriable activities.

The validator enforces, for a program ``PP`` over a registry:

1. every referenced activity type exists and is not a compensating type
   (compensations are introduced by the scheduler, never by programs);
2. point-of-no-return activities (no compensation) occupy singleton nodes;
3. nodes that are not points of no return have at most one child
   (alternatives only hang off pivots);
4. every point-of-no-return node with children has an assured termination
   tree as its ⊲-last child, and every earlier child is, recursively, a
   valid (sub)process program;
5. assured termination trees contain only retriable activities and no
   alternative branching.
"""

from __future__ import annotations

from repro.activities.registry import ActivityRegistry
from repro.errors import ProcessProgramError
from repro.process.program import ProcessProgram, ProgramNode


def validate_guaranteed_termination(program: ProcessProgram) -> None:
    """Validate ``program``; raise :class:`ProcessProgramError` on failure."""
    _check_node_ids_unique(program)
    _validate_subtree(program.root, program.registry, program.name)


def is_assured_subtree(
    node: ProgramNode, registry: ActivityRegistry
) -> bool:
    """Whether the subtree rooted at ``node`` is an assured termination tree.

    Every activity must be retriable (failure probability zero) and no node
    may branch into alternatives: with nothing able to fail, alternatives
    would be dead code and their semantics undefined.
    """
    for member in node.iter_subtree():
        if len(member.children) > 1:
            return False
        for name in member.activities:
            if not registry.get(name).retriable:
                return False
    return True


def _check_node_ids_unique(program: ProcessProgram) -> None:
    seen: set[int] = set()
    for node in program.iter_nodes():
        if node.node_id in seen:
            raise ProcessProgramError(
                f"program {program.name!r}: duplicate node id "
                f"{node.node_id}"
            )
        seen.add(node.node_id)


def _validate_subtree(
    node: ProgramNode, registry: ActivityRegistry, program_name: str
) -> None:
    for name in node.activities:
        activity = registry.get(name)
        if activity.is_compensation:
            raise ProcessProgramError(
                f"program {program_name!r}: compensating activity "
                f"{name!r} may not appear in a program; compensation is "
                "scheduled automatically on abort"
            )

    pnr = _is_point_of_no_return(node, registry)
    if not pnr and any(
        registry.get(name).point_of_no_return for name in node.activities
    ):
        raise ProcessProgramError(
            f"program {program_name!r}: pivot activities must be "
            f"singleton nodes, found one inside parallel node {node}"
        )

    if len(node.children) > 1 and not pnr:
        raise ProcessProgramError(
            f"program {program_name!r}: node {node} has alternatives but "
            "is not a point of no return; the preference order ⊲ is only "
            "defined over the children of pivots"
        )

    if pnr and node.children:
        last = node.children[-1]
        if not is_assured_subtree(last, registry):
            raise ProcessProgramError(
                f"program {program_name!r}: the ⊲-last child of pivot "
                f"{node} must be an assured termination tree (all "
                "activities retriable, no alternatives); guaranteed "
                "termination is violated otherwise"
            )

    for child in node.children:
        _validate_subtree(child, registry, program_name)


def _is_point_of_no_return(
    node: ProgramNode, registry: ActivityRegistry
) -> bool:
    return len(node.activities) == 1 and registry.get(
        node.activities[0]
    ).point_of_no_return
