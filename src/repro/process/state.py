"""Process execution states and the legal transitions between them.

The paper's lifecycle (Section 2.2):

* a freshly instantiated process is *running*;
* before the primary pivot commits, an abort moves it to *aborting*, where
  compensating activities execute in reverse order, and finally *aborted*;
* the commit of the primary pivot moves it from *running* to *completing*;
  alternatives are then tried in preference order, failed alternatives are
  compensated (the process stays completing), and the process finally
  *commits*;
* a process without a pivot commits straight from *running*.
"""

from __future__ import annotations

import enum

from repro.errors import ProcessStateError


class ProcessState(enum.Enum):
    """Lifecycle states of a process execution."""

    RUNNING = "running"
    COMPLETING = "completing"
    ABORTING = "aborting"
    ABORTED = "aborted"
    COMMITTED = "committed"

    @property
    def is_active(self) -> bool:
        """Whether the process is still executing (running or completing).

        The paper calls a process *active* when it is running or completing;
        aborting processes are also still live in the lock table, which is
        captured by :attr:`is_live` instead.
        """
        return self in (ProcessState.RUNNING, ProcessState.COMPLETING)

    @property
    def is_live(self) -> bool:
        """Whether the process may still hold locks."""
        return self not in (ProcessState.ABORTED, ProcessState.COMMITTED)

    @property
    def is_terminal(self) -> bool:
        """Whether the process has reached a final state."""
        return self in (ProcessState.ABORTED, ProcessState.COMMITTED)


#: Legal state transitions.
_TRANSITIONS: dict[ProcessState, frozenset[ProcessState]] = {
    ProcessState.RUNNING: frozenset(
        (
            ProcessState.COMPLETING,
            ProcessState.ABORTING,
            ProcessState.COMMITTED,
        )
    ),
    ProcessState.COMPLETING: frozenset((ProcessState.COMMITTED,)),
    ProcessState.ABORTING: frozenset((ProcessState.ABORTED,)),
    ProcessState.ABORTED: frozenset(),
    ProcessState.COMMITTED: frozenset(),
}


def check_transition(current: ProcessState, target: ProcessState) -> None:
    """Raise :class:`ProcessStateError` on an illegal transition.

    In particular, a completing process can never become aborting: past the
    point of no return the only way forward is the commit.
    """
    if target not in _TRANSITIONS[current]:
        raise ProcessStateError(
            f"illegal process state transition {current.value!r} -> "
            f"{target.value!r}"
        )
